"""CI sanity for the async-grants + ring speedup tier.

Wall-clock speedups are hardware-dependent (the async protocol's win —
fast regions not waiting for slow ones — needs at least two cores to
exist at all, and CI runners vary), so this smoke does NOT assert a
speedup.  It asserts the two things that must hold on any box:

* **Equivalence under load**: the sparse stateful 10-shard plant run in
  forced process mode under async-grants + ring computes bit-identical
  deterministic columns (enrollments, table rows, LSAs, RIB
  fingerprint, events) to the per-channel barrier over the packed pipe.
* **Bounded overhead**: async-grants + ring stays within a generous
  slack factor of the per-channel barrier's wall-clock — on a
  single-core runner the async coordinator costs a few percent, and
  anything past the slack means a livelocked grant loop or a
  backpressure stall, not noise.

Both runs get a best-of-two to keep a single scheduler hiccup from
failing CI.  ~5 s on the reference box; run it under a timeout.

Usage::

    PYTHONPATH=src python benchmarks/smoke_shard_speedup.py
"""

from __future__ import annotations

import os
import sys

#: Wall-clock slack: async-grants + ring must finish within this factor
#: of the per-channel packed-pipe barrier.  Single-core overhead
#: measures ~1.1x on the reference container; 2.0 leaves room for a
#: noisy shared runner while still catching a stalled frame exchange
#: (which hits the ring's 30 s backpressure timeout and blows far past
#: any slack).
SLACK = 2.0

DETERMINISTIC = ("enrolled", "table_rows", "lsas_received", "rib_sha256",
                 "events", "frames_relayed")


def best_of(runs: int, **kwargs):
    from repro.experiments.e6_scalability import run_stateful_scale
    rows = [run_stateful_scale(10, 3, shards=10, seed=1, sparse=True,
                               mode="process", **kwargs)
            for _ in range(runs)]
    return min(rows, key=lambda row: row["wall_s"])


def main() -> int:
    from repro.shard import ring_supported
    if not ring_supported():
        print("shared memory unsupported on this platform; smoke skipped")
        return 0
    best_of(1, protocol="per-channel")   # warm the spawn machinery
    barrier = best_of(2, protocol="per-channel", transport="packed")
    candidate = best_of(2, protocol="async-grants", transport="ring")
    for field in DETERMINISTIC:
        if barrier[field] != candidate[field]:
            print(f"FAIL: {field} diverged: per-channel {barrier[field]!r} "
                  f"!= async-grants+ring {candidate[field]!r}",
                  file=sys.stderr)
            return 1
    if candidate["relay_bytes"] <= 0:
        print("FAIL: ring transport moved no packed bytes", file=sys.stderr)
        return 1
    budget = barrier["wall_s"] * SLACK
    print(f"per-channel+packed  wall={barrier['wall_s']:.2f}s "
          f"rounds={barrier['rounds']} grants={barrier['grants']}")
    print(f"async-grants+ring   wall={candidate['wall_s']:.2f}s "
          f"rounds={candidate['rounds']} grants={candidate['grants']} "
          f"relay_bytes={candidate['relay_bytes']}")
    print(f"cpu_count={os.cpu_count()} budget={budget:.2f}s")
    if candidate["wall_s"] > budget:
        print(f"FAIL: async-grants+ring took {candidate['wall_s']:.2f}s, "
              f"over {SLACK}x the per-channel barrier "
              f"({barrier['wall_s']:.2f}s) — grant loop or ring "
              f"backpressure is stalling", file=sys.stderr)
        return 1
    print("ok: equivalent results, wall-clock within slack")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
