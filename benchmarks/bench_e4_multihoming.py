"""E4 — Figure 4 / §6.3: multihoming failover — RINA vs TCP vs SCTP."""

import math

from repro.experiments.common import format_table
from repro.experiments.e4_multihoming import run_comparison


def test_e4_failover_comparison(benchmark, table_sink):
    rows = benchmark.pedantic(
        lambda: run_comparison(rina_keepalives=[0.1, 0.2, 0.5]),
        rounds=1, iterations=1)
    table_sink("E4 (Fig 4/§6.3): multihomed-host failover",
               format_table(rows))
    rina = [r for r in rows if r["stack"].startswith("rina")]
    tcp = [r for r in rows if r["stack"] == "tcp"][0]
    sctp = [r for r in rows if r["stack"].startswith("sctp")][0]
    assert all(r["survived"] for r in rina)
    assert not tcp["survived"] and math.isinf(tcp["outage_s"])
    assert sctp["survived"]
    # RINA outage is bounded by its *policy* (keepalive budget) and
    # monotone in it — the knob an IPC facility tunes per scope
    outages = [r["outage_s"] for r in rina]
    assert outages == sorted(outages)
    for row in rina:
        assert row["outage_s"] < row["detection_budget_s"] + 1.0
