"""A5 — ablation (§1.2/§4): the cost of each level of recursion."""

from repro.experiments.a5_depth import iter_jobs
from repro.experiments.common import format_table


def test_a5_recursion_depth(benchmark, table_sink, sweep):
    rows = benchmark.pedantic(lambda: sweep.run(iter_jobs([1, 2, 3, 4])),
                              rounds=1, iterations=1)
    table_sink("A5 (§4 ablation): cost per recursion level on a clean wire",
               format_table(rows))
    assert all(r["completed"] for r in rows)
    goodputs = [r["goodput_mbps"] for r in rows]
    overheads = [r["wire_bytes_per_payload_byte"] for r in rows]
    rtts = [r["rtt_p50_ms"] for r in rows]
    # each layer costs: goodput falls, wire overhead and RTT rise
    assert goodputs == sorted(goodputs, reverse=True)
    assert overheads == sorted(overheads)
    assert rtts == sorted(rtts)
    # but the cost stays modest: 4 layers retain >75% of 1-layer goodput
    assert goodputs[-1] > 0.75 * goodputs[0]
