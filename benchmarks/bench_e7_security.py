"""E7 — §6.1: attack surface of the DIF vs the public IP internet."""

from repro.experiments.common import format_table
from repro.experiments.e7_security import run_comparison

COLUMNS = ["world", "attacker_enrolled", "enroll_denials", "pdus_injected",
           "pdus_blocked_at_gate", "members_discovered", "service_reached",
           "services_connected", "rogue_flow_granted", "allowed_flow_granted",
           "denials_logged"]


def test_e7_attack_surface(benchmark, table_sink):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table_sink("E7 (§6.1): attack surface — enrollment, injection, scanning",
               format_table(rows, columns=COLUMNS))
    by = {r["world"]: r for r in rows}
    for auth in ("challenge", "psk"):
        world = by[f"rina({auth})"]
        assert not world["attacker_enrolled"]
        assert world["pdus_blocked_at_gate"] == world["pdus_injected"]
        assert world["members_discovered"] == 0
        assert not world["service_reached"]
    # public DIF = the degenerate current-Internet case (§6.7)
    assert by["rina(none)"]["attacker_enrolled"]
    assert by["rina(none)"]["service_reached"]
    # insider held back by flow access control (§5.3)
    assert not by["rina(insider-acl)"]["rogue_flow_granted"]
    assert by["rina(insider-acl)"]["allowed_flow_granted"]
    # IP: wire access = full visibility
    assert by["ip"]["members_discovered"] >= 3
    assert by["ip"]["service_reached"]
