"""A3 — ablation (§4): RMT multiplexing policy under overload.

Reuses the E8 harness at a fixed overload point and reports per-scheduler
latency of the delay-sensitive class — the multiplexing task is one of the
three task sets of every IPC process, and this is its policy knob.
"""

from repro.experiments.common import format_table
from repro.experiments.e8_utilization import run_point

OVERLOAD = 1.1


def test_a3_scheduler_ablation(benchmark, table_sink):
    def run():
        return [run_point(scheduler, OVERLOAD, duration=5.0)
                for scheduler in ("fifo", "priority", "drr")]
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table_sink("A3 (§4 ablation): RMT scheduling policy at 1.1x load",
               format_table(rows))
    by = {r["scheduler"]: r for r in rows}
    assert by["priority"]["p99_ms"] < by["fifo"]["p99_ms"]
    assert by["drr"]["p99_ms"] < by["fifo"]["p99_ms"]
    assert by["priority"]["delivery_ratio"] >= 0.99
