"""E9 — §6.5/§6.7: private addressing everywhere, with and without NAT."""

from repro.experiments.common import format_table
from repro.experiments.e9_private_addresses import run_comparison

COLUMNS = ["world", "outbound_attempted", "outbound_established",
           "border_state_total", "pool_exhausted_drops", "inbound_attempts",
           "inbound_succeeded", "inbound_blocked", "site_addresses_identical"]


def test_e9_nat_vs_dif(benchmark, table_sink):
    rows = benchmark.pedantic(
        lambda: run_comparison(sites=3, hosts_per_site=2, flows_per_host=40,
                               port_pool=64),
        rounds=1, iterations=1)
    table_sink("E9 (§6.5/§6.7): identical private address plans per site",
               format_table(rows, columns=COLUMNS))
    nat = [r for r in rows if r["world"].startswith("ip+nat")][0]
    rina = [r for r in rows if r["world"] == "rina"][0]
    assert nat["border_state_total"] > 0
    assert nat["pool_exhausted_drops"] > 0
    assert nat["inbound_succeeded"] == 0
    assert rina["border_state_total"] == 0
    assert rina["outbound_established"] == rina["outbound_attempted"]
    assert rina["inbound_succeeded"] == rina["inbound_attempts"]
    assert rina["site_addresses_identical"]
