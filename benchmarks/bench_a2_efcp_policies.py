"""A2 — ablation (§3.1/§8): EFCP retransmission and congestion policies."""

from repro.experiments.a2_efcp_policies import (iter_jobs,
                                                run_congestion_ablation)
from repro.experiments.common import format_table

LOSSES = [0.0, 0.05, 0.1, 0.2]


def test_a2_retransmission_policies(benchmark, table_sink, sweep):
    jobs = iter_jobs(losses=LOSSES, total_bytes=80_000)
    rows = benchmark.pedantic(
        lambda: sweep.run(jobs), rounds=1, iterations=1)
    table_sink("A2 (§8 ablation): EFCP retransmission policy under loss",
               format_table(rows))
    by = {(r["retx"], r["loss"]): r for r in rows}
    for loss in LOSSES:
        assert by[("selective", loss)]["delivery_ratio"] == 1.0
        assert by[("gobackn", loss)]["delivery_ratio"] == 1.0
    for loss in LOSSES[1:]:
        assert by[("none", loss)]["delivery_ratio"] < 1.0
    # at the heavy-loss end, go-back-N pays more retransmissions and (or)
    # finishes slower than selective repeat
    heavy = LOSSES[-1]
    assert (by[("gobackn", heavy)]["retransmissions"]
            + by[("gobackn", heavy)]["timeouts"]
            >= by[("selective", heavy)]["timeouts"])
    assert (by[("selective", heavy)]["goodput_mbps"]
            >= by[("gobackn", heavy)]["goodput_mbps"] * 0.7)


def test_a2_congestion_policies(benchmark, table_sink):
    rows = benchmark.pedantic(run_congestion_ablation, rounds=1, iterations=1)
    table_sink("A2b: credit-only vs AIMD congestion policy",
               format_table(rows))
    assert all(r["delivery_ratio"] == 1.0 for r in rows)
