"""A1 — ablation (§5.3): topological vs flat vs mismatched addressing."""

from repro.experiments.a1_addressing import run_comparison
from repro.experiments.common import format_table


def test_a1_addressing_policies(benchmark, table_sink):
    rows = benchmark.pedantic(lambda: run_comparison(side=6),
                              rounds=1, iterations=1)
    table_sink("A1 (§5.3 ablation): forwarding-table aggregation by "
               "addressing policy", format_table(rows))
    by = {r["policy"]: r for r in rows}
    assert by["topological"]["aggregated_mean"] < by["flat"]["aggregated_mean"]
    assert (by["topological"]["aggregated_mean"]
            < by["mismatched"]["aggregated_mean"])
    assert all(r["lookups_consistent"] for r in rows)
