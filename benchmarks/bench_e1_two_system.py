"""E1 — Figure 1: one IPC layer between two hosts (loss sweep).

Regenerates the E1 table of EXPERIMENTS.md: reliable vs best-effort cubes
across link loss rates, plus the port-id locality check.
"""

from repro.experiments.common import format_table
from repro.experiments.e1_two_system import iter_jobs, run_port_id_locality

LOSSES = [0.0, 0.02, 0.05, 0.1, 0.2]


def test_e1_loss_sweep(benchmark, table_sink, sweep):
    jobs = iter_jobs(reliable_losses=LOSSES, best_effort_losses=[0.1, 0.2],
                     messages=150)
    rows = benchmark.pedantic(lambda: sweep.run(jobs),
                              rounds=1, iterations=1)
    table_sink("E1 (Fig 1): two-system IPC under link loss",
               format_table(rows))
    reliable = [r for r in rows if r["qos"] == "reliable"]
    assert all(r["delivery_ratio"] == 1.0 for r in reliable)
    best_effort = [r for r in rows if r["qos"] == "best-effort"]
    assert all(r["delivery_ratio"] < 1.0 for r in best_effort)


def test_e1_port_id_locality(benchmark, table_sink):
    result = benchmark.pedantic(run_port_id_locality, rounds=1, iterations=1)
    table_sink("E1b: port IDs are local, no well-known ports",
               format_table([{"check": k, "value": v}
                             for k, v in result.items()]))
    assert result["client_ports_distinct"]
    assert result["no_well_known_port"]
