"""E2 — Figure 2: IPC through dedicated relaying systems (hop sweep)."""

from repro.experiments.common import format_table
from repro.experiments.e2_relay import iter_jobs


def test_e2_relay_chain(benchmark, table_sink, sweep):
    rows = benchmark.pedantic(lambda: sweep.run(iter_jobs([1, 2, 4, 8])),
                              rounds=1, iterations=1)
    table_sink("E2 (Fig 2): relaying through 1-8 dedicated systems",
               format_table(rows))
    assert all(r["delivered"] == 50 for r in rows)
    rtts = [r["rtt_p50_ms"] for r in rows]
    assert rtts == sorted(rtts)                      # RTT grows with hops
    assert all(r["relay_flow_state"] == 0 for r in rows)  # no state in relays
