"""E5 — Figure 5 / §6.4: mobility as dynamic multihoming vs Mobile-IP."""

from repro.experiments.common import format_table
from repro.experiments.e5_mobility import run_comparison, run_rina

COLUMNS = ["stack", "move", "flow_survived", "outage_s", "updates_region1",
           "updates_region2", "updates_metro", "registration_msgs",
           "path_hops_via_ha", "path_hops_direct", "stretch"]


def test_e5_mobility_comparison(benchmark, table_sink):
    def run():
        rows = run_comparison()
        # A4 ablation: abrupt signal loss (break-before-make) inter-region
        rows += [r for r in run_rina(make_before_break=False)
                 if r["move"] == "inter-region"]
        return rows
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table_sink("E5 (Fig 5/§6.4): handover locality and outage vs Mobile-IP",
               format_table(rows, columns=COLUMNS))
    rina = {r["move"]: r for r in rows if r["stack"] == "rina"}
    mip = {r["move"]: r for r in rows if r["stack"] == "mobile-ip"}
    # flows survive every move in both worlds...
    assert all(r["flow_survived"] for r in rows)
    # ...but only the IPC architecture keeps updates scoped (Fig 5)
    assert rina["intra-region"]["updates_metro"] == 0
    assert rina["intra-region"]["updates_region1"] > 0
    assert rina["inter-region"]["updates_metro"] > 0
    # and Mobile-IP pays permanent triangle-routing stretch
    assert all(r["stretch"] > 1.0 for r in mip.values())
    # A4: break-before-make survives but pays a much larger outage —
    # make-before-break is the policy Fig 5's "dynamic multihoming" buys
    bbm = [r for r in rows if r["stack"] == "rina(bbm)"][0]
    assert bbm["flow_survived"]
    assert bbm["outage_s"] > rina["inter-region"]["outage_s"] * 2
