"""S1 — scenario harness sweep: generated fault schedules on both stacks.

Runs the canned ``fault-storm`` (all five classic injectors), the four
network-condition families (flash-crowd, diurnal-load,
rolling-degradation, corruption-storm), plus a batch of
generator-sampled specs on the recursive-IPC stack and the IP baseline.
Each (spec, stack) pair is one sweep job executing the spec **twice**
and comparing traces — the determinism contract, now enforced for every
cell rather than one spot check — so the sweep parallelizes under
``REPRO_JOBS`` like the experiment batteries.

The sweep also emits ``benchmarks/BENCH_s1_scenarios.json`` (path
overridable via ``REPRO_BENCH_JSON_S1``): one schema'd document with
every (scenario, stack) row plus a per-scenario rina-vs-ip echo
comparison, so the dual-stack trajectory is a diffable artifact instead
of scrollback.

``REPRO_SCENARIO_BUDGET_S`` (seconds of *simulated* time) caps every
scenario's duration — CI smoke-runs the sweep with a 10 s event budget.
"""

import json
import os

from repro.experiments.common import format_table
from repro.scenarios import CANNED, determinism_jobs, fault_storm, \
    generate_specs

SEED = 11
BUDGET_S = float(os.environ.get("REPRO_SCENARIO_BUDGET_S", "0") or 0)

#: the canned network-condition families swept alongside fault-storm
CONDITION_FAMILIES = ("flash-crowd", "diurnal-load", "rolling-degradation",
                      "corruption-storm")

#: v1: rows are run_determinism_row cells (scenario, stack, echo,
#: goodput, worst outage, determinism verdict, trace digest) plus the
#: per-scenario dual-stack echo comparison.
BENCH_JSON_SCHEMA = "repro/bench-s1-scenarios/v1"


def _specs():
    specs = ([fault_storm()]
             + [CANNED[name]() for name in CONDITION_FAMILIES]
             + generate_specs(SEED, 4))
    if BUDGET_S > 0:
        for spec in specs:
            spec.duration = min(spec.duration, BUDGET_S)
    return specs


def emit_bench_json(rows):
    """Write the schema'd sweep document into ``benchmarks/`` (or to
    ``REPRO_BENCH_JSON_S1``).  ``rows`` are run_determinism_row cells
    spanning both stacks; the per-scenario echo comparison is
    precomputed so the dual-stack headline is first-class."""
    path = os.environ.get("REPRO_BENCH_JSON_S1") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "BENCH_s1_scenarios.json")
    by_key = {}
    for row in rows:
        by_key.setdefault(row["scenario"], {})[row["stack"]] = row
    comparisons = []
    for scenario, stacks in sorted(by_key.items()):
        rina, ip = stacks.get("rina"), stacks.get("ip")
        if rina and ip:
            comparisons.append({
                "scenario": scenario,
                "rina_echo": rina["echo"],
                "ip_echo": ip["echo"],
                "rina_goodput_mbps": rina["goodput_mbps"],
                "ip_goodput_mbps": ip["goodput_mbps"],
                "deterministic": rina["deterministic"]
                and ip["deterministic"],
            })
    document = {
        "schema": BENCH_JSON_SCHEMA,
        "seed": SEED,
        "budget_s": BUDGET_S,
        "rows": rows,
        "comparisons": comparisons,
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return path


def test_s1_scenario_sweep(benchmark, table_sink, sweep):
    specs = _specs()
    jobs = determinism_jobs(specs, seed=SEED, group="s1")

    rows = benchmark.pedantic(lambda: sweep.run(jobs), rounds=1, iterations=1)
    table_sink("S1: scenario harness sweep (fault-storm + condition "
               "families + generated specs)",
               format_table(rows,
                            columns=["scenario", "stack", "faults", "echo",
                                     "goodput_mbps", "worst_outage_s",
                                     "deterministic"]))

    # every (spec, stack) pair produced a row with a real trace behind it
    assert len(rows) == 2 * len(specs)
    assert all(row["trace_sha256"] for row in rows)

    # the determinism contract holds cell by cell (each job ran its spec
    # twice and compared traces byte for byte)
    assert all(row["deterministic"] for row in rows)

    # the architecture under test rides out the storm at least as well as
    # the baseline (reliable flows recover; UDP probes do not)
    by = {(r["scenario"], r["stack"]): r for r in rows}
    for name in (specs[0].name, "corruption-storm"):
        rina_echo = by[(name, "rina")]["echo"]
        ip_echo = by[(name, "ip")]["echo"]
        assert int(rina_echo.split("/")[0]) >= int(ip_echo.split("/")[0])

    # the sweep is also a diffable artifact
    path = emit_bench_json(rows)
    with open(path) as handle:
        document = json.load(handle)
    assert document["schema"] == BENCH_JSON_SCHEMA
    assert {c["scenario"] for c in document["comparisons"]} >= \
        set(CONDITION_FAMILIES)
