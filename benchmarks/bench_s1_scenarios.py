"""S1 — scenario harness sweep: generated fault schedules on both stacks.

Runs the canned ``fault-storm`` (all five injectors) plus a batch of
generator-sampled specs on the recursive-IPC stack and the IP baseline,
and re-runs one spec to assert the determinism contract end to end.

``REPRO_SCENARIO_BUDGET_S`` (seconds of *simulated* time) caps every
scenario's duration — CI smoke-runs the sweep with a 10 s event budget.
"""

import os

from repro.experiments.common import format_table
from repro.scenarios import ScenarioRunner, fault_storm, generate_specs

SEED = 11
BUDGET_S = float(os.environ.get("REPRO_SCENARIO_BUDGET_S", "0") or 0)


def _specs():
    specs = [fault_storm()] + generate_specs(SEED, 4)
    if BUDGET_S > 0:
        for spec in specs:
            spec.duration = min(spec.duration, BUDGET_S)
    return specs


def test_s1_scenario_sweep(benchmark, table_sink):
    specs = _specs()

    def run():
        rows, traces = [], {}
        for spec in specs:
            for stack in ("rina", "ip"):
                runner = ScenarioRunner(spec, seed=SEED)
                metrics = runner.run(stack)
                traces[(spec.name, stack)] = runner.trace
                rows.append({
                    "scenario": metrics["scenario"],
                    "stack": stack,
                    "faults": len(spec.faults),
                    "echo": (f"{metrics['echo_delivered']}"
                             f"/{metrics['echo_sent']}"),
                    "goodput_mbps": metrics["goodput_mbps"],
                    "worst_outage_s": metrics["worst_outage_s"],
                    "events": metrics["events"],
                })
        return rows, traces

    rows, traces = benchmark.pedantic(run, rounds=1, iterations=1)
    table_sink("S1: scenario harness sweep (fault-storm + generated specs)",
               format_table(rows))

    # every (spec, stack) pair produced a row and a non-empty trace
    assert len(rows) == 2 * len(specs)
    assert all(trace for trace in traces.values())

    # determinism spot check: a second run of the storm is byte-identical
    rerun = ScenarioRunner(specs[0], seed=SEED)
    rerun.run("rina")
    assert rerun.trace == traces[(specs[0].name, "rina")]

    # the architecture under test rides out the storm at least as well as
    # the baseline (reliable flows recover; UDP probes do not)
    by = {(r["scenario"], r["stack"]): r for r in rows}
    storm = specs[0].name
    rina_echo = by[(storm, "rina")]["echo"]
    ip_echo = by[(storm, "ip")]["echo"]
    assert int(rina_echo.split("/")[0]) >= int(ip_echo.split("/")[0])
