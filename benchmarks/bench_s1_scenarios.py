"""S1 — scenario harness sweep: generated fault schedules on both stacks.

Runs the canned ``fault-storm`` (all five injectors) plus a batch of
generator-sampled specs on the recursive-IPC stack and the IP baseline.
Each (spec, stack) pair is one sweep job executing the spec **twice**
and comparing traces — the determinism contract, now enforced for every
cell rather than one spot check — so the sweep parallelizes under
``REPRO_JOBS`` like the experiment batteries.

``REPRO_SCENARIO_BUDGET_S`` (seconds of *simulated* time) caps every
scenario's duration — CI smoke-runs the sweep with a 10 s event budget.
"""

import os

from repro.experiments.common import format_table
from repro.scenarios import determinism_jobs, fault_storm, generate_specs

SEED = 11
BUDGET_S = float(os.environ.get("REPRO_SCENARIO_BUDGET_S", "0") or 0)


def _specs():
    specs = [fault_storm()] + generate_specs(SEED, 4)
    if BUDGET_S > 0:
        for spec in specs:
            spec.duration = min(spec.duration, BUDGET_S)
    return specs


def test_s1_scenario_sweep(benchmark, table_sink, sweep):
    specs = _specs()
    jobs = determinism_jobs(specs, seed=SEED, group="s1")

    rows = benchmark.pedantic(lambda: sweep.run(jobs), rounds=1, iterations=1)
    table_sink("S1: scenario harness sweep (fault-storm + generated specs)",
               format_table(rows,
                            columns=["scenario", "stack", "faults", "echo",
                                     "goodput_mbps", "worst_outage_s",
                                     "deterministic"]))

    # every (spec, stack) pair produced a row with a real trace behind it
    assert len(rows) == 2 * len(specs)
    assert all(row["trace_sha256"] for row in rows)

    # the determinism contract holds cell by cell (each job ran its spec
    # twice and compared traces byte for byte)
    assert all(row["deterministic"] for row in rows)

    # the architecture under test rides out the storm at least as well as
    # the baseline (reliable flows recover; UDP probes do not)
    by = {(r["scenario"], r["stack"]): r for r in rows}
    storm = specs[0].name
    rina_echo = by[(storm, "rina")]["echo"]
    ip_echo = by[(storm, "ip")]["echo"]
    assert int(rina_echo.split("/")[0]) >= int(ip_echo.split("/")[0])
