"""Diff the stateful sharded tier's round counts against the committed
reference.

The perf-trajectory gate: ``BENCH_e6_scale_reference.json`` pins the
*deterministic* columns of the stateful tier — rounds, per-region
boundary steps, frames relayed, events, enrollments, and the RIB
fingerprint — for both round protocols on the dense and sparse 10×3
plants.  Unlike wall-clock numbers these are identical on every
machine, so CI can hard-diff them: an unintended change to grant
computation, relay order, or workload construction shows up as a
mismatch here before it shows up as a silent perf regression.

Usage::

    PYTHONPATH=src python benchmarks/check_e6_scale_reference.py
    PYTHONPATH=src python benchmarks/check_e6_scale_reference.py --update

``--update`` rewrites the reference from the current build — only do
that for a *deliberate* protocol change, and say so in the commit
message (the same discipline as the golden trace fingerprints).
"""

from __future__ import annotations

import json
import os
import sys

REFERENCE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "BENCH_e6_scale_reference.json")

#: The columns a row is keyed by (inputs) and compared by (outputs).
#: ``table_rows`` / ``lsas_received`` joined the deterministic set with
#: bench schema v2: they pin the aggregate routing state the columnar
#: LSDB/RIB stores reproduce, independent of the round protocol.
#: ``grants`` / ``relay_batches`` joined with the async-grants protocol:
#: grant-fixpoint computations and nonempty relay deliveries are
#: scheduling-independent in inline mode (the async scheduler consumes
#: completions in region order there), so the reference pins them for
#: all three protocols.  Wall-clock keys stay deliberately excluded.
KEY_FIELDS = ("config", "regions", "hosts_per_region", "shards", "sparse",
              "protocol")
CHECK_FIELDS = ("rounds", "grants", "region_steps", "frames_relayed",
                "relay_batches", "events", "enrolled", "table_rows",
                "lsas_received", "rib_sha256")


def measure(reference_row):
    """Re-run one reference configuration and project its row onto the
    reference schema (inline mode: round counts are mode-invariant, and
    the checker must run in CI without spawning worker fleets)."""
    from repro.experiments.e6_scalability import run_stateful_scale
    row = run_stateful_scale(
        reference_row["regions"], reference_row["hosts_per_region"],
        shards=reference_row["shards"], seed=1, mode="inline",
        sparse=reference_row["sparse"], protocol=reference_row["protocol"])
    measured = {field: reference_row[field] for field in KEY_FIELDS}
    measured.update({field: row[field] for field in CHECK_FIELDS})
    return measured


def main(argv) -> int:
    update = "--update" in argv
    with open(REFERENCE_PATH) as handle:
        reference = json.load(handle)
    failures = []
    measured_rows = []
    for reference_row in reference["rows"]:
        measured = measure(reference_row)
        measured_rows.append(measured)
        label = " ".join(str(reference_row[field]) for field in KEY_FIELDS)
        # .get: a field added to CHECK_FIELDS diffs as absent-vs-value
        # until the reference is regenerated, instead of crashing
        diffs = [
            f"{field}: reference {reference_row.get(field)!r} "
            f"!= measured {measured[field]!r}"
            for field in CHECK_FIELDS
            if measured[field] != reference_row.get(field)]
        if diffs:
            failures.append((label, diffs))
            print(f"MISMATCH  {label}")
            for diff in diffs:
                print(f"          {diff}")
        else:
            print(f"ok        {label}: rounds={measured['rounds']} "
                  f"region_steps={measured['region_steps']}")
    if update:
        reference["rows"] = measured_rows
        with open(REFERENCE_PATH, "w") as handle:
            json.dump(reference, handle, indent=2)
            handle.write("\n")
        print(f"reference rewritten: {REFERENCE_PATH}")
        return 0
    if failures:
        print(f"\n{len(failures)} configuration(s) diverged from "
              f"{os.path.basename(REFERENCE_PATH)} — if the protocol "
              f"change is deliberate, regenerate with --update and say "
              f"so in the commit message", file=sys.stderr)
        return 1
    print("\nall round counts match the committed reference")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
