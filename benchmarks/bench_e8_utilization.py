"""E8 — §6.6/§1: achievable utilization before QoS violation (load sweep,
per multiplexing policy)."""

from repro.experiments.common import format_table
from repro.experiments.e8_utilization import (achievable_utilization,
                                              iter_jobs)

LOADS = [0.4, 0.6, 0.8, 0.9, 1.0, 1.1]


def test_e8_utilization_before_violation(benchmark, table_sink, sweep):
    jobs = iter_jobs(loads=LOADS, duration=5.0)
    rows = benchmark.pedantic(
        lambda: sweep.run(jobs), rounds=1, iterations=1)
    best = achievable_utilization(rows)
    summary = [{"scheduler": name, "max_load_meeting_sla": load}
               for name, load in sorted(best.items())]
    table_sink("E8 (§6.6): delay-SLA compliance vs offered load",
               format_table(rows) + "\n\nheadline:\n"
               + format_table(summary))
    # cube-aware scheduling sustains strictly higher load than FIFO
    assert best["priority"] > best["fifo"]
    # the FIFO (best-effort) ceiling sits in the regime the paper cites
    assert best["fifo"] <= 0.9
    assert best["priority"] >= 1.0
