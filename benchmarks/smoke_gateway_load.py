"""CI smoke for the live-traffic gateway under open-loop load.

Starts an in-process :class:`~repro.gateway.server.GatewayServer` on
loopback and drives it with the open-loop client harness:

* 1,000 concurrent logical TCP clients (the acceptance floor — each is
  one allocated shim flow) multiplexed over 64 connections;
* 200 UDP clients against the same server, RPC workload.

Every flow must allocate, every ping must come back, no wire errors —
open-loop, so a slow server shows up as missing replies, not a slower
test.  The wall-clock cap lives in the CI step (``timeout``); this
script asserts the outcomes.

Usage::

    PYTHONPATH=src python benchmarks/smoke_gateway_load.py

Exit 0 when both sessions completed cleanly.
"""

from __future__ import annotations

import asyncio
import json
import sys

TCP_CLIENTS = 1_000
UDP_CLIENTS = 200


async def smoke() -> int:
    from repro.gateway.load import run_load
    from repro.gateway.server import GatewayServer

    server = GatewayServer()
    await server.start()
    try:
        rows = [
            await run_load("127.0.0.1", server.tcp_port, transport="tcp",
                           clients=TCP_CLIENTS, pings=3, timeout=60.0),
            await run_load("127.0.0.1", server.udp_port, transport="udp",
                           clients=UDP_CLIENTS, pings=3, workload="rpc",
                           timeout=60.0),
        ]
    finally:
        await server.stop()

    print(json.dumps({"rows": rows, "server_stats": server.stats},
                     indent=2))
    failures = []
    for row in rows:
        tag = f"{row['transport']}/{row['workload']}"
        if not row["complete"]:
            failures.append(
                f"{tag}: incomplete — {row['replies']}/{row['expected']} "
                f"replies, {row['alloc_failures']} allocation failure(s)")
        if row["wire_errors"]:
            failures.append(f"{tag}: {row['wire_errors']} wire error(s)")
    if server.stats["wire_errors"]:
        failures.append(
            f"server counted {server.stats['wire_errors']} wire error(s)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    return asyncio.run(smoke())


if __name__ == "__main__":
    raise SystemExit(main())
