"""CI smoke for the 100k-system flood tier: build + first flood round.

Builds the xlarge plant (100,001 systems, 100,000 links) in one
process and runs a single announcement to complete flooding — proof
that the columnar engine core holds a 100k-entity plant in bounded
memory and pushes a full flood wave through it.  The wall-clock cap
lives in the CI step (``timeout``); this script asserts the
*deterministic* outcomes and a memory ceiling.

Usage::

    PYTHONPATH=src python benchmarks/smoke_e6_xlarge.py

Exit 0 when the first wave reached every other system inside the
memory budget.
"""

from __future__ import annotations

import json
import sys

#: Peak-RSS ceiling for build + first wave.  ~630 MB on the reference
#: box; 1.5 GB fails CI on per-entity object-graph creep (the
#: pre-columnar layout's eager per-link PRNGs alone were ~250 MB)
#: without flaking on allocator variance.
PEAK_MEM_BUDGET_MB = 1_500


def main() -> int:
    from repro.experiments.e6_scalability import flood_build_smoke
    row = flood_build_smoke("xlarge")
    print(json.dumps(row, indent=2))
    failures = []
    if row["first_wave_deliveries"] != row["systems"] - 1:
        failures.append(
            f"first wave reached {row['first_wave_deliveries']} of "
            f"{row['systems'] - 1} systems")
    if row["peak_mem_mb"] >= PEAK_MEM_BUDGET_MB:
        failures.append(
            f"peak RSS {row['peak_mem_mb']} MB >= "
            f"{PEAK_MEM_BUDGET_MB} MB budget")
    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
