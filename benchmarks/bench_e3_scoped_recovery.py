"""E3 — Figure 3 / §6.2: a scoped DIF over the wireless hop vs end-to-end
recovery only (loss sweep)."""

from repro.experiments.common import format_table
from repro.experiments.e3_scoped_recovery import iter_jobs

LOSSES = [0.0, 0.05, 0.1, 0.2, 0.3]


def test_e3_scoped_vs_e2e(benchmark, table_sink, sweep):
    jobs = iter_jobs(losses=LOSSES, total_bytes=120_000)
    rows = benchmark.pedantic(lambda: sweep.run(jobs), rounds=1, iterations=1)
    table_sink("E3 (Fig 3/§6.2): goodput with vs without a wireless-scope DIF",
               format_table(rows))
    by = {(r["config"], r["loss"]): r for r in rows}
    # bursty fades: scoped wins there too
    assert (by[("scoped", "bursty(GE)")]["goodput_mbps"]
            > by[("e2e", "bursty(GE)")]["goodput_mbps"])
    # the scoped configuration wins at every non-trivial loss rate, and the
    # advantage grows with loss
    for loss in LOSSES[1:]:
        assert by[("scoped", loss)]["goodput_mbps"] \
            > by[("e2e", loss)]["goodput_mbps"]
    gain_low = (by[("scoped", 0.05)]["goodput_mbps"]
                / by[("e2e", 0.05)]["goodput_mbps"])
    gain_high = (by[("scoped", 0.3)]["goodput_mbps"]
                 / by[("e2e", 0.3)]["goodput_mbps"])
    assert gain_high > gain_low
    # the wide-scope layer stays clean in the scoped config
    assert all(by[("scoped", loss)]["top_layer_retx"] == 0 for loss in LOSSES)
