"""Benchmark-suite plumbing: collect result tables and print them after the
pytest-benchmark timing summary, plus persist them under benchmarks/results/.
"""

import os

import pytest

_TABLES = []
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def table_sink():
    """Fixture: call ``sink(title, text)`` to report an experiment table."""
    def sink(title: str, text: str) -> None:
        _TABLES.append((title, text))
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        slug = title.split(" ")[0].lower().replace("/", "-")
        path = os.path.join(_RESULTS_DIR, f"{slug}.txt")
        with open(path, "w") as handle:
            handle.write(title + "\n\n" + text + "\n")
    return sink


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for title, text in _TABLES:
        terminalreporter.write_sep("=", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)
