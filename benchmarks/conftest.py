"""Benchmark-suite plumbing: collect result tables and print them after the
pytest-benchmark timing summary, plus persist them under benchmarks/results/.

Also home of the ``sweep`` fixture: the bench sweeps execute their
configuration lists (``iter_jobs()`` data from the experiment modules)
through a shared :class:`repro.sweeps.SweepRunner`.  Serial by default —
single-process timing is what the recorded numbers mean — but set
``REPRO_JOBS=N`` and the whole bench battery fans out over N workers
(rows still merge in job order, so the printed tables and assertions
are unchanged).
"""

import os
import re

import pytest

from repro.sweeps import JOBS_ENV, SweepRunner, parse_worker_count

_TABLES = []
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def sweep():
    """Session-wide sweep runner: ``REPRO_JOBS`` workers, default 1."""
    env = os.environ.get(JOBS_ENV)
    return SweepRunner(workers=parse_worker_count(env) if env else 1)


def _slug(title: str) -> str:
    """Filesystem-safe result-file stem from a table title.

    The first word, lowercased, with everything outside ``[a-z0-9-]``
    stripped — so ``"E1b: ..."`` lands in ``e1b.txt``, not ``e1b:.txt``.
    """
    slug = re.sub(r"[^a-z0-9-]", "",
                  title.split(" ")[0].lower().replace("/", "-"))
    return slug or "table"


@pytest.fixture
def table_sink():
    """Fixture: call ``sink(title, text)`` to report an experiment table."""
    def sink(title: str, text: str) -> None:
        _TABLES.append((title, text))
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        path = os.path.join(_RESULTS_DIR, f"{_slug(title)}.txt")
        with open(path, "w") as handle:
            handle.write(title + "\n\n" + text + "\n")
    return sink


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for title, text in _TABLES:
        terminalreporter.write_sep("=", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)
