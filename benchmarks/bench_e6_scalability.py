"""E6 — §6.5: routing state and update scope, flat vs recursive (size sweep)."""

from repro.experiments.common import format_table
from repro.experiments.e6_scalability import run_sweep

SIZES = [(3, 4), (4, 8), (5, 12)]   # (regions, hosts/region)


def test_e6_state_and_scope(benchmark, table_sink):
    rows = benchmark.pedantic(lambda: run_sweep(SIZES), rounds=1, iterations=1)
    table_sink("E6 (§6.5): per-system routing state and failure-update scope",
               format_table(rows))
    flat = [r for r in rows if r["config"] == "flat"]
    recursive = [r for r in rows if r["config"] == "recursive"]
    ip_rip = [r for r in rows if r["config"] == "ip+rip"]
    # the real-protocol IP baseline behaves like the flat DIF: full-size
    # tables, whole-network flap footprint, plus steady periodic chatter
    for row in ip_rip:
        assert row["flap_update_scope"] == row["systems"]
        assert row["updates_per_s"] > 0
    for f, r in zip(flat, recursive):
        assert r["total_state"] < f["total_state"]
        assert r["flap_update_scope"] < f["flap_update_scope"]
        assert f["flap_update_scope"] == f["systems"]
    # flat total state grows ~quadratically; recursive stays near-linear
    flat_growth = flat[-1]["total_state"] / flat[0]["total_state"]
    recursive_growth = (recursive[-1]["total_state"]
                        / recursive[0]["total_state"])
    assert flat_growth > recursive_growth
