"""E6 — §6.5: routing state and update scope, flat vs recursive (size sweep),
plus the scale tier (wall-clock and events/sec at up to 1,021 systems).

The stateful tier additionally emits ``benchmarks/BENCH_e6_scale.json``
(path overridable via ``REPRO_BENCH_JSON``): one schema'd document with
rounds, boundary steps, frames relayed, events/sec, wall-clock, and
peak memory per tier and per round protocol, so the perf trajectory is
a diffable artifact instead of scrollback.  Both bench artifacts live
in ``benchmarks/`` — the emitted document next to the committed
``BENCH_e6_scale_reference.json`` that pins the deterministic columns
of the same rows, diffed in CI by ``check_e6_scale_reference.py``.
"""

import json
import multiprocessing
import os
import time

from repro.experiments.common import format_table
from repro.experiments.e6_scalability import (iter_flood_jobs, iter_jobs,
                                              iter_scale_jobs, run_scale,
                                              run_stateful_scale)
from repro.sweeps import SweepRunner

#: v2: rows carry ``peak_mem_mb`` (process high-water RSS at row
#: completion) alongside the v1 wall-clock fields, and the document is
#: emitted into ``benchmarks/`` instead of the repo root.
BENCH_JSON_SCHEMA = "repro/bench-e6-scale/v2"


def emit_bench_json(rows):
    """Write the schema'd stateful-tier document into ``benchmarks/``
    (or to ``REPRO_BENCH_JSON``).  ``rows`` are run_stateful_scale rows
    spanning both protocols; the boundary-step ratio between matching
    per-channel/global-min pairs is precomputed so the headline number
    is first-class, not a post-processing step."""
    path = os.environ.get("REPRO_BENCH_JSON") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "BENCH_e6_scale.json")
    by_key = {}
    for row in rows:
        by_key.setdefault((row["config"], row["shards"]), {})[
            row.get("protocol", "serial")] = row
    comparisons = []
    for (config, shards), protocols in sorted(by_key.items()):
        new, old = protocols.get("per-channel"), protocols.get("global-min")
        if new and old:
            comparisons.append({
                "config": config,
                "shards": shards,
                "global_min_region_steps": old["region_steps"],
                "per_channel_region_steps": new["region_steps"],
                "boundary_step_ratio": round(
                    old["region_steps"] / new["region_steps"], 2),
                "global_min_rounds": old["rounds"],
                "per_channel_rounds": new["rounds"],
            })
    document = {
        "schema": BENCH_JSON_SCHEMA,
        "tiers": rows,
        "comparisons": comparisons,
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return path

#: The multi-core speedup artifact: per (protocol, transport) wall-clock
#: and relay-cost rows for the 10-shard sparse stateful plant in forced
#: process mode, plus the byte-level relay micro-benchmark (pipe-pickle
#: vs pipe-bytes vs shared-memory ring).  ``cpu_count`` is recorded in
#: the document because the async-grants protocol's headline win —
#: overlapping fast regions with slow ones — needs at least two cores
#: to exist; on a single-core box its coordinator overhead is what the
#: honest numbers show (see docs/ARCHITECTURE.md).
BENCH_SPEEDUP_SCHEMA = "repro/bench-e6-shard-speedup/v1"

#: Relay micro-benchmark payload sizes: one comfortably below the pipe's
#: buffer, one around a large stateful round batch, one near the Linux
#: pipe buffer (the helper echoes one payload at a time, so each send
#: must fit the 64 KB pipe buffer without a draining thread).
RELAY_PAYLOAD_SIZES = (1024, 16384, 49152)


def speedup_matrix():
    """The measured (protocol, transport) grid.  ``global-min`` only
    rides the packed pipe (it is the PR-5 baseline, one row is enough);
    ring rows drop out where the platform has no shared memory."""
    from repro.shard import ring_supported
    transports = ("object", "packed") + (("ring",) if ring_supported()
                                         else ())
    combos = [(protocol, transport)
              for protocol in ("per-channel", "async-grants")
              for transport in transports]
    combos.insert(0, ("global-min", "packed"))
    return combos


def measure_speedup_rows(repeats: int = 3):
    """Best-of-``repeats`` wall-clock per matrix cell, interleaved so
    background load skews every cell equally rather than whichever ran
    last."""
    combos = speedup_matrix()
    run_stateful_scale(10, 3, shards=10, seed=1, sparse=True,
                       mode="process")   # warm the spawn machinery
    best = {}
    for _ in range(repeats):
        for protocol, transport in combos:
            row = run_stateful_scale(10, 3, shards=10, seed=1, sparse=True,
                                     protocol=protocol, transport=transport,
                                     mode="process")
            key = (protocol, transport)
            if key not in best or row["wall_s"] < best[key]["wall_s"]:
                best[key] = row
    return [best[key] for key in combos]


def measure_relay_micro(reps: int = 2000):
    """Per-roundtrip microseconds for one payload crossing coordinator
    -> worker -> coordinator by each relay mechanism: ``conn.send`` of a
    bytes object (pickle framing — the pre-ring transport), ``conn.
    send_bytes`` (the pipe fallback), and a shared-memory SPSC ring."""
    from repro.shard import SpscRing
    from repro.shard.ring import pipe_bytes_roundtrip
    ctx = multiprocessing.get_context("spawn")
    rows = []
    for size in RELAY_PAYLOAD_SIZES:
        payloads = [bytes(size)] * reps
        conn_a, conn_b = multiprocessing.Pipe()
        started = time.perf_counter()
        pipe_bytes_roundtrip(conn_a, conn_b, payloads, pickled=True)
        pickle_s = time.perf_counter() - started
        started = time.perf_counter()
        pipe_bytes_roundtrip(conn_a, conn_b, payloads, pickled=False)
        bytes_s = time.perf_counter() - started
        conn_a.close()
        conn_b.close()
        ring = SpscRing.create(ctx)
        started = time.perf_counter()
        for payload in payloads:
            ring.write(payload)
            ring.read()
        ring_s = time.perf_counter() - started
        ring.close()
        rows.append({
            "payload_bytes": size,
            "roundtrips": reps,
            "pipe_pickle_us": round(pickle_s / reps * 1e6, 2),
            "pipe_bytes_us": round(bytes_s / reps * 1e6, 2),
            "ring_us": round(ring_s / reps * 1e6, 2),
        })
    return rows


def emit_speedup_json(rows, relay_rows):
    """Write ``benchmarks/BENCH_e6_shard_speedup.json`` (path
    overridable via ``REPRO_BENCH_SPEEDUP_JSON``): the speedup matrix,
    the relay micro-benchmark, and the headline comparisons — each a
    wall-clock ratio between two named cells of the same run."""
    path = os.environ.get("REPRO_BENCH_SPEEDUP_JSON") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "BENCH_e6_shard_speedup.json")
    by_key = {(row["protocol"], row["transport"]): row for row in rows}

    def compare(label, slow_key, fast_key):
        slow, fast = by_key.get(slow_key), by_key.get(fast_key)
        if not (slow and fast) or not fast["wall_s"]:
            return None
        return {
            "comparison": label,
            "baseline": "+".join(slow_key),
            "candidate": "+".join(fast_key),
            "baseline_wall_s": slow["wall_s"],
            "candidate_wall_s": fast["wall_s"],
            "speedup": round(slow["wall_s"] / fast["wall_s"], 2),
        }

    comparisons = [c for c in (
        compare("async-grants+ring vs global-min barrier",
                ("global-min", "packed"), ("async-grants", "ring")),
        compare("async-grants+ring vs per-channel barrier",
                ("per-channel", "packed"), ("async-grants", "ring")),
        compare("async-grants vs per-channel (packed)",
                ("per-channel", "packed"), ("async-grants", "packed")),
        compare("per-channel ring vs packed pipe",
                ("per-channel", "packed"), ("per-channel", "ring")),
    ) if c]
    document = {
        "schema": BENCH_SPEEDUP_SCHEMA,
        "cpu_count": os.cpu_count(),
        "plant": "10x3 sparse stateful, 10 shards, forced process mode",
        "tiers": rows,
        "relay_microbench": relay_rows,
        "comparisons": comparisons,
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return path


def test_e6_shard_speedup(benchmark, table_sink):
    """The multi-core speedup tier: the sparse stateful 10-shard plant
    under every (protocol, transport) combination in *forced* process
    mode, emitted as ``BENCH_e6_shard_speedup.json``.

    The wall-clock columns are measurements and vary per box (the
    committed artifact records ``cpu_count`` for that reason); the
    assertions here pin only what must hold everywhere — deterministic
    columns invariant across every cell, relay counters consistent with
    the transport, and the ring beating pickle framing on the byte-level
    micro-benchmark at batch sizes past the pipe's sweet spot.
    """
    rows = benchmark.pedantic(lambda: measure_speedup_rows(),
                              rounds=1, iterations=1)
    relay_rows = measure_relay_micro()
    table_sink("E6-shard-speedup: protocol x transport, 10-shard sparse "
               "stateful (forced process mode)", format_table(rows))
    table_sink("E6-shard-speedup: relay micro-benchmark (us/roundtrip)",
               format_table(relay_rows))
    reference = rows[0]
    for row in rows:
        # the equivalence contract: every cell computes the same run
        for key in ("enrolled", "table_rows", "lsas_received",
                    "rib_sha256", "events", "frames_relayed"):
            assert row[key] == reference[key], (key, row)
        assert row["grants"] >= row["rounds"] > 0
        assert row["relay_batches"] > 0
        if row["transport"] == "object":
            assert row["relay_bytes"] == 0    # nothing is packed
        else:
            assert row["relay_bytes"] > 0
    # the micro-benchmark's portable claim: once batches outgrow the
    # pipe's small-message sweet spot, the shared-memory ring beats the
    # pickling pipe (the pre-ring transport) outright
    big = relay_rows[-1]
    assert big["ring_us"] < big["pipe_pickle_us"], big
    path = emit_speedup_json(rows, relay_rows)
    with open(path) as handle:
        document = json.load(handle)
    assert document["schema"] == BENCH_SPEEDUP_SCHEMA
    table_sink("E6-shard-speedup comparisons (BENCH_e6_shard_speedup.json)",
               json.dumps(document["comparisons"], indent=2))


SIZES = [(3, 4), (4, 8), (5, 12)]   # (regions, hosts/region)

#: events/sec of the seed (pre queue/SPF overhaul) on the reference box:
#: the full flat 5x10 config (build + state stats + flap scope) processed
#: 28,211 events in 0.582 s.  The overhaul's acceptance was >= 3x this.
SEED_FLAT_5x10_EVENTS_PER_S = 48_500


def test_e6_scale_tier(benchmark, table_sink):
    """Scale rows: record wall-clock and events/sec so hot-path
    regressions surface in the bench JSON instead of silently rotting.
    Set REPRO_E6_SCALE=large (or xlarge) to include the 1,021-system
    tier; the 100k-system xlarge tier itself is flood-only (the full
    control plane does not build at that scale) and lives in
    ``test_e6_sharded_flood_tier``.

    Deliberately *not* on the shared ``sweep`` fixture: these rows ARE
    wall-clock measurements, and concurrent cold-interpreter workers
    contending for CPU would deflate events_per_s — the serial runner
    keeps the recorded numbers meaning single-process throughput even
    when REPRO_JOBS parallelizes the rest of the bench suite."""
    run_scale("flat", 5, 10)   # warm interpreter caches off the clock
    tiers = ["small", "medium"]
    if os.environ.get("REPRO_E6_SCALE") in ("large", "xlarge"):
        tiers.append("large")
    jobs = iter_scale_jobs(tiers)
    rows = benchmark.pedantic(lambda: SweepRunner(workers=1).run(jobs),
                              rounds=1, iterations=1)
    table_sink("E6-scale (§6.5): build wall-clock and events/sec",
               format_table(rows))
    for row in rows:
        assert row["events_per_s"] > 0
        assert row["total_state"] > 0
    flat = rows[0]
    # the headline hot-path budget: the flat 5x10 config must stay well
    # clear of the seed's measured throughput (3x achieved, 2x floor).
    # The floor is an absolute number from the reference box, so it is
    # opt-in — set REPRO_E6_STRICT=1 on hardware at least as fast (the
    # CI gate for arbitrary runners is the wall-clock-capped smoke job)
    if os.environ.get("REPRO_E6_STRICT"):
        assert flat["events_per_s"] >= 2 * SEED_FLAT_5x10_EVENTS_PER_S, flat
    # the §6.5 property at scale: a flat member carries the whole graph,
    # a recursive member's state is bounded by its region, not the network
    assert flat["mean_table"] == flat["systems"] - 1
    for row in rows[1:]:
        assert row["max_table"] < row["systems"] / 3, row


def test_e6_sharded_flood_tier(benchmark, table_sink):
    """The sharded row: the flat configuration's flooding fan-out split
    over per-region engines exchanging boundary frames.

    Serial runner for the same reason as the scale tier (the rows are
    wall-clock measurements); the sharded run's own coordinator decides
    between in-process rounds and per-region worker processes.  The
    deliveries/events columns are deterministic and must be invariant
    across shard counts — that is the conservative-lookahead contract
    (the bit-exact 2-region equivalence is pinned in
    ``tests/test_shard.py``).
    """
    tiers = ["small", "medium"]
    scale = os.environ.get("REPRO_E6_SCALE")
    if scale in ("large", "xlarge"):
        tiers.append("large")
    if scale == "xlarge":
        # the 100k-system columnar-engine tier: sparse origins (the
        # every-node storm is quadratic and infeasible at this size)
        tiers.append("xlarge")
    jobs = iter_flood_jobs(tiers, shards=2)
    rows = benchmark.pedantic(lambda: SweepRunner(workers=1).run(jobs),
                              rounds=1, iterations=1)
    table_sink("E6-shard (§6.5): flooding fan-out, unsharded vs sharded",
               format_table(rows))
    for unsharded, sharded in zip(rows[::2], rows[1::2]):
        assert unsharded["shards"] == 1 and sharded["shards"] == 2
        assert sharded["deliveries"] == unsharded["deliveries"]
        assert sharded["events"] == unsharded["events"]
        assert sharded["frames_relayed"] > 0
        # every system hears every announcing origin (origins == n on
        # the storm tiers, sparse on xlarge)
        n = unsharded["systems"]
        assert unsharded["deliveries"] == unsharded["origins"] * (n - 1)


def test_e6_stateful_shard_tier(benchmark, table_sink):
    """The stateful sharded row: the flat configuration's *control
    plane* — enrollment, RIEP exchange, LSA flooding, keepalives —
    unsharded vs 2/4/10-way region shards, every boundary frame
    crossing as codec-encoded wire data.

    Serial runner for the same reason as the other tiers (the rows are
    wall-clock measurements).  The deterministic columns — enrolled
    members, table rows, LSAs received, and the combined RIB
    fingerprint — must be bit-invariant across shard counts; the
    2-shard split is additionally pinned row-identical (enrollment
    floats included) in ``tests/test_shard_stateful.py``.
    """
    from repro.sweeps import Job
    jobs = [Job("repro.experiments.e6_scalability:run_stateful_scale",
                kwargs={"regions": 10, "hosts_per_region": 3,
                        "shards": shards, "seed": 1},
                group="e6-stateful", label=f"e6-stateful 10x3 x{shards}")
            for shards in (1, 2, 4, 10)]
    # the protocol comparison rows: the same 10-shard plant (dense and
    # sparse) under per-channel grants vs the PR-5 global-min rule —
    # the boundary-step separation these report is the tentpole claim
    jobs += [Job("repro.experiments.e6_scalability:run_stateful_scale",
                 kwargs={"regions": 10, "hosts_per_region": 3,
                         "shards": 10, "seed": 1, "sparse": sparse,
                         "protocol": protocol},
                 group="e6-stateful",
                 label=f"e6-stateful 10x3{'-sparse' if sparse else ''} "
                       f"x10 {protocol}")
             for sparse in (False, True)
             for protocol in ("global-min", "per-channel")
             if not (not sparse and protocol == "per-channel")]
    rows = benchmark.pedantic(lambda: SweepRunner(workers=1).run(jobs),
                              rounds=1, iterations=1)
    table_sink("E6-stateful (§6.5): control plane, unsharded vs sharded",
               format_table(rows))
    unsharded = rows[0]
    assert unsharded["shards"] == 1
    assert unsharded["enrolled"] == unsharded["systems"]
    for row in rows[1:4]:
        assert row["shards"] > 1
        assert row["frames_relayed"] > 0
        for key in ("enrolled", "table_rows", "lsas_received",
                    "rib_sha256", "events", "systems"):
            assert row[key] == unsharded[key], key
    path = emit_bench_json(rows)
    with open(path) as handle:
        document = json.load(handle)
    assert document["schema"] == BENCH_JSON_SCHEMA
    for comparison in document["comparisons"]:
        # per-channel grants must beat global-min on boundary steps
        # on every compared plant (the sparse plant by ≥ 3×, pinned
        # harder in tests/test_shard_grants.py)
        assert comparison["boundary_step_ratio"] > 1.0, comparison
    table_sink("E6-stateful round protocols (BENCH_e6_scale.json)",
               json.dumps(document["comparisons"], indent=2))


def test_e6_state_and_scope(benchmark, table_sink, sweep):
    rows = benchmark.pedantic(lambda: sweep.run(iter_jobs(sizes=SIZES)),
                              rounds=1, iterations=1)
    table_sink("E6 (§6.5): per-system routing state and failure-update scope",
               format_table(rows))
    flat = [r for r in rows if r["config"] == "flat"]
    recursive = [r for r in rows if r["config"] == "recursive"]
    ip_rip = [r for r in rows if r["config"] == "ip+rip"]
    # the real-protocol IP baseline behaves like the flat DIF: full-size
    # tables, whole-network flap footprint, plus steady periodic chatter
    for row in ip_rip:
        assert row["flap_update_scope"] == row["systems"]
        assert row["updates_per_s"] > 0
    for f, r in zip(flat, recursive):
        assert r["total_state"] < f["total_state"]
        assert r["flap_update_scope"] < f["flap_update_scope"]
        assert f["flap_update_scope"] == f["systems"]
    # flat total state grows ~quadratically; recursive stays near-linear
    flat_growth = flat[-1]["total_state"] / flat[0]["total_state"]
    recursive_growth = (recursive[-1]["total_state"]
                        / recursive[0]["total_state"])
    assert flat_growth > recursive_growth
