"""Request/response RPC over the IPC API.

Demonstrates "transaction processing" as an IPC service (§6.6): the same
facility that moves packets also hosts what is traditionally a host-side
middleware service.  Requests and responses are correlated by an id the
*application* chooses — the facility contributes naming, access control,
and the QoS cube.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from ..core.api import FlowWaiter, MessageFlow
from ..core.flow import Flow
from ..core.names import ApplicationName
from ..core.qos import QosCube, RELIABLE
from ..core.system import System

Handler = Callable[[dict], dict]


class RpcServer:
    """Serves named methods over reliable flows."""

    def __init__(self, system: System, name: str = "rpc-server",
                 dif_names: Optional[List[str]] = None) -> None:
        self.system = system
        self.app_name = ApplicationName(name)
        self._methods: Dict[str, Handler] = {}
        self.requests_served = 0
        self.errors = 0
        self._flows: List[MessageFlow] = []
        system.register_app(self.app_name, self._on_flow, dif_names)

    def register_method(self, method: str, handler: Handler) -> None:
        """Expose ``handler`` under ``method``."""
        self._methods[method] = handler

    def _on_flow(self, flow: Flow) -> None:
        message_flow = MessageFlow(self.system.engine, flow)

        def on_message(data: bytes) -> None:
            request = json.loads(data.decode())
            handler = self._methods.get(request.get("method", ""))
            if handler is None:
                self.errors += 1
                reply = {"id": request.get("id"), "error": "no-such-method"}
            else:
                self.requests_served += 1
                reply = {"id": request.get("id"),
                         "result": handler(request.get("params", {}))}
            message_flow.send_message(json.dumps(reply).encode())
        message_flow.set_message_receiver(on_message)
        self._flows.append(message_flow)


class RpcClient:
    """Issues requests and correlates responses by id."""

    def __init__(self, system: System, server_name: str = "rpc-server",
                 client_name: str = "rpc-client", qos: QosCube = RELIABLE,
                 dif_name: Optional[str] = None) -> None:
        self.system = system
        self.flow = system.allocate_flow(ApplicationName(client_name),
                                         ApplicationName(server_name),
                                         qos=qos, dif_name=dif_name)
        self.waiter = FlowWaiter(self.flow)
        self.message_flow = MessageFlow(system.engine, self.flow)
        self.message_flow.set_message_receiver(self._on_message)
        self._next_id = 1
        self._pending: Dict[int, Callable[[dict], None]] = {}
        self.responses = 0

    @property
    def ready(self) -> bool:
        """True once the flow is allocated."""
        return self.waiter.completed and self.waiter.ok

    def call(self, method: str, params: dict,
             on_reply: Callable[[dict], None]) -> int:
        """Issue one request; returns its correlation id."""
        request_id = self._next_id
        self._next_id += 1
        self._pending[request_id] = on_reply
        payload = json.dumps({"id": request_id, "method": method,
                              "params": params}).encode()
        self.message_flow.send_message(payload)
        return request_id

    def _on_message(self, data: bytes) -> None:
        reply = json.loads(data.decode())
        handler = self._pending.pop(reply.get("id"), None)
        if handler is not None:
            self.responses += 1
            handler(reply)
