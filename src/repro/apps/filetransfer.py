"""Bulk file transfer over a reliable flow — the goodput workload.

Used by the wireless-scoping (E3) and utilization (E8) experiments: the
sender pushes a fixed number of bytes as fast as backpressure allows; the
receiver records completion time, from which goodput follows.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.api import FlowWaiter, MessageFlow
from ..core.flow import Flow
from ..core.names import ApplicationName
from ..core.qos import BULK, QosCube
from ..core.system import System

_CHUNK = 8 * 1024


class FileSink:
    """Receives a transfer and signals completion."""

    def __init__(self, system: System, name: str = "file-sink",
                 dif_names: Optional[List[str]] = None,
                 on_chunk: Optional[Callable[[float, int], None]] = None) -> None:
        self.system = system
        self.app_name = ApplicationName(name)
        self.on_chunk = on_chunk
        self.bytes_received = 0
        self.transfers_completed = 0
        self.completion_times: List[float] = []
        self._flows: List[MessageFlow] = []
        system.register_app(self.app_name, self._on_flow, dif_names)

    def _on_flow(self, flow: Flow) -> None:
        message_flow = MessageFlow(self.system.engine, flow)

        def on_message(data: bytes) -> None:
            if data.startswith(b"EOF:"):
                self.transfers_completed += 1
                self.completion_times.append(self.system.engine.now)
            else:
                self.bytes_received += len(data)
                if self.on_chunk is not None:
                    self.on_chunk(self.system.engine.now, len(data))
        message_flow.set_message_receiver(on_message)
        self._flows.append(message_flow)


class FileSender:
    """Pushes ``total_bytes`` then an EOF marker."""

    def __init__(self, system: System, total_bytes: int,
                 sink_name: str = "file-sink",
                 sender_name: str = "file-sender",
                 qos: QosCube = BULK, dif_name: Optional[str] = None,
                 chunk_size: int = _CHUNK) -> None:
        self.system = system
        self.total_bytes = total_bytes
        self.chunk_size = chunk_size
        self.bytes_submitted = 0
        self.started_at: Optional[float] = None
        self.flow = system.allocate_flow(ApplicationName(sender_name),
                                         ApplicationName(sink_name),
                                         qos=qos, dif_name=dif_name)
        self.waiter = FlowWaiter(self.flow)
        self.message_flow = MessageFlow(system.engine, self.flow)
        self.flow.on_allocated = self._begin

    def _begin(self, _flow: Flow) -> None:
        self.waiter._on_ok(_flow)
        self.started_at = self.system.engine.now
        self._push()

    def _push(self) -> None:
        # keep the message-flow backlog shallow so memory stays bounded;
        # backpressure propagates from EFCP through MessageFlow to here.
        while (self.bytes_submitted < self.total_bytes
               and self.message_flow.pending_fragments() < 64):
            chunk = min(self.chunk_size, self.total_bytes - self.bytes_submitted)
            self.message_flow.send_message(b"d" * chunk)
            self.bytes_submitted += chunk
        if self.bytes_submitted >= self.total_bytes:
            self.message_flow.send_message(b"EOF:done")
            return
        self.system.engine.call_later(0.01, self._push, label="file.push")

    @property
    def finished_submitting(self) -> bool:
        """True once every byte (and the EOF) has been queued."""
        return self.bytes_submitted >= self.total_bytes
