"""Applications written against the IPC API (§3.1).

Each demonstrates one service class the paper says a DIF subsumes:
echo (liveness/latency), file transfer (bulk data), RPC (transactions,
§6.6), and mail relaying (application relaying, §6.6).
"""

from .echo import EchoClient, EchoServer
from .filetransfer import FileSender, FileSink
from .pubsub import Broker, PubSubClient
from .relay import Mailbox, MailRelay, send_mail
from .rpc import RpcClient, RpcServer
from .streaming import CbrSource, LatencySink

__all__ = [
    "EchoServer", "EchoClient",
    "FileSink", "FileSender",
    "RpcServer", "RpcClient",
    "Mailbox", "MailRelay", "send_mail",
    "Broker", "PubSubClient",
    "CbrSource", "LatencySink",
]
