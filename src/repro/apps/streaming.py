"""Constant-bit-rate streaming with one-way latency measurement.

The delay-sensitive workload of the utilization experiments (E8/A3): a
:class:`CbrSource` emits fixed-size messages on a period, stamping each
with its send time; a :class:`LatencySink` records per-source one-way
delays.  Both are ordinary applications of the IPC API.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..core.api import FlowWaiter, MessageFlow
from ..core.flow import Flow
from ..core.names import ApplicationName
from ..core.qos import QosCube
from ..core.system import System


class CbrSource:
    """Constant-bit-rate sender stamping each message with its send time."""

    def __init__(self, system: System, name: str, sink_name: str,
                 qos: QosCube, message_bytes: int, period: float,
                 dif_name: Optional[str] = None) -> None:
        self.system = system
        self.engine = system.engine
        self.message_bytes = message_bytes
        self.period = period
        self.sent = 0
        self.flow = system.allocate_flow(ApplicationName(name),
                                         ApplicationName(sink_name),
                                         qos=qos, dif_name=dif_name)
        self.waiter = FlowWaiter(self.flow)
        self.message_flow = MessageFlow(system.engine, self.flow)
        self._running = False

    def start(self) -> None:
        """Begin emitting."""
        self._running = True
        self._tick()

    def stop(self) -> None:
        """Cease emitting."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        if self.flow.allocated:
            header = json.dumps({"t": self.engine.now}).encode()
            padding = b"p" * max(0, self.message_bytes - len(header) - 1)
            self.message_flow.send_message(header + b"|" + padding)
            self.sent += 1
        self.engine.call_later(self.period, self._tick, label="cbr.tick")


class LatencySink:
    """Receives stamped messages and records one-way delays per source."""

    def __init__(self, system: System, name: str,
                 dif_names: Optional[List[str]] = None) -> None:
        self.system = system
        self.engine = system.engine
        self.delays: Dict[str, List[float]] = {}
        self.received = 0
        self._flows: List[MessageFlow] = []
        system.register_app(ApplicationName(name), self._on_flow, dif_names)

    def _on_flow(self, flow: Flow) -> None:
        message_flow = MessageFlow(self.engine, flow)
        source = str(flow.remote_app)

        def on_message(data: bytes) -> None:
            self.received += 1
            header = data.split(b"|", 1)[0]
            stamp = json.loads(header.decode())["t"]
            self.delays.setdefault(source, []).append(self.engine.now - stamp)
        message_flow.set_message_receiver(on_message)
        self._flows.append(message_flow)

    def delays_for(self, source: str) -> List[float]:
        """One-way delays recorded for ``source`` (copy)."""
        return list(self.delays.get(source, ()))
