"""Store-and-forward application relaying — mail as an IPC service.

§6.6: "the same functions appear in what are now called application
relaying (e.g., email) [...] This allows ISPs to expand into what has
traditionally been a purely host service."  A :class:`MailRelay` is an
application of an upper DIF that accepts messages addressed to *user
names*, queues them, and forwards toward the relay or mailbox responsible
— the DIF structure (naming, flows, QoS) is reused one level up, with the
relay playing exactly the role a router plays below it.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from ..core.api import MessageFlow
from ..core.flow import Flow
from ..core.names import ApplicationName
from ..core.qos import RELIABLE
from ..core.system import System


class Mailbox:
    """Terminal delivery point for a set of local users."""

    def __init__(self, system: System, name: str,
                 users: List[str], dif_names: Optional[List[str]] = None) -> None:
        self.system = system
        self.app_name = ApplicationName(name)
        self.users = set(users)
        self.delivered: Dict[str, List[dict]] = {user: [] for user in users}
        self._flows: List[MessageFlow] = []
        system.register_app(self.app_name, self._on_flow, dif_names)

    def _on_flow(self, flow: Flow) -> None:
        message_flow = MessageFlow(self.system.engine, flow)

        def on_message(data: bytes) -> None:
            envelope = json.loads(data.decode())
            user = envelope.get("to", "")
            if user in self.users:
                self.delivered[user].append(envelope)
        message_flow.set_message_receiver(on_message)
        self._flows.append(message_flow)

    def inbox(self, user: str) -> List[dict]:
        """Messages delivered for ``user``."""
        return list(self.delivered.get(user, []))


class MailRelay:
    """Queues and forwards envelopes toward the responsible next hop.

    ``routes`` maps user → next-hop application name (a further relay or a
    mailbox).  Unroutable envelopes stay queued — visible backlog, like a
    real MTA.
    """

    def __init__(self, system: System, name: str,
                 routes: Dict[str, str],
                 dif_names: Optional[List[str]] = None) -> None:
        self.system = system
        self.app_name = ApplicationName(name)
        self.routes = dict(routes)
        self.queued: List[dict] = []
        self.forwarded = 0
        self._out_flows: Dict[str, MessageFlow] = {}
        self._flows: List[MessageFlow] = []
        system.register_app(self.app_name, self._on_flow, dif_names)

    def _on_flow(self, flow: Flow) -> None:
        message_flow = MessageFlow(self.system.engine, flow)

        def on_message(data: bytes) -> None:
            self.submit(json.loads(data.decode()))
        message_flow.set_message_receiver(on_message)
        self._flows.append(message_flow)

    def submit(self, envelope: dict) -> None:
        """Accept an envelope for forwarding (from a flow or locally)."""
        self.queued.append(envelope)
        self._drain()

    def _drain(self) -> None:
        remaining = []
        for envelope in self.queued:
            next_hop = self.routes.get(envelope.get("to", ""))
            if next_hop is None:
                remaining.append(envelope)
                continue
            self._forward(next_hop, envelope)
        self.queued = remaining

    def _forward(self, next_hop: str, envelope: dict) -> None:
        message_flow = self._out_flows.get(next_hop)
        if message_flow is None:
            flow = self.system.allocate_flow(
                self.app_name, ApplicationName(next_hop), qos=RELIABLE)
            message_flow = MessageFlow(self.system.engine, flow)
            self._out_flows[next_hop] = message_flow
            payload = json.dumps(envelope).encode()
            flow.on_allocated = lambda _f, p=payload: self._send(next_hop, p)
            return
        self._send(next_hop, json.dumps(envelope).encode())

    def _send(self, next_hop: str, payload: bytes) -> None:
        message_flow = self._out_flows[next_hop]
        if message_flow.flow.allocated:
            message_flow.send_message(payload)
            self.forwarded += 1


def send_mail(system: System, sender_app: str, first_relay: str,
              to_user: str, body: str) -> Flow:
    """Submit one message into the relay mesh from an end system."""
    flow = system.allocate_flow(ApplicationName(sender_app),
                                ApplicationName(first_relay), qos=RELIABLE)
    message_flow = MessageFlow(system.engine, flow)
    envelope = json.dumps({"to": to_user, "from": sender_app,
                           "body": body}).encode()
    flow.on_allocated = lambda _f: message_flow.send_message(envelope)
    return flow
