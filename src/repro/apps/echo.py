"""Echo: the smallest application pair over the IPC API.

The server registers a *name*; the client allocates a flow *to that name*.
Neither ever sees an address — the API discipline of §3.1.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from ..core.api import FlowWaiter, MessageFlow
from ..core.flow import Flow
from ..core.names import ApplicationName
from ..core.qos import QosCube, RELIABLE
from ..core.system import System


class EchoServer:
    """Echoes every message back on the same flow."""

    def __init__(self, system: System, name: str = "echo-server",
                 dif_names: Optional[List[str]] = None) -> None:
        self.system = system
        self.app_name = ApplicationName(name)
        self._flows: List[MessageFlow] = []
        self.messages_echoed = 0
        system.register_app(self.app_name, self._on_flow, dif_names)

    def _on_flow(self, flow: Flow) -> None:
        message_flow = MessageFlow(self.system.engine, flow)

        def on_message(data: bytes) -> None:
            self.messages_echoed += 1
            message_flow.send_message(data)
        message_flow.set_message_receiver(on_message)
        self._flows.append(message_flow)

    def active_flows(self) -> int:
        """Flows currently served."""
        return sum(1 for mf in self._flows if mf.flow.allocated)


class EchoClient:
    """Sends messages and records round-trip times."""

    def __init__(self, system: System, server_name: str = "echo-server",
                 client_name: str = "echo-client",
                 qos: QosCube = RELIABLE,
                 dif_name: Optional[str] = None,
                 on_reply: Optional[Callable[[bytes], None]] = None,
                 on_ready: Optional[Callable[[], None]] = None) -> None:
        self.system = system
        self.on_reply = on_reply
        self.on_ready = on_ready
        self.app_name = ApplicationName(client_name)
        self.flow = system.allocate_flow(self.app_name,
                                         ApplicationName(server_name),
                                         qos=qos, dif_name=dif_name)
        self.waiter = FlowWaiter(self.flow)
        # chain after FlowWaiter's hook so `ready` stays truthful
        self.flow.on_allocated = self._on_allocated
        self.message_flow = MessageFlow(system.engine, self.flow)
        self.message_flow.set_message_receiver(self._on_reply)
        self.rtts: List[float] = []
        self._sent_at: Deque[float] = deque()
        self.replies = 0

    @property
    def ready(self) -> bool:
        """True once the flow is allocated."""
        return self.waiter.completed and self.waiter.ok

    def _on_allocated(self, flow: Flow) -> None:
        self.waiter._on_ok(flow)
        if self.on_ready is not None:
            self.on_ready()

    def ping(self, size: int = 64) -> None:
        """Send one message of ``size`` bytes."""
        self._sent_at.append(self.system.engine.now)
        self.message_flow.send_message(b"x" * size)

    def _on_reply(self, data: bytes) -> None:
        if self._sent_at:
            self.rtts.append(self.system.engine.now - self._sent_at.popleft())
        self.replies += 1
        if self.on_reply is not None:
            self.on_reply(data)
