"""Publish/subscribe over the IPC API — the paper's "peer-to-peer" service
class (§6.6).

A :class:`Broker` is an application of a DIF: subscribers allocate flows
to it and send SUBSCRIBE messages; publishers send PUBLISH messages; the
broker fans each publication out over the subscribers' flows.  Like the
mail relay, it shows a traditionally host-side service living naturally
inside an IPC facility — same naming, same flows, same QoS cubes.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Set

from ..core.api import FlowWaiter, MessageFlow
from ..core.flow import Flow
from ..core.names import ApplicationName
from ..core.qos import RELIABLE, QosCube
from ..core.system import System


class Broker:
    """Topic-based fan-out broker."""

    def __init__(self, system: System, name: str = "pubsub-broker",
                 dif_names: Optional[List[str]] = None) -> None:
        self.system = system
        self.app_name = ApplicationName(name)
        self._flows: List[MessageFlow] = []
        # topic -> set of MessageFlow indexes subscribed
        self._topics: Dict[str, Set[int]] = {}
        self.publications = 0
        self.deliveries = 0
        system.register_app(self.app_name, self._on_flow, dif_names)

    def _on_flow(self, flow: Flow) -> None:
        message_flow = MessageFlow(self.system.engine, flow)
        index = len(self._flows)
        self._flows.append(message_flow)

        def on_message(data: bytes) -> None:
            request = json.loads(data.decode())
            kind = request.get("op")
            if kind == "subscribe":
                self._topics.setdefault(request["topic"], set()).add(index)
            elif kind == "unsubscribe":
                self._topics.get(request["topic"], set()).discard(index)
            elif kind == "publish":
                self._fan_out(request["topic"], request.get("data", ""),
                              exclude=index)
        message_flow.set_message_receiver(on_message)

    def _fan_out(self, topic: str, data: str, exclude: int) -> None:
        self.publications += 1
        payload = json.dumps({"op": "event", "topic": topic,
                              "data": data}).encode()
        for index in sorted(self._topics.get(topic, ())):
            if index == exclude:
                continue
            message_flow = self._flows[index]
            if message_flow.flow.allocated:
                message_flow.send_message(payload)
                self.deliveries += 1

    def subscriber_count(self, topic: str) -> int:
        """Current subscriptions for ``topic``."""
        return len(self._topics.get(topic, ()))


class PubSubClient:
    """A publisher/subscriber endpoint talking to a :class:`Broker`."""

    def __init__(self, system: System, client_name: str,
                 broker_name: str = "pubsub-broker",
                 qos: QosCube = RELIABLE,
                 dif_name: Optional[str] = None) -> None:
        self.system = system
        self.app_name = ApplicationName(client_name)
        self.flow = system.allocate_flow(self.app_name,
                                         ApplicationName(broker_name),
                                         qos=qos, dif_name=dif_name)
        self.waiter = FlowWaiter(self.flow)
        self.message_flow = MessageFlow(system.engine, self.flow)
        self.message_flow.set_message_receiver(self._on_message)
        self.events: List[dict] = []
        self.on_event: Optional[Callable[[dict], None]] = None

    @property
    def ready(self) -> bool:
        """True once the broker flow is allocated."""
        return self.waiter.completed and self.waiter.ok

    def subscribe(self, topic: str) -> None:
        """Express interest in ``topic``."""
        self._send({"op": "subscribe", "topic": topic})

    def unsubscribe(self, topic: str) -> None:
        """Withdraw interest in ``topic``."""
        self._send({"op": "unsubscribe", "topic": topic})

    def publish(self, topic: str, data: str) -> None:
        """Publish ``data`` on ``topic``."""
        self._send({"op": "publish", "topic": topic, "data": data})

    def _send(self, request: dict) -> None:
        self.message_flow.send_message(json.dumps(request).encode())

    def _on_message(self, data: bytes) -> None:
        event = json.loads(data.decode())
        if event.get("op") == "event":
            self.events.append(event)
            if self.on_event is not None:
                self.on_event(event)
