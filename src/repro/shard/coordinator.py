"""Drive per-region shard engines through conservative-lookahead rounds.

The frame-exchange protocol (documented in docs/ARCHITECTURE.md):

1. **floor** — the earliest pending activity anywhere: the minimum over
   every region's next local event time and every relayed frame's
   arrival time.  Nothing in the whole simulation can happen before it.
2. **horizons** — region ``r`` may run to ``floor + lookahead(r)``,
   where ``lookahead(r)`` is the minimum propagation delay over ``r``'s
   boundary links (a region with no boundary links runs to completion —
   nothing can ever reach it).  Any frame sent to ``r`` during this
   round is sent at ``t >= floor`` and arrives at ``t + delay >= floor +
   lookahead(r)``, i.e. never inside the window ``r`` just simulated.
3. **step** — every region receives the frames relayed to it (scheduled
   at their exact recorded arrival times), runs to its horizon, and
   returns the boundary frames it emitted.
4. **relay** — emitted frames are routed to the far region of their
   link and delivered next round, sorted by arrival time (stable on
   emission order) so injection order is identical in-process and
   across worker processes.

Rounds repeat until every engine is drained and no frames are in
flight (or the ``until`` cap is reached).  Workers are persistent
processes — one per region, built from the same pure-data
:class:`~repro.shard.plan.RegionSpec` + workload payloads the sweeps
subsystem established for jobs (and honouring its
``REPRO_START_METHOD``), because a shard keeps live engine state
between rounds and so cannot be a fire-and-forget pool job.  Inside a
``multiprocessing`` pool worker (daemonic processes cannot have
children) the coordinator transparently falls back to in-process
execution — same rounds, same traces.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sweeps.runner import START_METHOD_ENV
from .engine import BoundaryFrame, ShardEngine
from .plan import RegionPlan

MODES = ("auto", "inline", "process")


class ShardRunError(RuntimeError):
    """A shard worker failed or the round loop did not converge."""


@dataclass
class ShardRunResult:
    """Merged outcome of one sharded run."""

    rows: List[Dict[str, Any]]          # first-delivery rows, merged+sorted
    node_stats: List[Dict[str, Any]]    # per-node stats, merged+sorted
    shards: List[Dict[str, Any]]        # per-shard summaries, region order
    traces: List[str] = field(default_factory=list)
    rounds: int = 0
    frames_relayed: int = 0
    mode: str = "inline"

    @property
    def events(self) -> int:
        """Total engine events across all shards."""
        return sum(shard["events"] for shard in self.shards)


class _InlineShard:
    """A region engine living in the coordinator's own process."""

    def __init__(self, region, workload, seed) -> None:
        self._shard = ShardEngine(region, workload, seed=seed)

    def handshake(self) -> Optional[float]:
        return self._shard.next_event_time()

    def step(self, horizon: Optional[float],
             frames: List[BoundaryFrame]
             ) -> Tuple[List[BoundaryFrame], float, Optional[float]]:
        self._shard.inject(frames)
        out = self._shard.run_to(horizon)
        return out, self._shard.clock, self._shard.next_event_time()

    def finish(self, want_rows: bool, want_traces: bool):
        shard = self._shard
        return (shard.delivery_rows() if want_rows else [],
                shard.node_stats() if want_rows else [],
                shard.summary(include_trace=want_traces),
                shard.trace_text() if want_traces else "")

    def close(self) -> None:
        pass


def _shard_worker(conn, region, workload, seed) -> None:
    """Worker-process loop: build once, then step on command.

    Module-level so ``spawn`` can import it by reference; everything it
    receives is pure data.
    """
    try:
        shard = ShardEngine(region, workload, seed=seed)
        conn.send(("ready", shard.next_event_time()))
        while True:
            message = conn.recv()
            if message[0] == "step":
                _kind, horizon, frames = message
                shard.inject(frames)
                out = shard.run_to(horizon)
                conn.send(("stepped", out, shard.clock,
                           shard.next_event_time()))
            elif message[0] == "finish":
                _kind, want_rows, want_traces = message
                conn.send(("done",
                           shard.delivery_rows() if want_rows else [],
                           shard.node_stats() if want_rows else [],
                           shard.summary(include_trace=want_traces),
                           shard.trace_text() if want_traces else ""))
                return
            else:  # pragma: no cover - protocol misuse
                raise ShardRunError(f"unknown command {message[0]!r}")
    except Exception as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


class _ProcessShard:
    """A region engine in a dedicated persistent worker process."""

    def __init__(self, context, region, workload, seed) -> None:
        self.region = region.region
        parent_conn, child_conn = context.Pipe()
        self._conn = parent_conn
        self._proc = context.Process(
            target=_shard_worker, args=(child_conn, region, workload, seed),
            name=f"shard-{region.region}", daemon=True)
        self._proc.start()
        child_conn.close()

    def _recv(self, expected: str):
        try:
            message = self._conn.recv()
        except EOFError:
            raise ShardRunError(
                f"shard {self.region} worker died without replying")
        if message[0] == "error":
            raise ShardRunError(f"shard {self.region} failed: {message[1]}")
        if message[0] != expected:  # pragma: no cover - protocol misuse
            raise ShardRunError(
                f"shard {self.region}: expected {expected!r} reply, "
                f"got {message[0]!r}")
        return message[1:]

    def handshake(self) -> Optional[float]:
        return self._recv("ready")[0]

    def send_step(self, horizon: Optional[float],
                  frames: List[BoundaryFrame]) -> None:
        self._conn.send(("step", horizon, frames))

    def recv_step(self) -> Tuple[List[BoundaryFrame], float, Optional[float]]:
        out, clock, nxt = self._recv("stepped")
        return out, clock, nxt

    def finish(self, want_rows: bool, want_traces: bool):
        self._conn.send(("finish", want_rows, want_traces))
        return self._recv("done")

    def close(self) -> None:
        self._conn.close()
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover - hung worker
            self._proc.terminate()
            self._proc.join(timeout=5)


class ShardCoordinator:
    """Run a :class:`RegionPlan` to completion, relaying boundary frames.

    Parameters
    ----------
    plan, workload, seed:
        The pure-data description every region is built from.
    mode:
        ``"process"`` (one persistent worker per region),
        ``"inline"`` (all regions in this process, stepped round-robin),
        or ``"auto"`` — process when there is real parallelism to win
        and spawning children is possible, inline otherwise (single
        region, or running inside a daemonic pool worker).
    start_method:
        ``multiprocessing`` start method for process mode; defaults to
        ``REPRO_START_METHOD`` (the sweeps knob), then the platform
        default.
    """

    def __init__(self, plan: RegionPlan, workload: Dict[str, Any],
                 seed: int = 0, mode: str = "auto",
                 start_method: Optional[str] = None,
                 max_rounds: int = 1_000_000) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; known: "
                             f"{', '.join(MODES)}")
        self.plan = plan
        self.workload = workload
        self.seed = seed
        self.max_rounds = max_rounds
        self.start_method = (start_method
                             or os.environ.get(START_METHOD_ENV) or None)
        if self.start_method is not None:
            known = multiprocessing.get_all_start_methods()
            if self.start_method not in known:
                raise ValueError(f"unknown start method "
                                 f"{self.start_method!r}; known: "
                                 f"{', '.join(known)}")
        if mode == "auto":
            # process mode only pays when there is real parallelism to
            # win: multiple regions, more than one CPU, and the ability
            # to spawn children at all (daemonic pool workers cannot).
            # Inline rounds are not a degraded fallback — on a single
            # core they are the *faster* configuration (no IPC, and the
            # per-region heaps already beat one monolithic heap).
            daemonic = multiprocessing.current_process().daemon
            cpus = os.cpu_count() or 1
            mode = ("process" if len(plan.regions) > 1 and cpus > 1
                    and not daemonic else "inline")
        self.mode = mode

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, collect_rows: bool = True,
            collect_traces: bool = True) -> ShardRunResult:
        """Execute rounds until quiescence (or ``until``), then merge.

        ``collect_rows`` / ``collect_traces`` gate the expensive result
        payloads: a million-delivery scale run only needs the per-shard
        summaries, not a million row dicts or megabytes of trace text.
        """
        proxies = self._make_proxies()
        try:
            return self._run_rounds(proxies, until, collect_rows,
                                    collect_traces)
        finally:
            for proxy in proxies:
                proxy.close()

    def _make_proxies(self) -> List[Any]:
        if self.mode == "inline":
            return [_InlineShard(region, self.workload, self.seed)
                    for region in self.plan.regions]
        context = multiprocessing.get_context(self.start_method)
        return [_ProcessShard(context, region, self.workload, self.seed)
                for region in self.plan.regions]

    def _run_rounds(self, proxies, until, collect_rows,
                    collect_traces) -> ShardRunResult:
        plan = self.plan
        count = len(proxies)
        nexts: List[Optional[float]] = [p.handshake() for p in proxies]
        clocks = [0.0] * count
        inboxes: List[List[BoundaryFrame]] = [[] for _ in range(count)]
        rounds = 0
        frames_relayed = 0
        while True:
            activity = [t for t in nexts if t is not None]
            activity.extend(frame[0] for inbox in inboxes for frame in inbox)
            if not activity:
                break
            floor = min(activity)
            if until is not None and floor > until:
                break
            rounds += 1
            if rounds > self.max_rounds:
                raise ShardRunError(
                    f"no convergence after {self.max_rounds} rounds "
                    f"(floor={floor!r})")
            horizons = []
            for region in plan.regions:
                lookahead = region.lookahead
                horizon = (None if math.isinf(lookahead)
                           else floor + lookahead)
                if until is not None:
                    horizon = until if horizon is None else min(horizon,
                                                                until)
                horizons.append(horizon)
            # frames injected in arrival order (stable on emission order)
            for inbox in inboxes:
                inbox.sort(key=lambda frame: frame[0])
            outputs = self._step_all(proxies, horizons, inboxes)
            inboxes = [[] for _ in range(count)]
            for index, (out, clock, nxt) in enumerate(outputs):
                clocks[index] = clock
                nexts[index] = nxt
                for frame in out:
                    pair = plan.boundary_regions[frame[1]]
                    dest = pair[1] if pair[0] == index else pair[0]
                    inboxes[dest].append(frame)
                    frames_relayed += 1
        if until is not None and any(clock < until for clock in clocks):
            # advance idle engines to the cap (parity with an unsharded
            # run(until=...), whose clock always ends at the cap);
            # leftover frames arriving beyond the cap stay undelivered
            # exactly as events beyond the cap stay unprocessed
            outputs = self._step_all(proxies, [until] * count, inboxes)
            clocks = [clock for _out, clock, _next in outputs]
        return self._merge(proxies, rounds, frames_relayed, collect_rows,
                           collect_traces)

    def _step_all(self, proxies, horizons, inboxes):
        if self.mode == "inline":
            return [proxy.step(horizon, inbox)
                    for proxy, horizon, inbox in zip(proxies, horizons,
                                                     inboxes)]
        for proxy, horizon, inbox in zip(proxies, horizons, inboxes):
            proxy.send_step(horizon, inbox)
        return [proxy.recv_step() for proxy in proxies]

    def _merge(self, proxies, rounds, frames_relayed, collect_rows,
               collect_traces) -> ShardRunResult:
        rows: List[Dict[str, Any]] = []
        node_stats: List[Dict[str, Any]] = []
        summaries: List[Dict[str, Any]] = []
        traces: List[str] = []
        for proxy in proxies:
            shard_rows, shard_stats, summary, trace = proxy.finish(
                collect_rows, collect_traces)
            rows.extend(shard_rows)
            node_stats.extend(shard_stats)
            summaries.append(summary)
            if collect_traces:
                traces.append(trace)
        rows.sort(key=lambda row: (row["node"], row["origin"], row["seq"]))
        node_stats.sort(key=lambda row: row["node"])
        return ShardRunResult(rows=rows, node_stats=node_stats,
                              shards=summaries, traces=traces,
                              rounds=rounds, frames_relayed=frames_relayed,
                              mode=self.mode)


def run_sharded(plan: RegionPlan, workload: Dict[str, Any], seed: int = 0,
                mode: str = "auto", start_method: Optional[str] = None,
                until: Optional[float] = None, collect_rows: bool = True,
                collect_traces: bool = True) -> ShardRunResult:
    """One-call sharded execution of a plan + workload.

    Always deterministic (same plan + workload + seed ⇒ identical
    per-shard traces, any mode), and every frame is delivered at the
    exact timestamp the unsharded link would have computed.  Exact
    *equivalence* with an unsharded run additionally requires the
    workload to be tie-free: at an exactly shared float timestamp an
    injected boundary frame executes after local events, where one
    engine may have interleaved them — see the lookahead section of
    docs/ARCHITECTURE.md.  Order-insensitive results (delivery counts,
    reach sets) are equivalent regardless.
    """
    coordinator = ShardCoordinator(plan, workload, seed=seed, mode=mode,
                                   start_method=start_method)
    return coordinator.run(until=until, collect_rows=collect_rows,
                           collect_traces=collect_traces)
