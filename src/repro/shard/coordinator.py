"""Drive per-region shard engines through conservative-lookahead rounds.

The frame-exchange protocol (documented in docs/ARCHITECTURE.md) comes
in two flavours, selected by ``protocol=``:

``per-channel`` (the default)
    1. **ent** — each region's earliest possible activity: the minimum
       of its next local event time and the arrival times of frames
       already relayed toward it.
    2. **grants** — :func:`~repro.shard.plan.grant_horizons` solves the
       emission-bound fixpoint over the directed region channel graph
       and grants region ``r`` the minimum over its *incoming* channels
       of ``sender's bound + channel delay``.  The fixpoint is the
       quiet-cut batching: a stretch of simulated time in which no
       region has an event inside the old global-min window collapses
       into one grant instead of a crawl of empty rounds.
    3. **step the work set** — only regions that can actually act
       (``ent <= grant``) are stepped; their pending frames are
       injected at their exact recorded arrival times, they run to
       their grant, and they return the frames they emitted.  Idle
       regions are not contacted at all — a worker's boundary-round
       count is the number of grants it consumes, not the number of
       global barriers.
    4. **relay** — emitted frames are routed to the far region of
       their link and held until that region is next stepped, sorted
       by arrival time (stable on emission order) so injection order
       is identical in-process and across worker processes.

``global-min`` (the PR-5 baseline, kept for regression comparison)
    Every region, every round, runs to ``floor + lookahead(region)``
    where ``floor`` is the global activity minimum — the coarser rule
    the per-channel grants provably dominate (see the property test in
    ``tests/test_shard_grants.py``).

Rounds repeat until every engine is drained and no frames are in
flight (or the ``until`` cap is reached).  Workers are persistent
processes — one per region, built from the same pure-data
:class:`~repro.shard.plan.RegionSpec` + workload payloads the sweeps
subsystem established for jobs (and honouring its
``REPRO_START_METHOD``), because a shard keeps live engine state
between rounds and so cannot be a fire-and-forget pool job.  Inside a
``multiprocessing`` pool worker (daemonic processes cannot have
children) the coordinator transparently falls back to in-process
execution — same rounds, same traces.  Frame batches cross worker
pipes as one flat byte buffer per round per direction
(:class:`~repro.shard.framing.PackedFrameTransport`).
"""

from __future__ import annotations

import math
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sweeps.runner import START_METHOD_ENV
from .engine import BoundaryFrame, ShardEngine
from .framing import TRANSPORTS, FrameTransport
from .plan import RegionPlan, grant_horizons

MODES = ("auto", "inline", "process")
PROTOCOLS = ("per-channel", "global-min")


class ShardRunError(RuntimeError):
    """A shard worker failed or the round loop did not converge."""


@dataclass
class ShardRunResult:
    """Merged outcome of one sharded run."""

    rows: List[Dict[str, Any]]          # first-delivery rows, merged+sorted
    node_stats: List[Dict[str, Any]]    # per-node stats, merged+sorted
    shards: List[Dict[str, Any]]        # per-shard summaries, region order
    traces: List[str] = field(default_factory=list)
    rounds: int = 0
    frames_relayed: int = 0
    mode: str = "inline"
    protocol: str = "per-channel"
    # boundary rounds actually executed, per region: under per-channel
    # grants an idle region sits out a round entirely, so these count
    # the per-worker synchronization cost the global `rounds` barrier
    # count no longer measures
    region_steps: List[int] = field(default_factory=list)

    @property
    def events(self) -> int:
        """Total engine events across all shards."""
        return sum(shard["events"] for shard in self.shards)

    @property
    def steps(self) -> int:
        """Total boundary rounds executed across all regions."""
        return sum(self.region_steps)


class _InlineShard:
    """A region engine living in the coordinator's own process."""

    def __init__(self, region, workload, seed) -> None:
        self._shard = ShardEngine(region, workload, seed=seed)

    def handshake(self) -> Optional[float]:
        return self._shard.next_event_time()

    def send_step(self, horizon: Optional[float],
                  frames: List[BoundaryFrame]) -> None:
        self._pending = (horizon, frames)

    def recv_step(self) -> Tuple[List[BoundaryFrame], float, Optional[float]]:
        horizon, frames = self._pending
        self._shard.inject(frames)
        out = self._shard.run_to(horizon)
        return out, self._shard.clock, self._shard.next_event_time()

    def finish(self, want_rows: bool, want_traces: bool):
        shard = self._shard
        return (shard.delivery_rows() if want_rows else [],
                shard.node_stats() if want_rows else [],
                shard.summary(include_trace=want_traces),
                shard.trace_text() if want_traces else "")

    def close(self) -> None:
        pass


def _shard_worker(conn, region, workload, seed, transport_name) -> None:
    """Worker-process loop: build once, then step on command.

    Module-level so ``spawn`` can import it by reference; everything it
    receives is pure data.  Frame batches arrive and leave through the
    named :class:`~repro.shard.framing.FrameTransport`.
    """
    try:
        transport = TRANSPORTS[transport_name]
        shard = ShardEngine(region, workload, seed=seed)
        conn.send(("ready", shard.next_event_time()))
        while True:
            message = conn.recv()
            if message[0] == "step":
                _kind, horizon, payload = message
                shard.inject(transport.loads(payload))
                out = shard.run_to(horizon)
                conn.send(("stepped", transport.dumps(out), shard.clock,
                           shard.next_event_time()))
            elif message[0] == "finish":
                _kind, want_rows, want_traces = message
                conn.send(("done",
                           shard.delivery_rows() if want_rows else [],
                           shard.node_stats() if want_rows else [],
                           shard.summary(include_trace=want_traces),
                           shard.trace_text() if want_traces else ""))
                return
            else:  # pragma: no cover - protocol misuse
                raise ShardRunError(f"unknown command {message[0]!r}")
    except Exception as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


class _ProcessShard:
    """A region engine in a dedicated persistent worker process."""

    def __init__(self, context, region, workload, seed,
                 transport: FrameTransport) -> None:
        self.region = region.region
        self._transport = transport
        parent_conn, child_conn = context.Pipe()
        self._conn = parent_conn
        self._proc = context.Process(
            target=_shard_worker,
            args=(child_conn, region, workload, seed, transport.name),
            name=f"shard-{region.region}", daemon=True)
        self._proc.start()
        child_conn.close()

    def _recv(self, expected: str):
        try:
            message = self._conn.recv()
        except EOFError:
            raise ShardRunError(
                f"shard {self.region} worker died without replying")
        if message[0] == "error":
            raise ShardRunError(f"shard {self.region} failed: {message[1]}")
        if message[0] != expected:  # pragma: no cover - protocol misuse
            raise ShardRunError(
                f"shard {self.region}: expected {expected!r} reply, "
                f"got {message[0]!r}")
        return message[1:]

    def handshake(self) -> Optional[float]:
        return self._recv("ready")[0]

    def send_step(self, horizon: Optional[float],
                  frames: List[BoundaryFrame]) -> None:
        self._conn.send(("step", horizon, self._transport.dumps(frames)))

    def recv_step(self) -> Tuple[List[BoundaryFrame], float, Optional[float]]:
        payload, clock, nxt = self._recv("stepped")
        return self._transport.loads(payload), clock, nxt

    def finish(self, want_rows: bool, want_traces: bool):
        self._conn.send(("finish", want_rows, want_traces))
        return self._recv("done")

    def close(self) -> None:
        self._conn.close()
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover - hung worker
            self._proc.terminate()
            self._proc.join(timeout=5)


class ShardCoordinator:
    """Run a :class:`RegionPlan` to completion, relaying boundary frames.

    Parameters
    ----------
    plan, workload, seed:
        The pure-data description every region is built from.
    mode:
        ``"process"`` (one persistent worker per region),
        ``"inline"`` (all regions in this process, stepped round-robin),
        or ``"auto"`` — process when there is real parallelism to win
        and spawning children is possible, inline otherwise (single
        region, or running inside a daemonic pool worker).
    protocol:
        ``"per-channel"`` (fixpoint grants + quiet-cut batching, the
        default) or ``"global-min"`` (the PR-5 floor+lookahead rule,
        kept as the measured regression baseline).
    start_method:
        ``multiprocessing`` start method for process mode; defaults to
        ``REPRO_START_METHOD`` (the sweeps knob), then the platform
        default.
    transport:
        Frame-batch transport name (:data:`repro.shard.framing.TRANSPORTS`);
        ``"packed"`` — one flat byte buffer per round per direction —
        for worker processes.  Inline rounds always hand frame lists
        over directly (there is no pipe to pack for).
    """

    def __init__(self, plan: RegionPlan, workload: Dict[str, Any],
                 seed: int = 0, mode: str = "auto",
                 protocol: str = "per-channel",
                 start_method: Optional[str] = None,
                 transport: str = "packed",
                 max_rounds: int = 1_000_000) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; known: "
                             f"{', '.join(MODES)}")
        if protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {protocol!r}; known: "
                             f"{', '.join(PROTOCOLS)}")
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}; known: "
                             f"{', '.join(TRANSPORTS)}")
        self.plan = plan
        self.workload = workload
        self.seed = seed
        self.protocol = protocol
        self.transport = TRANSPORTS[transport]
        self.max_rounds = max_rounds
        self.start_method = (start_method
                             or os.environ.get(START_METHOD_ENV) or None)
        if self.start_method is not None:
            known = multiprocessing.get_all_start_methods()
            if self.start_method not in known:
                raise ValueError(f"unknown start method "
                                 f"{self.start_method!r}; known: "
                                 f"{', '.join(known)}")
        if mode == "auto":
            # process mode only pays when there is real parallelism to
            # win: multiple regions, more than one CPU, and the ability
            # to spawn children at all (daemonic pool workers cannot).
            # Inline rounds are not a degraded fallback — on a single
            # core they are the *faster* configuration (no IPC, and the
            # per-region heaps already beat one monolithic heap).
            daemonic = multiprocessing.current_process().daemon
            cpus = os.cpu_count() or 1
            mode = ("process" if len(plan.regions) > 1 and cpus > 1
                    and not daemonic else "inline")
        self.mode = mode

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, collect_rows: bool = True,
            collect_traces: bool = True) -> ShardRunResult:
        """Execute rounds until quiescence (or ``until``), then merge.

        ``collect_rows`` / ``collect_traces`` gate the expensive result
        payloads: a million-delivery scale run only needs the per-shard
        summaries, not a million row dicts or megabytes of trace text.
        """
        proxies = self._make_proxies()
        try:
            return self._run_rounds(proxies, until, collect_rows,
                                    collect_traces)
        finally:
            for proxy in proxies:
                proxy.close()

    def _make_proxies(self) -> List[Any]:
        if self.mode == "inline":
            return [_InlineShard(region, self.workload, self.seed)
                    for region in self.plan.regions]
        context = multiprocessing.get_context(self.start_method)
        return [_ProcessShard(context, region, self.workload, self.seed,
                              self.transport)
                for region in self.plan.regions]

    def _run_rounds(self, proxies, until, collect_rows,
                    collect_traces) -> ShardRunResult:
        plan = self.plan
        count = len(proxies)
        nexts: List[Optional[float]] = [p.handshake() for p in proxies]
        clocks = [0.0] * count
        inboxes: List[List[BoundaryFrame]] = [[] for _ in range(count)]
        region_steps = [0] * count
        rounds = 0
        frames_relayed = 0
        per_channel = self.protocol == "per-channel"
        while True:
            ents = []
            for index in range(count):
                ent = nexts[index] if nexts[index] is not None else math.inf
                for frame in inboxes[index]:
                    if frame[0] < ent:
                        ent = frame[0]
                ents.append(ent)
            floor = min(ents, default=math.inf)
            if math.isinf(floor):
                break
            if until is not None and floor > until:
                break
            rounds += 1
            if rounds > self.max_rounds:
                raise ShardRunError(self._livelock_report(
                    floor, ents, clocks, nexts, inboxes))
            if per_channel:
                horizons = grant_horizons(ents, plan.channels, until=until)
                working = [index for index in range(count)
                           if not math.isinf(ents[index])
                           and ents[index] <= horizons[index]]
            else:
                horizons = []
                for region in plan.regions:
                    lookahead = region.lookahead
                    horizon = (math.inf if math.isinf(lookahead)
                               else floor + lookahead)
                    if until is not None:
                        horizon = min(horizon, until)
                    horizons.append(horizon)
                working = list(range(count))
            # frames injected in arrival order (stable on emission order)
            for index in working:
                inboxes[index].sort(key=lambda frame: frame[0])
            outputs = self._step_some(proxies, working, horizons, inboxes,
                                      clocks)
            # stepped regions consumed their inboxes at send time; clear
            # them all *before* relaying, or a frame relayed toward a
            # region stepped later in the same round would be wiped out
            for index, (out, clock, nxt) in zip(working, outputs):
                region_steps[index] += 1
                clocks[index] = clock
                nexts[index] = nxt
                inboxes[index] = []
            for index, (out, _clock, _next) in zip(working, outputs):
                for frame in out:
                    pair = plan.boundary_regions[frame[1]]
                    dest = pair[1] if pair[0] == index else pair[0]
                    inboxes[dest].append(frame)
                    frames_relayed += 1
        if until is not None and any(clock < until for clock in clocks):
            # advance every engine to the cap (parity with an unsharded
            # run(until=...), whose clock always ends at the cap).
            # Leftover frames arriving beyond the cap are injected but
            # stay undelivered, exactly as events beyond the cap stay
            # unprocessed — and under the lookahead invariant this
            # cap-advance can process no event at all, so it can emit
            # no frame: every region's earliest activity already lies
            # strictly beyond ``until`` (that is why the round loop
            # ended).  A frame emitted here would mean a region ran
            # past a grant, so it is a protocol violation, not a frame
            # to relay.
            for inbox in inboxes:
                inbox.sort(key=lambda frame: frame[0])
            outputs = self._step_some(proxies, list(range(count)),
                                      [until] * count, inboxes, clocks)
            clocks = [clock for _out, clock, _next in outputs]
            stray = [(plan.regions[index].region, len(out))
                     for index, (out, _clock, _next) in enumerate(outputs)
                     if out]
            if stray:
                raise ShardRunError(
                    f"cap-advance to until={until!r} emitted boundary "
                    f"frames from region(s) "
                    f"{', '.join(f'{r} ({n} frame(s))' for r, n in stray)}: "
                    f"the lookahead invariant guarantees no event can "
                    f"execute past the final floor")
        return self._merge(proxies, rounds, frames_relayed, region_steps,
                           collect_rows, collect_traces)

    def _livelock_report(self, floor, ents, clocks, nexts, inboxes) -> str:
        """The max_rounds diagnosis: who is stuck, on what."""
        lines = [f"no convergence after {self.max_rounds} rounds "
                 f"(floor={floor!r}); per-region state:"]
        for index, region in enumerate(self.plan.regions):
            lines.append(
                f"  region {region.region}: clock={clocks[index]!r} "
                f"next_event={nexts[index]!r} ent={ents[index]!r} "
                f"inbox={len(inboxes[index])} frame(s)"
                + (f" (earliest arrival="
                   f"{min(f[0] for f in inboxes[index])!r})"
                   if inboxes[index] else ""))
        return "\n".join(lines)

    def _step_some(self, proxies, working, horizons, inboxes, clocks):
        """Step the given regions concurrently and collect their
        replies (in ``working`` order).

        The horizon a region is asked to run to never trails its own
        clock (grants are monotone, but ``max`` keeps the engine's
        run-to-the-past failure mode structurally impossible), and
        ``inf`` grants — regions nothing can reach — run to quiescence.
        """
        targets = []
        for index in working:
            horizon = horizons[index]
            targets.append(None if math.isinf(horizon)
                           else max(horizon, clocks[index]))
        ordered = [(proxies[index], target, inboxes[index])
                   for index, target in zip(working, targets)]
        for proxy, target, inbox in ordered:
            proxy.send_step(target, inbox)
        return [proxy.recv_step() for proxy, _target, _inbox in ordered]

    def _merge(self, proxies, rounds, frames_relayed, region_steps,
               collect_rows, collect_traces) -> ShardRunResult:
        rows: List[Dict[str, Any]] = []
        node_stats: List[Dict[str, Any]] = []
        summaries: List[Dict[str, Any]] = []
        traces: List[str] = []
        for proxy in proxies:
            shard_rows, shard_stats, summary, trace = proxy.finish(
                collect_rows, collect_traces)
            rows.extend(shard_rows)
            node_stats.extend(shard_stats)
            summaries.append(summary)
            if collect_traces:
                traces.append(trace)
        rows.sort(key=lambda row: (row["node"], row["origin"], row["seq"]))
        node_stats.sort(key=lambda row: row["node"])
        return ShardRunResult(rows=rows, node_stats=node_stats,
                              shards=summaries, traces=traces,
                              rounds=rounds, frames_relayed=frames_relayed,
                              mode=self.mode, protocol=self.protocol,
                              region_steps=region_steps)


def run_sharded(plan: RegionPlan, workload: Dict[str, Any], seed: int = 0,
                mode: str = "auto", protocol: str = "per-channel",
                start_method: Optional[str] = None,
                until: Optional[float] = None, collect_rows: bool = True,
                collect_traces: bool = True) -> ShardRunResult:
    """One-call sharded execution of a plan + workload.

    Always deterministic (same plan + workload + seed ⇒ identical
    per-shard traces, any mode or protocol), and every frame is
    delivered at the exact timestamp the unsharded link would have
    computed.  Exact *equivalence* with an unsharded run additionally
    requires the workload to be tie-free: at an exactly shared float
    timestamp an injected boundary frame executes after local events,
    where one engine may have interleaved them — see the lookahead
    section of docs/ARCHITECTURE.md.  Order-insensitive results
    (delivery counts, reach sets) are equivalent regardless.
    """
    coordinator = ShardCoordinator(plan, workload, seed=seed, mode=mode,
                                   protocol=protocol,
                                   start_method=start_method)
    return coordinator.run(until=until, collect_rows=collect_rows,
                           collect_traces=collect_traces)
