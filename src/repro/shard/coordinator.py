"""Drive per-region shard engines through conservative-lookahead rounds.

The frame-exchange protocol (documented in docs/ARCHITECTURE.md) comes
in three flavours, selected by ``protocol=``:

``per-channel`` (the default)
    1. **ent** — each region's earliest possible activity: the minimum
       of its next local event time and the arrival times of frames
       already relayed toward it.
    2. **grants** — :func:`~repro.shard.plan.grant_horizons` solves the
       emission-bound fixpoint over the directed region channel graph
       and grants region ``r`` the minimum over its *incoming* channels
       of ``sender's bound + channel delay``.  The fixpoint is the
       quiet-cut batching: a stretch of simulated time in which no
       region has an event inside the old global-min window collapses
       into one grant instead of a crawl of empty rounds.
    3. **step the work set** — only regions that can actually act
       (``ent <= grant``) are stepped; their pending frames are
       injected at their exact recorded arrival times, they run to
       their grant, and they return the frames they emitted.  Idle
       regions are not contacted at all — a worker's boundary-round
       count is the number of grants it consumes, not the number of
       global barriers.
    4. **relay** — emitted frames are routed to the far region of
       their link and held until that region is next stepped, sorted
       by arrival time (stable on emission order) so injection order
       is identical in-process and across worker processes.

``global-min`` (the PR-5 baseline, kept for regression comparison)
    Every region, every round, runs to ``floor + lookahead(region)``
    where ``floor`` is the global activity minimum — the coarser rule
    the per-channel grants provably dominate (see the property test in
    ``tests/test_shard_grants.py``).

``async-grants`` (no barrier at all)
    The per-channel rule, event-driven: the coordinator keeps every
    region's last known activity bound, dispatches a region the moment
    *its own* grant permits, and recomputes the fixpoint whenever a
    step completes — so a fast region never waits on the round tail of
    a slow one.  While a region is mid-step its contribution to the
    fixpoint is its **dispatch-time ent**: every event it executes in
    that step (and, by clock monotonicity, every later one) is at or
    after that bound, and the fixpoint's ``lbts`` values only grow as
    the computation advances, so a grant issued from an old fixpoint is
    still a valid lower bound on every frame that can later arrive —
    the standard conservative-synchronization monotonicity argument,
    spelled out in docs/ARCHITECTURE.md.  Results are bit-identical to
    the barrier protocols; the *counters* (grants, relay batches) are
    deterministic inline, where completions are consumed in region
    order, and timing-dependent in process mode, where
    ``multiprocessing.connection.wait`` reports them as they land.

Rounds repeat until every engine is drained and no frames are in
flight (or the ``until`` cap is reached).  Workers are persistent
processes — one per region, built from the same pure-data
:class:`~repro.shard.plan.RegionSpec` + workload payloads the sweeps
subsystem established for jobs (and honouring its
``REPRO_START_METHOD``), because a shard keeps live engine state
between rounds and so cannot be a fire-and-forget pool job.  Inside a
``multiprocessing`` pool worker (daemonic processes cannot have
children) the coordinator transparently falls back to in-process
execution — same rounds, same traces.

Frame batches cross to workers through one of three payload channels,
announced per batch by a descriptor in the control message (control
messages always stay on the pipe — they are tiny, and the pipe is the
one handle ``connection.wait`` can select on):

* ``object`` — the frame list rides inside the control message
  (pickled; the measured baseline).
* ``packed`` — one flat byte buffer per batch
  (:class:`~repro.shard.framing.PackedFrameTransport`), sent with
  ``Connection.send_bytes`` so the *buffer* is never pickled either.
* ``ring`` — the identical packed buffer, written into a per-direction
  shared-memory SPSC ring (:mod:`repro.shard.ring`): zero pickling and
  no kernel copy on the hot path.  A batch that exceeds ring capacity
  falls back to the ``packed`` pipe leg automatically — same bytes,
  slower lane.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Tuple

from ..sweeps.runner import START_METHOD_ENV
from .engine import BoundaryFrame, ShardEngine
from .framing import TRANSPORTS, FrameTransport
from .plan import RegionPlan, grant_horizons
from .ring import SharedMemoryRingTransport, ring_supported

MODES = ("auto", "inline", "process")
PROTOCOLS = ("per-channel", "global-min", "async-grants")
#: the shard coordinator's transport vocabulary: the stateless pipe
#: transports of :data:`~repro.shard.framing.TRANSPORTS` plus the
#: stateful per-worker shared-memory ring
TRANSPORT_NAMES = tuple(TRANSPORTS) + ("ring",)


class ShardRunError(RuntimeError):
    """A shard worker failed or the round loop did not converge."""


@dataclass
class ShardRunResult:
    """Merged outcome of one sharded run."""

    rows: List[Dict[str, Any]]          # first-delivery rows, merged+sorted
    node_stats: List[Dict[str, Any]]    # per-node stats, merged+sorted
    shards: List[Dict[str, Any]]        # per-shard summaries, region order
    traces: List[str] = field(default_factory=list)
    rounds: int = 0
    frames_relayed: int = 0
    mode: str = "inline"
    protocol: str = "per-channel"
    # boundary rounds actually executed, per region: under per-channel
    # grants an idle region sits out a round entirely, so these count
    # the per-worker synchronization cost the global `rounds` barrier
    # count no longer measures
    region_steps: List[int] = field(default_factory=list)
    #: grant/floor computations the coordinator performed: equals
    #: ``rounds`` for the barrier protocols (one per round) and the
    #: scheduler-iteration count for async-grants, whose fixpoint is
    #: recomputed per completion rather than per barrier
    grants: int = 0
    #: non-empty frame batches handed to regions (the coordinator →
    #: region direction) — the unit the ring/pipe transports actually
    #: move, deterministic in inline mode for every protocol
    relay_batches: int = 0
    #: packed payload bytes moved over worker channels, both
    #: directions; 0 inline (no channel) and for the ``object``
    #: transport (frames ride inside the pickled control message)
    relay_bytes: int = 0

    @property
    def events(self) -> int:
        """Total engine events across all shards."""
        return sum(shard["events"] for shard in self.shards)

    @property
    def steps(self) -> int:
        """Total boundary rounds executed across all regions."""
        return sum(self.region_steps)


# ----------------------------------------------------------------------
# Payload channels: how one frame batch crosses a worker boundary.  The
# control message carries a small descriptor; the bytes (if any) follow
# on the announced channel.  Both endpoints share these two functions,
# so the coordinator and the worker cannot disagree about the framing.
# ----------------------------------------------------------------------

def _stage_frames(transport: FrameTransport, frames: List[BoundaryFrame]
                  ) -> Tuple[tuple, Optional[bytes], int]:
    """Stage one outgoing batch: ``(descriptor, pipe_tail, nbytes)``.

    A ring leg is written *now* — the record waits in shared memory
    until the control message announces it (strict request-reply keeps
    at most one record per direction in flight, so this never blocks on
    a full ring).  A ``pipe_tail`` is returned instead when the batch
    must ride the pipe: the caller sends it with ``send_bytes`` *after*
    the control message, preserving pipe message order.
    """
    if not frames:
        return ("empty",), None, 0
    if transport.name == "object":
        return ("inline", frames), None, 0
    buf = transport.dumps(frames)
    if (transport.name == "ring"
            and len(buf) <= transport.tx.max_payload):
        transport.tx.write(buf)
        return ("ring", len(buf)), None, len(buf)
    # the packed pipe leg — and the ring's oversized-batch fallback:
    # identical bytes, sent unpickled via send_bytes
    return ("bytes", len(buf)), buf, len(buf)


def _recv_frames(conn, transport: FrameTransport, descriptor: tuple
                 ) -> Tuple[List[BoundaryFrame], int]:
    """Receive the batch a descriptor announced: ``(frames, nbytes)``."""
    kind = descriptor[0]
    if kind == "empty":
        return [], 0
    if kind == "inline":
        return descriptor[1], 0
    if kind == "bytes":
        buf = conn.recv_bytes()
        return transport.loads(buf), len(buf)
    if kind == "ring":
        buf = transport.rx.read()
        if len(buf) != descriptor[1]:  # pragma: no cover - protocol bug
            raise ShardRunError(
                f"ring record of {len(buf)} bytes does not match "
                f"announced batch of {descriptor[1]}")
        return transport.loads(buf), len(buf)
    raise ShardRunError(f"unknown payload descriptor {kind!r}")


class _InlineShard:
    """A region engine living in the coordinator's own process."""

    #: inline rounds hand frame lists over directly — no channel, no
    #: bytes (kept as an attribute so the merge code is proxy-agnostic)
    relay_bytes = 0

    def __init__(self, region, workload, seed) -> None:
        self._shard = ShardEngine(region, workload, seed=seed)

    def handshake(self) -> Optional[float]:
        return self._shard.next_event_time()

    def send_step(self, horizon: Optional[float],
                  frames: List[BoundaryFrame]) -> None:
        self._pending = (horizon, frames)

    def recv_step(self) -> Tuple[List[BoundaryFrame], float, Optional[float]]:
        horizon, frames = self._pending
        self._shard.inject(frames)
        out = self._shard.run_to(horizon)
        return out, self._shard.clock, self._shard.next_event_time()

    def finish(self, want_rows: bool, want_traces: bool):
        shard = self._shard
        return (shard.delivery_rows() if want_rows else [],
                shard.node_stats() if want_rows else [],
                shard.summary(include_trace=want_traces),
                shard.trace_text() if want_traces else "")

    def close(self) -> None:
        pass


def _shard_worker(conn, region, workload, seed, transport_name,
                  ring_handles=None) -> None:
    """Worker-process loop: build once, then step on command.

    Module-level so ``spawn`` can import it by reference; everything it
    receives is pure data (ring handles are a segment name plus a
    Condition, both spawn-safe).  Frame batches arrive and leave
    through the named payload channel.
    """
    ring = None
    try:
        if transport_name == "ring":
            ring = SharedMemoryRingTransport.attach_pair(ring_handles)
            transport: FrameTransport = ring
        else:
            transport = TRANSPORTS[transport_name]
        shard = ShardEngine(region, workload, seed=seed)
        conn.send(("ready", shard.next_event_time()))
        while True:
            message = conn.recv()
            if message[0] == "step":
                _kind, horizon, descriptor = message
                frames, _nbytes = _recv_frames(conn, transport, descriptor)
                shard.inject(frames)
                out = shard.run_to(horizon)
                reply, tail, _nbytes = _stage_frames(transport, out)
                conn.send(("stepped", reply, shard.clock,
                           shard.next_event_time()))
                if tail is not None:
                    conn.send_bytes(tail)
            elif message[0] == "finish":
                _kind, want_rows, want_traces = message
                conn.send(("done",
                           shard.delivery_rows() if want_rows else [],
                           shard.node_stats() if want_rows else [],
                           shard.summary(include_trace=want_traces),
                           shard.trace_text() if want_traces else ""))
                return
            else:  # pragma: no cover - protocol misuse
                raise ShardRunError(f"unknown command {message[0]!r}")
    except Exception as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        if ring is not None:
            ring.close()
        conn.close()


class _ProcessShard:
    """A region engine in a dedicated persistent worker process."""

    def __init__(self, context, region, workload, seed,
                 transport_name: str) -> None:
        self.region = region.region
        self.relay_bytes = 0
        self._ring: Optional[SharedMemoryRingTransport] = None
        ring_handles = None
        if transport_name == "ring":
            # rings are per-worker state (unlike the stateless pipe
            # transports): the coordinator creates — and later unlinks —
            # both directions' segments, the worker only attaches
            self._ring = SharedMemoryRingTransport.create_pair(context)
            self._transport: FrameTransport = self._ring
            ring_handles = self._ring.handles
        else:
            self._transport = TRANSPORTS[transport_name]
        parent_conn, child_conn = context.Pipe()
        self._conn = parent_conn
        try:
            self._proc = context.Process(
                target=_shard_worker,
                args=(child_conn, region, workload, seed, transport_name,
                      ring_handles),
                name=f"shard-{region.region}", daemon=True)
            self._proc.start()
        except Exception:
            if self._ring is not None:
                self._ring.close()
            raise
        child_conn.close()

    @property
    def conn(self):
        """The control pipe — the waitable handle the async scheduler
        selects on."""
        return self._conn

    def _recv(self, expected: str):
        try:
            message = self._conn.recv()
        except EOFError:
            raise ShardRunError(
                f"shard {self.region} worker died without replying")
        if message[0] == "error":
            raise ShardRunError(f"shard {self.region} failed: {message[1]}")
        if message[0] != expected:  # pragma: no cover - protocol misuse
            raise ShardRunError(
                f"shard {self.region}: expected {expected!r} reply, "
                f"got {message[0]!r}")
        return message[1:]

    def handshake(self) -> Optional[float]:
        return self._recv("ready")[0]

    def send_step(self, horizon: Optional[float],
                  frames: List[BoundaryFrame]) -> None:
        descriptor, tail, nbytes = _stage_frames(self._transport, frames)
        self.relay_bytes += nbytes
        self._conn.send(("step", horizon, descriptor))
        if tail is not None:
            self._conn.send_bytes(tail)

    def recv_step(self) -> Tuple[List[BoundaryFrame], float, Optional[float]]:
        descriptor, clock, nxt = self._recv("stepped")
        frames, nbytes = _recv_frames(self._conn, self._transport, descriptor)
        self.relay_bytes += nbytes
        return frames, clock, nxt

    def finish(self, want_rows: bool, want_traces: bool):
        self._conn.send(("finish", want_rows, want_traces))
        return self._recv("done")

    def close(self) -> None:
        self._conn.close()
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover - hung worker
            self._proc.terminate()
            self._proc.join(timeout=5)
        if self._ring is not None:
            # after the worker has exited (or been terminated): the
            # creator's close also unlinks both segments
            self._ring.close()


class _LoopState:
    """The round loop's mutable bookkeeping, shared by all protocols."""

    __slots__ = ("nexts", "clocks", "inboxes", "region_steps", "rounds",
                 "grants", "frames_relayed", "relay_batches")

    def __init__(self, nexts: List[Optional[float]]) -> None:
        count = len(nexts)
        self.nexts = nexts
        self.clocks = [0.0] * count
        self.inboxes: List[List[BoundaryFrame]] = [[] for _ in range(count)]
        self.region_steps = [0] * count
        self.rounds = 0
        self.grants = 0
        self.frames_relayed = 0
        self.relay_batches = 0


class ShardCoordinator:
    """Run a :class:`RegionPlan` to completion, relaying boundary frames.

    Parameters
    ----------
    plan, workload, seed:
        The pure-data description every region is built from.
    mode:
        ``"process"`` (one persistent worker per region),
        ``"inline"`` (all regions in this process, stepped round-robin),
        or ``"auto"`` — process when there is real parallelism to win
        and spawning children is possible, inline otherwise (single
        region, or running inside a daemonic pool worker).
    protocol:
        ``"per-channel"`` (fixpoint grants + quiet-cut batching, the
        default), ``"global-min"`` (the PR-5 floor+lookahead rule, kept
        as the measured regression baseline), or ``"async-grants"``
        (barrier-free: each region advances the moment its own
        channels permit).
    start_method:
        ``multiprocessing`` start method for process mode; defaults to
        ``REPRO_START_METHOD`` (the sweeps knob), then the platform
        default.
    transport:
        Frame-batch payload channel for worker processes — one of
        :data:`TRANSPORT_NAMES`: ``"packed"`` (flat byte buffer per
        batch over the pipe, unpickled, the default), ``"object"``
        (frames pickled inside the control message, the measured
        baseline), or ``"ring"`` (the packed buffer through a
        per-direction shared-memory SPSC ring, with automatic pipe
        fallback for oversized batches).  Inline rounds always hand
        frame lists over directly (there is no channel to pack for).
    """

    def __init__(self, plan: RegionPlan, workload: Dict[str, Any],
                 seed: int = 0, mode: str = "auto",
                 protocol: str = "per-channel",
                 start_method: Optional[str] = None,
                 transport: str = "packed",
                 max_rounds: int = 1_000_000) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; known: "
                             f"{', '.join(MODES)}")
        if protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {protocol!r}; known: "
                             f"{', '.join(PROTOCOLS)}")
        if transport not in TRANSPORT_NAMES:
            raise ValueError(f"unknown transport {transport!r}; known: "
                             f"{', '.join(TRANSPORT_NAMES)}")
        if transport == "ring" and not ring_supported():
            raise ValueError(
                "transport 'ring' needs multiprocessing.shared_memory, "
                "which this interpreter lacks")
        self.plan = plan
        self.workload = workload
        self.seed = seed
        self.protocol = protocol
        self.transport_name = transport
        self.max_rounds = max_rounds
        self.start_method = (start_method
                             or os.environ.get(START_METHOD_ENV) or None)
        if self.start_method is not None:
            known = multiprocessing.get_all_start_methods()
            if self.start_method not in known:
                raise ValueError(f"unknown start method "
                                 f"{self.start_method!r}; known: "
                                 f"{', '.join(known)}")
        if mode == "auto":
            # process mode only pays when there is real parallelism to
            # win: multiple regions, more than one CPU, and the ability
            # to spawn children at all (daemonic pool workers cannot).
            # Inline rounds are not a degraded fallback — on a single
            # core they are the *faster* configuration (no IPC, and the
            # per-region heaps already beat one monolithic heap).
            daemonic = multiprocessing.current_process().daemon
            cpus = os.cpu_count() or 1
            mode = ("process" if len(plan.regions) > 1 and cpus > 1
                    and not daemonic else "inline")
        self.mode = mode

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, collect_rows: bool = True,
            collect_traces: bool = True) -> ShardRunResult:
        """Execute rounds until quiescence (or ``until``), then merge.

        ``collect_rows`` / ``collect_traces`` gate the expensive result
        payloads: a million-delivery scale run only needs the per-shard
        summaries, not a million row dicts or megabytes of trace text.
        """
        proxies = self._make_proxies()
        try:
            return self._run_rounds(proxies, until, collect_rows,
                                    collect_traces)
        finally:
            for proxy in proxies:
                proxy.close()

    def _make_proxies(self) -> List[Any]:
        if self.mode == "inline":
            return [_InlineShard(region, self.workload, self.seed)
                    for region in self.plan.regions]
        context = multiprocessing.get_context(self.start_method)
        return [_ProcessShard(context, region, self.workload, self.seed,
                              self.transport_name)
                for region in self.plan.regions]

    def _run_rounds(self, proxies, until, collect_rows,
                    collect_traces) -> ShardRunResult:
        st = _LoopState([p.handshake() for p in proxies])
        if self.protocol == "async-grants":
            self._run_async(proxies, until, st)
        else:
            self._run_barrier(proxies, until, st)
        self._cap_advance(proxies, until, st)
        return self._merge(proxies, st, collect_rows, collect_traces)

    # ------------------------------------------------------------------
    def _run_barrier(self, proxies, until, st: _LoopState) -> None:
        """The two barrier protocols: one grant computation, one work
        set, one send-all-then-recv-all step per round."""
        plan = self.plan
        count = len(proxies)
        per_channel = self.protocol == "per-channel"
        while True:
            ents = []
            for index in range(count):
                nxt = st.nexts[index]
                ent = nxt if nxt is not None else math.inf
                for frame in st.inboxes[index]:
                    if frame[0] < ent:
                        ent = frame[0]
                ents.append(ent)
            floor = min(ents, default=math.inf)
            if math.isinf(floor):
                break
            if until is not None and floor > until:
                break
            st.rounds += 1
            st.grants += 1
            if st.rounds > self.max_rounds:
                raise ShardRunError(self._livelock_report(
                    floor, ents, st.clocks, st.nexts, st.inboxes))
            if per_channel:
                horizons = grant_horizons(ents, plan.channels, until=until)
                working = [index for index in range(count)
                           if not math.isinf(ents[index])
                           and ents[index] <= horizons[index]]
            else:
                horizons = []
                for region in plan.regions:
                    lookahead = region.lookahead
                    horizon = (math.inf if math.isinf(lookahead)
                               else floor + lookahead)
                    if until is not None:
                        horizon = min(horizon, until)
                    horizons.append(horizon)
                working = list(range(count))
            # frames injected in arrival order (stable on emission order)
            for index in working:
                st.inboxes[index].sort(key=lambda frame: frame[0])
            outputs = self._step_some(proxies, working, horizons,
                                      st.inboxes, st.clocks, st)
            # stepped regions consumed their inboxes at send time; clear
            # them all *before* relaying, or a frame relayed toward a
            # region stepped later in the same round would be wiped out
            for index, (out, clock, nxt) in zip(working, outputs):
                st.region_steps[index] += 1
                st.clocks[index] = clock
                st.nexts[index] = nxt
                st.inboxes[index] = []
            for index, (out, _clock, _next) in zip(working, outputs):
                self._relay(plan, index, out, st)

    # ------------------------------------------------------------------
    def _run_async(self, proxies, until, st: _LoopState) -> None:
        """The barrier-free protocol: dispatch each region the moment
        its own grant permits; recompute the fixpoint per completion.

        A busy region contributes its **dispatch-time ent** to the
        fixpoint — a lower bound on every event it executes from that
        moment on — so grants issued while it runs are still sound (the
        monotonicity argument in the module docstring).  Inline,
        completions are consumed lowest-region-first, which makes the
        grant/batch counters deterministic; in process mode they arrive
        in wall-clock order, so only the *results* (rows, stats,
        traces) are pinned, not the counters.
        """
        plan = self.plan
        count = len(proxies)
        busy: Dict[int, float] = {}     # region index → dispatch-time ent
        inline = self.mode == "inline"
        if not inline:
            conn_index = {proxies[index].conn: index
                          for index in range(count)}
        while True:
            ents = []
            for index in range(count):
                if index in busy:
                    ent = busy[index]
                else:
                    nxt = st.nexts[index]
                    ent = nxt if nxt is not None else math.inf
                for frame in st.inboxes[index]:
                    if frame[0] < ent:
                        ent = frame[0]
                ents.append(ent)
            floor = min(ents, default=math.inf)
            if not busy:
                if math.isinf(floor):
                    break
                if until is not None and floor > until:
                    break
            st.grants += 1
            if st.grants > self.max_rounds:
                raise ShardRunError(self._livelock_report(
                    floor, ents, st.clocks, st.nexts, st.inboxes))
            horizons = grant_horizons(ents, plan.channels, until=until)
            dispatch = [index for index in range(count)
                        if index not in busy
                        and not math.isinf(ents[index])
                        and ents[index] <= horizons[index]]
            for index in dispatch:
                inbox = st.inboxes[index]
                inbox.sort(key=lambda frame: frame[0])
                horizon = horizons[index]
                target = (None if math.isinf(horizon)
                          else max(horizon, st.clocks[index]))
                if inbox:
                    st.relay_batches += 1
                proxies[index].send_step(target, inbox)
                st.inboxes[index] = []
                st.region_steps[index] += 1
                busy[index] = ents[index]
            if dispatch:
                st.rounds += 1
            if not busy:
                # all idle yet nothing dispatchable with a finite floor
                # would contradict the no-livelock property; loop and
                # let the max_rounds guard surface the diagnosis if a
                # protocol bug ever gets us here
                continue
            # consume at least one completion, then re-solve the
            # fixpoint with the new bounds
            if inline:
                ready = [min(busy)]
            else:
                waitable = [proxies[index].conn for index in busy]
                ready = sorted(conn_index[conn]
                               for conn in mp_connection.wait(waitable))
            for index in ready:
                out, clock, nxt = proxies[index].recv_step()
                st.clocks[index] = clock
                st.nexts[index] = nxt
                del busy[index]
                self._relay(plan, index, out, st)

    # ------------------------------------------------------------------
    def _relay(self, plan, index, out, st: _LoopState) -> None:
        """Route one region's emitted frames to the far side of their
        links; they wait in the destination inbox until its next step."""
        for frame in out:
            pair = plan.boundary_regions[frame[1]]
            dest = pair[1] if pair[0] == index else pair[0]
            st.inboxes[dest].append(frame)
            st.frames_relayed += 1

    def _cap_advance(self, proxies, until, st: _LoopState) -> None:
        if until is None or not any(clock < until for clock in st.clocks):
            return
        # advance every engine to the cap (parity with an unsharded
        # run(until=...), whose clock always ends at the cap).
        # Leftover frames arriving beyond the cap are injected but
        # stay undelivered, exactly as events beyond the cap stay
        # unprocessed — and under the lookahead invariant this
        # cap-advance can process no event at all, so it can emit
        # no frame: every region's earliest activity already lies
        # strictly beyond ``until`` (that is why the round loop
        # ended).  A frame emitted here would mean a region ran
        # past a grant, so it is a protocol violation, not a frame
        # to relay.
        count = len(proxies)
        for inbox in st.inboxes:
            inbox.sort(key=lambda frame: frame[0])
        outputs = self._step_some(proxies, list(range(count)),
                                  [until] * count, st.inboxes, st.clocks,
                                  st)
        st.clocks[:] = [clock for _out, clock, _next in outputs]
        stray = [(self.plan.regions[index].region, len(out))
                 for index, (out, _clock, _next) in enumerate(outputs)
                 if out]
        if stray:
            raise ShardRunError(
                f"cap-advance to until={until!r} emitted boundary "
                f"frames from region(s) "
                f"{', '.join(f'{r} ({n} frame(s))' for r, n in stray)}: "
                f"the lookahead invariant guarantees no event can "
                f"execute past the final floor")

    def _livelock_report(self, floor, ents, clocks, nexts, inboxes) -> str:
        """The max_rounds diagnosis: who is stuck, on what."""
        lines = [f"no convergence after {self.max_rounds} rounds "
                 f"(floor={floor!r}); per-region state:"]
        for index, region in enumerate(self.plan.regions):
            lines.append(
                f"  region {region.region}: clock={clocks[index]!r} "
                f"next_event={nexts[index]!r} ent={ents[index]!r} "
                f"inbox={len(inboxes[index])} frame(s)"
                + (f" (earliest arrival="
                   f"{min(f[0] for f in inboxes[index])!r})"
                   if inboxes[index] else ""))
        return "\n".join(lines)

    def _step_some(self, proxies, working, horizons, inboxes, clocks,
                   st: _LoopState):
        """Step the given regions concurrently and collect their
        replies (in ``working`` order).

        The horizon a region is asked to run to never trails its own
        clock (grants are monotone, but ``max`` keeps the engine's
        run-to-the-past failure mode structurally impossible), and
        ``inf`` grants — regions nothing can reach — run to quiescence.
        """
        targets = []
        for index in working:
            horizon = horizons[index]
            targets.append(None if math.isinf(horizon)
                           else max(horizon, clocks[index]))
        ordered = [(proxies[index], target, inboxes[index])
                   for index, target in zip(working, targets)]
        for proxy, target, inbox in ordered:
            if inbox:
                st.relay_batches += 1
            proxy.send_step(target, inbox)
        return [proxy.recv_step() for proxy, _target, _inbox in ordered]

    def _merge(self, proxies, st: _LoopState, collect_rows,
               collect_traces) -> ShardRunResult:
        rows: List[Dict[str, Any]] = []
        node_stats: List[Dict[str, Any]] = []
        summaries: List[Dict[str, Any]] = []
        traces: List[str] = []
        relay_bytes = 0
        for proxy in proxies:
            shard_rows, shard_stats, summary, trace = proxy.finish(
                collect_rows, collect_traces)
            rows.extend(shard_rows)
            node_stats.extend(shard_stats)
            summaries.append(summary)
            relay_bytes += proxy.relay_bytes
            if collect_traces:
                traces.append(trace)
        rows.sort(key=lambda row: (row["node"], row["origin"], row["seq"]))
        node_stats.sort(key=lambda row: row["node"])
        return ShardRunResult(rows=rows, node_stats=node_stats,
                              shards=summaries, traces=traces,
                              rounds=st.rounds,
                              frames_relayed=st.frames_relayed,
                              mode=self.mode, protocol=self.protocol,
                              region_steps=st.region_steps,
                              grants=st.grants,
                              relay_batches=st.relay_batches,
                              relay_bytes=relay_bytes)


def run_sharded(plan: RegionPlan, workload: Dict[str, Any], seed: int = 0,
                mode: str = "auto", protocol: str = "per-channel",
                start_method: Optional[str] = None,
                transport: str = "packed",
                until: Optional[float] = None, collect_rows: bool = True,
                collect_traces: bool = True) -> ShardRunResult:
    """One-call sharded execution of a plan + workload.

    Always deterministic (same plan + workload + seed ⇒ identical
    per-shard traces, any mode or protocol), and every frame is
    delivered at the exact timestamp the unsharded link would have
    computed.  Exact *equivalence* with an unsharded run additionally
    requires the workload to be tie-free: at an exactly shared float
    timestamp an injected boundary frame executes after local events,
    where one engine may have interleaved them — see the lookahead
    section of docs/ARCHITECTURE.md.  Order-insensitive results
    (delivery counts, reach sets) are equivalent regardless.
    """
    coordinator = ShardCoordinator(plan, workload, seed=seed, mode=mode,
                                   protocol=protocol,
                                   start_method=start_method,
                                   transport=transport)
    return coordinator.run(until=until, collect_rows=collect_rows,
                           collect_traces=collect_traces)
