"""Frame-level flooding workload for sharded runs.

The expensive part of the flat E6 configuration is not Dijkstra — PR 2's
lazy SPF removed most of that — it is the *flooding fan-out*: every
link-state announcement traverses every link of a 1,000-system plant.
:class:`FloodNode` models exactly that data path at the sim layer: each
node originates sequence-numbered announcements and refloods first
copies out of every other interface, deduplicating by ``(origin, seq)``
the way the LSDB does.  Payloads are plain tuples, so frames cross shard
process boundaries by pickling, unchanged.

The workload itself is pure data (a dict of announcement times), so one
description drives the unsharded reference run, every in-process shard,
and every shard worker process identically — which is what makes the
sharded-vs-unsharded delivery equivalence testable at all.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..sim.network import Network

FLOOD_KIND = "flood"

#: default announcement payload size (bytes on the wire)
DEFAULT_SIZE = 64

#: default stagger between consecutive origins' announcements.  Chosen so
#: announcement offsets (multiples of 5e-4) can never coincide with sums
#: of the standard plant's hop delays (multiples of 1e-3/2e-3 plus
#: 64-byte serialization quanta) — no two frames contend for a queue at
#: exactly the same instant, so delivery times are tie-free and the
#: sharded run reproduces the unsharded one to the bit.
DEFAULT_SPACING = 5e-4


def flood_workload(announcements: List[Tuple[str, float]],
                   size_bytes: int = DEFAULT_SIZE) -> Dict[str, Any]:
    """The pure-data workload description carried to every shard."""
    return {
        "kind": FLOOD_KIND,
        "size_bytes": int(size_bytes),
        "announcements": [[str(node), float(at)] for node, at in announcements],
    }


def all_nodes_announce(nodes: Tuple[str, ...],
                       spacing: float = DEFAULT_SPACING,
                       size_bytes: int = DEFAULT_SIZE) -> Dict[str, Any]:
    """Every node originates one announcement, staggered in node order —
    the initial-LSA storm of a freshly built flat DIF."""
    return flood_workload(
        [(node, index * spacing) for index, node in enumerate(nodes)],
        size_bytes=size_bytes)


def sparse_announce(nodes: Tuple[str, ...], origins: int,
                    spacing: float = DEFAULT_SPACING,
                    size_bytes: int = DEFAULT_SIZE) -> Dict[str, Any]:
    """``origins`` evenly spaced nodes originate one announcement each.

    The 100k-system tier's workload: a full ``all_nodes_announce`` storm
    is quadratic (every announcement traverses every link — 10^10
    deliveries at that scale), while real plants after the initial storm
    see a sparse trickle of re-originations.  Picking every
    ``len(nodes)//origins``-th node keeps the origins spread across
    regions, so every boundary link still carries traffic.
    """
    if origins <= 0:
        raise ValueError(f"origins must be positive, got {origins}")
    origins = min(origins, len(nodes))
    stride = len(nodes) // origins
    chosen = [nodes[i * stride] for i in range(origins)]
    return flood_workload(
        [(node, index * spacing) for index, node in enumerate(chosen)],
        size_bytes=size_bytes)


class FloodNode:
    """Per-origin sequence-numbered flooding on one node, LSA-style."""

    __slots__ = ("node", "name", "_engine", "_tracer", "_seen", "_next_seq",
                 "deliveries", "announced", "duplicates", "forwarded",
                 "_interfaces")

    def __init__(self, node, tracer=None) -> None:
        self.node = node
        self.name = node.name
        self._engine = node.engine
        self._tracer = tracer
        self._seen: set = set()
        self._next_seq = 0
        #: (time, origin, seq) per first delivery, in delivery order
        self.deliveries: List[Tuple[float, str, int]] = []
        self.announced = 0
        self.duplicates = 0
        self.forwarded = 0
        self._interfaces = list(node.interfaces())
        for interface in self._interfaces:
            end = interface.end
            end.attach(lambda payload, size, _end=end:
                       self._receive(_end, payload, size))

    def announce(self, size_bytes: int = DEFAULT_SIZE) -> None:
        """Originate one announcement and flood it on every interface."""
        seq = self._next_seq
        self._next_seq += 1
        payload = (self.name, seq)
        self._seen.add(payload)
        self.announced += 1
        self._count("flood.announced")
        for interface in self._interfaces:
            interface.end.send(payload, size_bytes)
            self.forwarded += 1

    def _receive(self, from_end, payload, size: int) -> None:
        if payload in self._seen:
            self.duplicates += 1
            self._count("flood.duplicate")
            return
        self._seen.add(payload)
        origin, seq = payload
        self.deliveries.append((self._engine.now, origin, seq))
        self._count("flood.delivered")
        for interface in self._interfaces:
            if interface.end is not from_end:
                interface.end.send(payload, size)
                self.forwarded += 1

    def _count(self, name: str) -> None:
        if self._tracer is not None:
            self._tracer.count(name)

    def stats(self) -> Dict[str, Any]:
        """Order-insensitive per-node result row."""
        return {
            "node": self.name,
            "announced": self.announced,
            "received": len(self.deliveries),
            "duplicates": self.duplicates,
            "forwarded": self.forwarded,
        }


def attach_flood(network: Network, workload: Dict[str, Any],
                 local_nodes: Optional[Tuple[str, ...]] = None
                 ) -> Dict[str, FloodNode]:
    """Attach a :class:`FloodNode` to every (local) node and schedule the
    workload's announcements whose origin lives here.

    Interfaces must all be plugged in before this is called (boundary
    half-links included) — a flood node snapshots its interface list.
    """
    if workload.get("kind") != FLOOD_KIND:
        raise ValueError(f"unknown workload kind {workload.get('kind')!r}")
    size = int(workload.get("size_bytes", DEFAULT_SIZE))
    names = tuple(local_nodes) if local_nodes is not None \
        else tuple(network.nodes)
    floods = {name: FloodNode(network.nodes[name], tracer=network.tracer)
              for name in names}
    for node, at in workload["announcements"]:
        flood = floods.get(node)
        if flood is not None:
            network.engine.call_at(float(at), flood.announce, size,
                                   label="flood.announce")
    return floods


class FloodRun:
    """One engine's attached flood workload behind the common workload
    interface (:func:`repro.shard.engine.attach_workload`): delivery
    rows, per-node stats, summary fields, and the trace lines — all
    byte-identical to the formats pinned before workloads were
    pluggable."""

    __slots__ = ("floods",)

    def __init__(self, floods: Dict[str, FloodNode]) -> None:
        self.floods = floods

    def delivery_rows(self) -> List[Dict[str, Any]]:
        return delivery_rows(self.floods)

    def node_stat_rows(self) -> List[Dict[str, Any]]:
        return node_stat_rows(self.floods)

    def summary_extra(self) -> Dict[str, Any]:
        return {
            "deliveries": sum(len(f.deliveries)
                              for f in self.floods.values()),
            "duplicates": sum(f.duplicates for f in self.floods.values()),
        }

    def trace_lines(self) -> List[str]:
        lines = []
        for row in self.delivery_rows():
            lines.append(f"delivery {row['node']} {row['origin']} "
                         f"{row['seq']} {row['time']!r}")
        for stats in self.node_stat_rows():
            lines.append("node {node} announced={announced} "
                         "received={received} duplicates={duplicates} "
                         "forwarded={forwarded}".format(**stats))
        return lines


def delivery_rows(floods: Dict[str, FloodNode]) -> List[Dict[str, Any]]:
    """One row per first delivery, sorted by (node, origin, seq).

    Timestamps are included deliberately: on a tie-free workload the
    sharded run reproduces the unsharded delivery *times* bit for bit,
    and the equivalence test pins exactly that.
    """
    rows = []
    for name in sorted(floods):
        for time, origin, seq in sorted(
                floods[name].deliveries,
                key=lambda d: (d[1], d[2], d[0])):
            rows.append({"node": name, "origin": origin, "seq": seq,
                         "time": time})
    return rows


def node_stat_rows(floods: Dict[str, FloodNode]) -> List[Dict[str, Any]]:
    """Per-node stats rows sorted by node name."""
    return [floods[name].stats() for name in sorted(floods)]


def run_unsharded(spec, workload: Dict[str, Any], seed: int = 0,
                  until: Optional[float] = None,
                  collect_rows: bool = True) -> Dict[str, Any]:
    """The single-engine reference run of a flood workload.

    ``spec`` is a :class:`~repro.shard.plan.NetworkSpec`.  Returns the
    same row shapes as a sharded run so the equivalence tests (and the
    E6 comparison table) diff them directly.  ``collect_rows=False``
    skips building the per-delivery row lists — the same gating a scale
    run applies to the sharded side, so timed comparisons measure equal
    work.
    """
    network = spec.build(seed=seed)
    floods = attach_flood(network, workload)
    network.run(until=until)
    return {
        "rows": delivery_rows(floods) if collect_rows else [],
        "node_stats": node_stat_rows(floods) if collect_rows else [],
        "events": network.engine.events_processed,
        "clock": network.engine.now,
        "deliveries": sum(len(f.deliveries) for f in floods.values()),
        "duplicates": sum(f.duplicates for f in floods.values()),
    }
