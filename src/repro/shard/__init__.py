"""Sharded region engines with conservative DIF-boundary lookahead.

One simulated network, partitioned into regions that run on independent
engines (usually independent processes) and exchange timestamped frames
at the cut links.  The paper's recursion argument (§6.5 — scopes bound
state and update traffic) is also what makes the *simulation itself*
partitionable: almost all traffic is intra-region, and the boundary
links' propagation delay is a conservative lookahead that keeps the
parallel execution exact, not approximate.

See docs/ARCHITECTURE.md for the frame-exchange protocol and the
lookahead rule; `repro.experiments.e6_scalability` wires this into the
E6 scale tier (``repro e6-scale --shards N``).
"""

from .coordinator import (MODES, PROTOCOLS, TRANSPORT_NAMES,
                          ShardCoordinator, ShardRunError, ShardRunResult,
                          run_sharded)
from .engine import (BoundaryFrame, BoundaryHalf, ShardEngine,
                     attach_workload)
from .flood import (all_nodes_announce, attach_flood, delivery_rows,
                    flood_workload, node_stat_rows, run_unsharded,
                    sparse_announce)
from .framing import (FrameFormatError, FrameTransport, PackedFrameTransport,
                      pack_frames, unpack_frames)
from .plan import (BoundaryPort, LinkSpec, NetworkSpec, RegionPlan,
                   RegionSpec, ShardPlanError, assignment_by_prefix,
                   grant_horizons)
from .ring import (RingError, SharedMemoryRingTransport, SpscRing,
                   ring_supported)
from .stateful import (StatefulControlPlane, rib_fingerprint,
                       run_unsharded_stateful, stateful_workload)

__all__ = [
    "BoundaryFrame", "BoundaryHalf", "BoundaryPort", "FrameFormatError",
    "FrameTransport", "LinkSpec", "MODES", "NetworkSpec",
    "PROTOCOLS", "PackedFrameTransport", "RegionPlan", "RegionSpec",
    "RingError", "ShardCoordinator", "ShardPlanError", "ShardRunError",
    "ShardRunResult", "SharedMemoryRingTransport", "SpscRing",
    "StatefulControlPlane", "TRANSPORT_NAMES", "all_nodes_announce",
    "assignment_by_prefix", "attach_flood", "attach_workload",
    "delivery_rows", "flood_workload", "grant_horizons", "node_stat_rows",
    "pack_frames", "rib_fingerprint", "ring_supported", "run_sharded",
    "run_unsharded", "run_unsharded_stateful", "sparse_announce",
    "stateful_workload", "unpack_frames",
]
