"""The stateful control-plane workload: a real DIF, region-sharded.

PR 4's flood workload proved the frame-exchange protocol on primitive
tuples.  This module puts the actual architecture across the cut: each
engine builds :class:`~repro.core.system.System`\\ s, shims, and one
IPCP per system for a shared DIF, then runs **enrollment, RIEP
exchange, LSA flooding, and routing** — with every adjacency that
crosses a region boundary riding a codec-encoded
:class:`~repro.shard.engine.BoundaryHalf`.  The enrollment handshake,
the LSDB fast-sync, the hop-by-hop flood acks, and the keepalives all
cross worker processes as pure wire data.

Three design rules make the sharded build *equal* to the unsharded one
(same enrollments, same addresses, same RIB rows, bit-identical
timestamps), not merely similar:

1. **Fixed-time orchestration.**  The unsharded builders chain steps on
   completion callbacks inside one engine — a global sequencing no
   conservative-lookahead protocol can see.  Here every enrollment is
   scheduled at an absolute simulated time carried in the workload
   dict, so causality flows only through messages on links, which the
   lookahead rule accounts for exactly.  The schedule staggers starts
   (odd spacings, co-prime with hop delays) so no two causal chains
   collide on a float instant — the tie-freeness precondition of
   docs/ARCHITECTURE.md.  Tie-freeness is also what keeps the
   *per-channel* grant protocol exact: a frame arriving exactly on a
   region's granted horizon is injected into its next step, which is
   only order-identical to the unsharded run when no local event
   shares that float instant.

2. **Replicated addressing authority without shared state.**  Each
   engine holds its own :class:`~repro.core.dif.Dif` replica, so the
   address assignment a member performs must not depend on assignments
   performed elsewhere.  The workload gives every system a *unique*
   topological region hint; :class:`TopologicalAddressing` then assigns
   ``(*hint, 1)`` — a pure function of the joiner, identical whichever
   replica's authenticator computes it, in whatever order.

3. **Pure-data workload.**  The dict built by
   :func:`stateful_workload` is the whole description — DIF name,
   bootstrap member, hints, enrollment schedule, policy scalars, run
   cap — so one description drives the unsharded reference run, every
   in-process shard, and every ``spawn``-ed worker identically.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.dif import Dif, DifPolicies
from ..core.addressing import TopologicalAddressing
from ..core.directory import InterDifDirectory
from ..core.system import System
from ..sim.network import Network

STATEFUL_KIND = "stateful"

#: Control-plane policy scalars.  Deliberately *odd* values (co-prime
#: with the plants' 1/2 ms hop delays and with each other) so periodic
#: ticks never land on the same float instant as an enrollment causal
#: chain — the tie-freeness precondition for bit-identical sharding.
DEFAULT_POLICIES: Dict[str, float] = {
    "keepalive_interval": 0.5113,
    "dead_factor": 4.0,
    "spf_delay": 0.0213,
    "mgmt_timeout": 5.0,
}


def stateful_workload(dif: str, bootstrap: str,
                      enrollments: Sequence[Tuple[str, str, str, float]],
                      hints: Dict[str, Sequence[int]],
                      policies: Optional[Dict[str, float]] = None,
                      until: Optional[float] = None) -> Dict[str, Any]:
    """The pure-data workload description carried to every shard.

    ``enrollments`` rows are ``(system, via_system, lower_dif, at)``:
    at simulated time ``at``, ``system`` allocates a flow over
    ``lower_dif`` (a shim name) to ``via_system``'s member IPCP and
    runs the §5.2 join.  ``hints`` must give every system a unique
    region path (see rule 2 in the module docstring); ``until`` is the
    recommended run cap (the control plane keeps heartbeating forever,
    so a stateful run never quiesces on its own).
    """
    merged = dict(DEFAULT_POLICIES)
    merged.update(policies or {})
    return {
        "kind": STATEFUL_KIND,
        "dif": str(dif),
        "bootstrap": str(bootstrap),
        "enrollments": [[str(system), str(via), str(lower), float(at)]
                        for system, via, lower, at in enrollments],
        "hints": {str(system): [int(part) for part in hint]
                  for system, hint in hints.items()},
        "policies": merged,
        "until": until,
    }


class StatefulControlPlane:
    """One engine's slice of the DIF: systems + shims + member IPCPs
    for the local nodes, with the workload's enrollment schedule
    installed at fixed simulated times.

    Implements the common workload surface
    (:func:`repro.shard.engine.attach_workload`): delivery rows are
    enrollment completions, node stats carry the per-member routing
    state and a RIB fingerprint.
    """

    def __init__(self, network: Network, workload: Dict[str, Any],
                 local_nodes: Optional[Tuple[str, ...]] = None) -> None:
        if workload.get("kind") != STATEFUL_KIND:
            raise ValueError(f"unknown workload kind "
                             f"{workload.get('kind')!r}")
        self.network = network
        self.dif_name = str(workload["dif"])
        scalars = dict(DEFAULT_POLICIES)
        scalars.update(workload.get("policies") or {})
        self.dif = Dif(self.dif_name, DifPolicies(
            addressing=TopologicalAddressing(),
            keepalive_interval=scalars["keepalive_interval"],
            dead_factor=scalars["dead_factor"],
            spf_delay=scalars["spf_delay"],
            mgmt_timeout=scalars["mgmt_timeout"],
            refresh_interval=None))
        hints = {name: tuple(hint)
                 for name, hint in (workload.get("hints") or {}).items()}
        self._hints = hints
        self.idd = InterDifDirectory()
        self.systems: Dict[str, System] = {}
        self._enroll_rows: List[Dict[str, Any]] = []
        self._enroll_seq: Dict[str, int] = {}
        self._stat_cache: Optional[Tuple[int, List[Dict[str, Any]]]] = None
        names = tuple(local_nodes) if local_nodes is not None \
            else tuple(network.nodes)
        for name in names:
            node = network.node(name)
            system = System(node, idd=self.idd, tracer=network.tracer)
            self.systems[name] = system
            shim_names = []
            for interface in node.interfaces():
                shim = system.add_shim(interface,
                                       f"shim:{interface.link.name}")
                shim_names.append(str(shim.name))
            system.create_ipcp(self.dif)
            for shim_name in shim_names:
                system.publish_ipcp(self.dif_name, shim_name)
        bootstrap = str(workload["bootstrap"])
        if bootstrap in self.systems:
            address = self.systems[bootstrap].ipcp(self.dif_name).bootstrap(
                hints.get(bootstrap))
            self._record(bootstrap, 0.0, True, "bootstrap", str(address))
        for system, via, lower, at in workload["enrollments"]:
            if str(system) in self.systems:
                network.engine.call_at(
                    float(at), self._start_enroll, str(system), str(via),
                    str(lower), label="stateful.enroll")

    # ------------------------------------------------------------------
    def _start_enroll(self, name: str, via: str, lower: str) -> None:
        system = self.systems[name]
        member_app = self.dif.name.ipcp_name(via)

        def done(ok: bool, reason: str) -> None:
            ipcp = system.ipcp(self.dif_name)
            self._record(name, self.network.engine.now, ok, reason,
                         str(ipcp.address) if ipcp.address else "")

        system.enroll(self.dif_name, member_app, lower,
                      self._hints.get(name), done)

    def _record(self, name: str, time: float, ok: bool, how: str,
                address: str) -> None:
        seq = self._enroll_seq.get(name, 0)
        self._enroll_seq[name] = seq + 1
        self._enroll_rows.append({
            "node": name, "origin": "enroll", "seq": seq, "time": time,
            "ok": ok, "how": how, "address": address})

    # ------------------------------------------------------------------
    # Workload surface
    # ------------------------------------------------------------------
    def delivery_rows(self) -> List[Dict[str, Any]]:
        """Enrollment completions, sorted by the common merge key."""
        return sorted(self._enroll_rows,
                      key=lambda row: (row["node"], row["origin"],
                                       row["seq"]))

    def node_stat_rows(self) -> List[Dict[str, Any]]:
        """Per-member control-plane state, RIB fingerprint included.

        Cached per engine position: rendering and hashing every
        member's table + LSDB is O(members²), and a shard's ``finish``
        reads the rows twice (stat rows and trace lines).  State only
        changes by processing events, so the event counter is a sound
        cache key.
        """
        stamp = self.network.engine.events_processed
        if self._stat_cache is not None and self._stat_cache[0] == stamp:
            return self._stat_cache[1]
        rows = []
        for name in sorted(self.systems):
            ipcp = self.systems[name].ipcp(self.dif_name)
            rows.append({
                "node": name,
                "address": str(ipcp.address) if ipcp.address else "",
                "table_size": ipcp.routing.table_size(),
                "lsdb_size": ipcp.routing.lsdb_size(),
                "lsas_received": ipcp.routing.lsas_received,
                "lsas_reflooded": ipcp.routing.lsas_reflooded,
                "rib_sha256": rib_fingerprint(ipcp),
            })
        self._stat_cache = (stamp, rows)
        return rows

    def summary_extra(self) -> Dict[str, Any]:
        enrolled = sum(1 for row in self._enroll_rows if row["ok"])
        return {
            "enrolled": enrolled,
            "table_rows": sum(
                self.systems[name].ipcp(self.dif_name).routing.table_size()
                for name in self.systems),
        }

    def trace_lines(self) -> List[str]:
        lines = []
        for row in self.delivery_rows():
            lines.append(f"enroll {row['node']} seq={row['seq']} "
                         f"t={row['time']!r} ok={row['ok']} "
                         f"addr={row['address']} how={row['how']}")
        for stats in self.node_stat_rows():
            lines.append("node {node} addr={address} table={table_size} "
                         "lsdb={lsdb_size} lsas_rx={lsas_received} "
                         "lsas_fl={lsas_reflooded} "
                         "rib={rib_sha256}".format(**stats))
        return lines


def rib_fingerprint(ipcp) -> str:
    """SHA-256 of one member's canonical RIB/routing rendering: address,
    next-hop table, LSDB (origin/seq/neighbor sets), adjacency list.

    This is the "RIB-row" identity the sharded acceptance pins: a
    sharded member must end with exactly the state its unsharded twin
    holds, down to every table row and LSA sequence number.
    """
    lines = [f"address={ipcp.address}"]
    for dst, hop in sorted(ipcp.routing.table().items()):
        lines.append(f"route {dst}->{hop}")
    for value in ipcp.routing.sync_lsdb():
        neighbors = ",".join(
            f"{'.'.join(str(p) for p in parts)}:{cost!r}"
            for parts, cost in value["neighbors"])
        origin = ".".join(str(p) for p in value["origin"])
        lines.append(f"lsa {origin} seq={value['seq']} nbrs=[{neighbors}]")
    for neighbor in ipcp.rmt.neighbors():
        lines.append(f"neighbor {neighbor}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def run_unsharded_stateful(spec, workload: Dict[str, Any], seed: int = 0,
                           until: Optional[float] = None,
                           codec: Optional[object] = None) -> Dict[str, Any]:
    """The single-engine reference run of a stateful workload.

    ``spec`` is a :class:`~repro.shard.plan.NetworkSpec`.  Returns the
    same row shapes as a sharded run so the equivalence tests (and the
    E6 comparison table) diff them directly.  ``codec`` additionally
    runs every link wire-faithful (payloads encoded at serialization
    end, decoded at delivery) — the transparency check that encoding is
    behavior-invisible.
    """
    if until is None:
        until = workload.get("until")
    network = spec.build(seed=seed, codec=codec)
    plane = StatefulControlPlane(network, workload)
    network.run(until=until)
    return {
        "rows": plane.delivery_rows(),
        "node_stats": plane.node_stat_rows(),
        "events": network.engine.events_processed,
        "clock": network.engine.now,
        "enrolled": plane.summary_extra()["enrolled"],
    }
