"""One region's engine plus its boundary half-links.

A boundary link is cut in two.  The sending region owns the transmit
queue, the serialization clock, and the (absent, by plan validation)
loss decision — everything up to the moment the frame is "on the wire".
At that point, instead of scheduling local delivery, the egress half
records a **timestamped boundary frame** ``(arrival_time, link,
wire_payload, size)`` with ``arrival_time = now + propagation delay``.
The coordinator relays the frame between rounds, and the receiving
region's half-link delivers it at exactly ``arrival_time`` — the same
float the unsharded :class:`~repro.sim.link.Link` would have computed,
so delivery timing is bit-identical, not merely close.

``wire_payload`` is **pure data**: the payload is run through the wire
codec (:mod:`repro.core.codec`) at the serialization end and decoded at
delivery, so a frame never carries live object references across the
cut — which is what lets the *control plane* (enrollment RIEP, LSA
floods, keepalives, flow allocation) cross persistent worker processes,
not just primitive flood tuples.  A payload the codec rejects fails at
the sender, loudly.

Each half also knows which side of the original link it owns
(``local_index``): the local node attaches to the same end it would
hold on the unsharded link, so direction indices — and everything keyed
on end identity, like the shim layer's even/odd flow-id split — match
the unsharded build exactly.

Frames whose arrival lands exactly on a region's granted horizon are
injected after that region's step ends and execute in its next step —
deterministically, since the receiving engine's clock never passes an
injection's arrival time (the per-channel grant invariant proved in
:func:`repro.shard.plan.grant_horizons`).  Because a frame is pure wire
data end to end, a round's whole batch also flattens losslessly into
one byte buffer per direction (:mod:`repro.shard.framing`) for the trip
across a worker pipe — the engine neither knows nor cares which
transport carried the tuples back.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

from ..core import codec as wire_codec
from ..sim.link import Link, LinkConditions
from ..sim.network import Network
from .flood import FLOOD_KIND, FloodRun, attach_flood
from .plan import BoundaryPort, RegionSpec, UniformLoss

#: (arrival_time, link_name, wire_payload, size_bytes) — pure data,
#: picklable; ``wire_payload`` is the codec's tagged-tuple form
BoundaryFrame = Tuple[float, str, Any, int]


def attach_workload(network: Network, workload: Dict[str, Any],
                    local_nodes: Optional[Tuple[str, ...]] = None):
    """Instantiate a workload description on one engine.

    Dispatches on ``workload["kind"]``; every workload object exposes
    the same surface (``delivery_rows`` / ``node_stat_rows`` /
    ``summary_extra`` / ``trace_lines``), so the engine, coordinator,
    and trace discipline are workload-agnostic.
    """
    kind = workload.get("kind")
    if kind == FLOOD_KIND:
        return FloodRun(attach_flood(network, workload,
                                     local_nodes=local_nodes))
    from .stateful import STATEFUL_KIND, StatefulControlPlane
    if kind == STATEFUL_KIND:
        return StatefulControlPlane(network, workload,
                                    local_nodes=local_nodes)
    raise ValueError(f"unknown workload kind {kind!r}")


class BoundaryHalf(Link):
    """The locally owned half of a cross-region link.

    The local node attaches to end ``local_index`` — the same end it
    owns on the unsharded link — and transmits normally; the other end
    is a ghost (the real peer lives in another region's simulation).
    Egress frames land in the shard's outbox, codec-encoded, at
    serialization end; ingress frames are injected by
    :meth:`ShardEngine.inject` and delivered through
    :meth:`deliver_inbound`, which decodes and keeps the
    delivered-frame statistics and trace counters of the unsharded
    link.
    """

    __slots__ = ("_outbox", "local_index")

    def __init__(self, engine, name: str, outbox: List[BoundaryFrame],
                 local_index: int = 0, **kwargs: Any) -> None:
        super().__init__(engine, name, **kwargs)
        self._outbox = outbox
        self.local_index = local_index

    def _schedule_delivery(self, direction: int, payload: Any,
                           size: int) -> None:
        # identical float arithmetic to Link.call_later(delay, ...):
        # the peer region will deliver at exactly this time.  The
        # payload crosses as wire data — never as a live object.
        self._outbox.append(
            (self._engine.now + self.delay, self.name,
             wire_codec.encode(payload), size))

    def deliver_inbound(self, payload: Any, size: int) -> None:
        """Decode and deliver a relayed frame up the local stack
        (stats included, direction indices as on the unsharded link)."""
        if not self._up:
            return
        self.frames_delivered[1 - self.local_index] += 1
        self.bytes_delivered[1 - self.local_index] += size
        self._trace_count("link.delivered")
        self.ends[self.local_index].deliver(wire_codec.decode(payload), size)


class ShardEngine:
    """One region's :class:`~repro.sim.network.Network`, runnable in
    conservative-lookahead rounds.

    Built entirely from pure data (:class:`RegionSpec` + a workload
    dict), so the same constructor runs in the coordinator process and
    in a ``spawn``-ed worker with identical results.
    """

    def __init__(self, region: RegionSpec, workload: Dict[str, Any],
                 seed: int = 0) -> None:
        self.region = region
        self.seed = seed
        self.network = Network(seed=seed)
        self.outbox: List[BoundaryFrame] = []
        for node in region.nodes:
            self.network.add_node(node)
        for link in region.links:
            # interior links rebuild their condition models from the
            # captured spec; the RNG streams are named by link, so the
            # draws match the unsharded build draw for draw
            self.network.connect(
                link.a, link.b, name=link.name,
                capacity_bps=link.capacity_bps, delay=link.delay,
                queue_limit=link.queue_limit,
                loss=None if link.loss is None else UniformLoss(link.loss),
                conditions=None if link.conditions is None
                else LinkConditions.from_dict(link.conditions))
        self._halves: Dict[str, BoundaryHalf] = {}
        for port in region.boundary:
            self._attach_boundary(port)
        self.workload = attach_workload(self.network, workload,
                                        local_nodes=region.nodes)

    def _attach_boundary(self, port: BoundaryPort) -> None:
        link = port.link
        local_index = 0 if port.local_node == link.a else 1
        half = BoundaryHalf(
            self.network.engine, link.name, self.outbox,
            local_index=local_index,
            capacity_bps=link.capacity_bps, delay=link.delay,
            queue_limit=link.queue_limit,
            rng=self.network.streams.stream(f"link:{link.name}"),
            tracer=self.network.tracer)
        if local_index == 0:
            self.network.attach_link(half, port.local_node, None)
        else:
            self.network.attach_link(half, None, port.local_node)
        self._halves[link.name] = half

    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        """The region engine's simulated time."""
        return self.network.engine.now

    def next_event_time(self) -> Optional[float]:
        """Earliest pending local event (None when drained)."""
        return self.network.engine.next_event_time()

    def inject(self, frames: List[BoundaryFrame]) -> None:
        """Schedule relayed boundary frames for delivery at their
        recorded arrival times (never in this engine's past — the
        lookahead invariant)."""
        engine = self.network.engine
        for arrival, link_name, payload, size in frames:
            half = self._halves[link_name]
            engine.call_at(arrival, half.deliver_inbound, payload, size,
                           label=half._rx_label)

    def run_to(self, horizon: Optional[float]) -> List[BoundaryFrame]:
        """Run the region engine up to ``horizon`` (to quiescence when
        None) and drain the boundary outbox."""
        self.network.run(until=horizon)
        out, self.outbox[:] = list(self.outbox), []
        return out

    # ------------------------------------------------------------------
    def delivery_rows(self) -> List[Dict[str, Any]]:
        """This shard's delivery rows (workload-defined; always carry
        ``node``/``origin``/``seq`` merge keys)."""
        return self.workload.delivery_rows()

    def node_stats(self) -> List[Dict[str, Any]]:
        """This shard's per-node stat rows."""
        return self.workload.node_stat_rows()

    def summary(self, include_trace: bool = True) -> Dict[str, Any]:
        """One row describing this shard's run.

        ``include_trace=False`` skips rendering (and hashing) the full
        trace text — a scale run's trace is megabytes of delivery lines
        nobody will pin.
        """
        row = {
            "shard": self.region.region,
            "nodes": len(self.region.nodes),
            "events": self.network.engine.events_processed,
            "clock": self.clock,
        }
        row.update(self.workload.summary_extra())
        if include_trace:
            row["trace_sha256"] = hashlib.sha256(
                self.trace_text().encode()).hexdigest()
        return row

    def trace_text(self) -> str:
        """The canonical byte-stable trace of this shard's run.

        Same discipline as the scenario runner's trace: counters in
        sorted order, workload observables one line each, ``repr``
        timestamps.  Two runs of the same plan/workload/seed — in
        process, forked, or spawned — must produce identical bytes;
        ``tests/test_trace_golden.py`` pins SHA-256s of these.
        """
        lines = [f"shard={self.region.region} seed={self.seed} "
                 f"nodes={len(self.region.nodes)}"]
        for name, value in self.network.tracer.counters().items():
            lines.append(f"counter {name}={value}")
        lines.extend(self.workload.trace_lines())
        # the *causal* clock (time of the last executed event), not the
        # parked horizon: round protocols park engines at different —
        # causally irrelevant — instants, and the fingerprint must be
        # invariant across them
        lines.append(f"clock={self.network.engine.last_event_time!r} "
                     f"events={self.network.engine.events_processed}")
        return "\n".join(lines) + "\n"
