"""Shared-memory SPSC byte rings for boundary-frame batches.

The packed frame batches of :mod:`repro.shard.framing` are flat bytes,
so the only remaining per-round transport cost in process mode is how
those bytes cross the coordinator↔worker boundary.  A
``multiprocessing.Pipe`` pays a pickle of the ``bytes`` object plus two
copies through a socketpair; this module moves the payload through a
**single-producer / single-consumer byte ring** over
``multiprocessing.shared_memory`` instead — one ring per direction per
worker — so a batch is written once into the mapped segment and read
once out of it, with no pickling and no kernel round trip on the hot
path.  Control messages (the ``step`` / ``stepped`` tuples) stay on the
pipe: they are tiny, and keeping them there gives the coordinator a
single waitable handle per worker (``multiprocessing.connection.wait``)
for the asynchronous grant protocol.

Segment layout (all little-endian, offsets in bytes)::

    0   magic   u32  0x52494E47 ("RING")
    4   version u32  1
    8   capacity u32 (data bytes; multiple of 8)
    64  write cursor u32   | 68  writer-waiting u32     (producer line)
    128 read cursor  u32   | 132 reader-waiting u32     (consumer line)
    192 data[capacity]

The cursors are free-running virtual offsets mod 2**32 (capacity is
capped well below 2**31, so ``(write - read) & 0xFFFFFFFF`` is the
exact byte count in flight).  Producer and consumer cursor lines sit on
separate 64-byte lines so neither side's stores false-share the
other's.  Each side also caches its last view of the peer cursor and
re-reads shared memory only when the cached view would block — the
common case costs two local integer compares.

Record layout (8-byte aligned)::

    length u32 | tag u16 | check u16 | payload[length] | pad to 8

``tag`` is the ring's monotone record sequence number mod 2**16 — the
round tag: the reader verifies it against its own counter, so a record
torn by a crashed writer (or a stray write into the segment) is
rejected loudly instead of mis-framing everything after it.  ``check``
is a header checksum over length and tag.  A record never wraps the
data edge: when the remaining bytes to the edge cannot hold the header
plus payload, the writer publishes a **wrap marker** (``length ==
0xFFFFFFFF``, same tag/check discipline) and continues at offset 0, so
the reader never reassembles a split header.

SPSC safety argument: exactly one process writes the write cursor and
exactly one writes the read cursor; each is a 4-byte aligned store, and
the payload bytes are published *before* the cursor store that makes
them visible.  CPython's memoryview stores are not C11 atomics, but an
aligned 4-byte store cannot tear on any platform CPython supports, and
the tag+checksum discipline independently catches a header that was
somehow observed half-written.  Backpressure is bounded spin first
(the ~µs case: the peer is actively draining), then a
``multiprocessing.Condition`` with the waiting flag raised — the
committer only takes the Condition lock when the flag says a peer is
actually parked, so an uncontended transfer never touches a lock.
"""

from __future__ import annotations

import struct
import time
from typing import Any, List, Optional, Tuple

from .framing import PackedFrameTransport

try:                                    # pragma: no cover - import guard
    from multiprocessing import shared_memory as _shared_memory
except ImportError:                     # pragma: no cover - ancient python
    _shared_memory = None

_MAGIC = 0x52494E47
_VERSION = 1

_OFF_MAGIC = 0
_OFF_VERSION = 4
_OFF_CAPACITY = 8
_OFF_WRITE = 64          # producer cache line: write cursor + writer flag
_OFF_WRITER_WAIT = 68
_OFF_READ = 128          # consumer cache line: read cursor + reader flag
_OFF_READER_WAIT = 132
_DATA_START = 192

_U32 = struct.Struct("<I")
_RECORD_HEAD = struct.Struct("<IHH")    # length, tag, check
_RECORD_HEAD_SIZE = 8
_WRAP_LENGTH = 0xFFFFFFFF
_CHECK_SALT = 0x5AC3

#: Default per-direction ring capacity.  A packed stateful-tier round
#: batch is a few KB; 1 MiB absorbs the large flood tiers' fan-out
#: batches while keeping a 10-worker coordinator's total mapping small.
DEFAULT_CAPACITY = 1 << 20

_SPIN_ROUNDS = 2000
_COND_WAIT_S = 0.05


class RingError(RuntimeError):
    """A ring that is unusable: torn record, bad segment, or timeout."""


def _check(length: int, tag: int) -> int:
    """16-bit header checksum: catches a torn or overwritten header."""
    return ((length & 0xFFFF) ^ (length >> 16) ^ tag ^ _CHECK_SALT) & 0xFFFF


def ring_supported() -> bool:
    """Whether this interpreter can build shared-memory rings at all."""
    return _shared_memory is not None


class SpscRing:
    """One direction's byte ring over a shared-memory segment.

    Exactly one process may call the write side and one the read side.
    The creator owns the segment's lifetime (``close(unlink=True)``);
    an attacher unregisters itself from its own ``resource_tracker`` so
    a worker's exit never yanks the segment out from under the
    coordinator (Python registers *attached* segments for cleanup too —
    the well-known double-unlink hazard on 3.10–3.12).
    """

    def __init__(self, shm, condition, created: bool) -> None:
        self._shm = shm
        self._buf = shm.buf
        self._condition = condition
        self._created = created
        self._closed = False
        magic = _U32.unpack_from(self._buf, _OFF_MAGIC)[0]
        version = _U32.unpack_from(self._buf, _OFF_VERSION)[0]
        if magic != _MAGIC:
            raise RingError(f"bad ring magic 0x{magic:08x} in segment "
                            f"{shm.name!r}")
        if version != _VERSION:
            raise RingError(f"unsupported ring version {version}")
        self.capacity = _U32.unpack_from(self._buf, _OFF_CAPACITY)[0]
        # free-running local cursor copies: each side re-reads only the
        # *peer* cursor from shared memory, and only when it must
        self._write = _U32.unpack_from(self._buf, _OFF_WRITE)[0]
        self._read = _U32.unpack_from(self._buf, _OFF_READ)[0]
        self._write_tag = 0
        self._read_tag = 0

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, context, capacity: int = DEFAULT_CAPACITY) -> "SpscRing":
        """Allocate a fresh ring segment plus its backpressure Condition
        (from ``context`` so it survives a ``spawn`` trip)."""
        if _shared_memory is None:      # pragma: no cover - ancient python
            raise RingError("multiprocessing.shared_memory is unavailable")
        if capacity % 8 or capacity < 64 or capacity >= (1 << 31):
            raise RingError(f"ring capacity must be a multiple of 8 in "
                            f"[64, 2**31), got {capacity}")
        shm = _shared_memory.SharedMemory(create=True,
                                          size=_DATA_START + capacity)
        _U32.pack_into(shm.buf, _OFF_MAGIC, _MAGIC)
        _U32.pack_into(shm.buf, _OFF_VERSION, _VERSION)
        _U32.pack_into(shm.buf, _OFF_CAPACITY, capacity)
        for offset in (_OFF_WRITE, _OFF_WRITER_WAIT, _OFF_READ,
                       _OFF_READER_WAIT):
            _U32.pack_into(shm.buf, offset, 0)
        return cls(shm, context.Condition(), created=True)

    @classmethod
    def attach(cls, handle: Tuple[str, Any]) -> "SpscRing":
        """Open the other end of a ring from its ``(name, condition)``
        handle (what :attr:`handle` returns and worker args carry)."""
        if _shared_memory is None:      # pragma: no cover - ancient python
            raise RingError("multiprocessing.shared_memory is unavailable")
        name, condition = handle
        shm = _shared_memory.SharedMemory(name=name)
        # NOTE: attaching re-registers the segment with the resource
        # tracker.  Workers are always direct children of the creator,
        # so they inherit the *same* tracker process and the re-register
        # is an idempotent set-add — the creator's unlink clears the one
        # cache entry and the tracker exits clean.  (Unregistering here,
        # the usual independent-process workaround, would instead yank
        # the shared entry out from under the creator's unlink.)
        return cls(shm, condition, created=False)

    @property
    def handle(self) -> Tuple[str, Any]:
        """Pure-data-plus-Condition handle a worker can attach from."""
        return (self._shm.name, self._condition)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def max_payload(self) -> int:
        """Largest payload a single record can carry: one record header
        plus a possible wrap marker must always fit alongside it."""
        return self.capacity - 2 * _RECORD_HEAD_SIZE

    # ------------------------------------------------------------------
    def _used(self) -> int:
        return (self._write - self._read) & 0xFFFFFFFF

    def _peer_read(self) -> int:
        return _U32.unpack_from(self._buf, _OFF_READ)[0]

    def _peer_write(self) -> int:
        return _U32.unpack_from(self._buf, _OFF_WRITE)[0]

    @staticmethod
    def _padded(length: int) -> int:
        return _RECORD_HEAD_SIZE + ((length + 7) & ~7)

    def _free(self, need: int) -> bool:
        """Whether ``need`` bytes fit, refreshing the cached read cursor
        from shared memory only when the cached view says no."""
        if self.capacity - self._used() >= need:
            return True
        self._read = self._peer_read()
        return self.capacity - self._used() >= need

    def try_write(self, payload: bytes) -> bool:
        """Publish one record if space permits; False when full.

        Never blocks and never splits: an oversized payload (``>
        max_payload``) returns False immediately — the caller's pipe
        fallback handles it.  When the record cannot fit before the data
        edge, the wrap marker is published *on its own* even if the
        record itself does not fit yet: the reader consumes the marker,
        freeing the edge run, and a retry succeeds once it has — this is
        what keeps a ``max_payload`` record writable from any offset.
        """
        if self._closed:
            raise RingError("write on a closed ring")
        length = len(payload)
        if length > self.max_payload:
            return False
        need = self._padded(length)
        buf = self._buf
        while True:
            offset = self._write % self.capacity
            to_edge = self.capacity - offset
            if need <= to_edge:
                break
            # the record will not fit before the edge: burn the edge run
            # with a wrap marker (a record in its own right — tagged,
            # checksummed, and published through the cursor)
            if not self._free(to_edge):
                return False
            tag = self._write_tag
            _RECORD_HEAD.pack_into(buf, _DATA_START + offset, _WRAP_LENGTH,
                                   tag, _check(_WRAP_LENGTH, tag))
            self._write_tag = (tag + 1) & 0xFFFF
            self._write = (self._write + to_edge) & 0xFFFFFFFF
            _U32.pack_into(buf, _OFF_WRITE, self._write)
            if _U32.unpack_from(buf, _OFF_READER_WAIT)[0]:
                with self._condition:
                    self._condition.notify_all()
        if not self._free(need):
            return False
        tag = self._write_tag
        head = _DATA_START + (self._write % self.capacity)
        buf[head + _RECORD_HEAD_SIZE:
            head + _RECORD_HEAD_SIZE + length] = payload
        _RECORD_HEAD.pack_into(buf, head, length, tag, _check(length, tag))
        self._write_tag = (tag + 1) & 0xFFFF
        # the cursor store is the publication point: payload and header
        # bytes are in the segment before the reader can see them
        self._write = (self._write + need) & 0xFFFFFFFF
        _U32.pack_into(buf, _OFF_WRITE, self._write)
        if _U32.unpack_from(buf, _OFF_READER_WAIT)[0]:
            with self._condition:
                self._condition.notify_all()
        return True

    def write(self, payload: bytes, timeout: Optional[float] = 30.0) -> None:
        """Publish one record, waiting out backpressure.

        Bounded spin first (the peer is usually mid-drain), then parks
        on the Condition with the writer-waiting flag raised.  Raises
        :class:`RingError` on timeout — a reader gone missing is a
        protocol bug, not a state to wait on forever.
        """
        if self.try_write(payload):
            return
        if len(payload) > self.max_payload:
            raise RingError(f"payload of {len(payload)} bytes exceeds ring "
                            f"max_payload {self.max_payload}")
        for _ in range(_SPIN_ROUNDS):
            if self.try_write(payload):
                return
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        buf = self._buf
        _U32.pack_into(buf, _OFF_WRITER_WAIT, 1)
        try:
            while True:
                if self.try_write(payload):
                    return
                with self._condition:
                    # re-check under the lock: the reader's notify and
                    # our wait cannot interleave into a lost wakeup
                    # because try_write re-reads the peer cursor
                    if self.try_write(payload):
                        return
                    self._condition.wait(_COND_WAIT_S)
                if deadline is not None and time.monotonic() > deadline:
                    raise RingError(
                        f"ring write timed out after {timeout}s "
                        f"({len(payload)} bytes, {self._used()} in flight)")
        finally:
            _U32.pack_into(buf, _OFF_WRITER_WAIT, 0)

    # ------------------------------------------------------------------
    def try_read(self) -> Optional[bytes]:
        """Consume one record if available; None when the ring is empty.

        Raises :class:`RingError` on a torn or out-of-sequence header —
        corruption must fail the run, not resynchronize silently.
        """
        if self._closed:
            raise RingError("read on a closed ring")
        while True:
            if self._read == self._write:
                self._write = self._peer_write()
                if self._read == self._write:
                    return None
            buf = self._buf
            offset = self._read % self.capacity
            head = _DATA_START + offset
            length, tag, check = _RECORD_HEAD.unpack_from(buf, head)
            if check != _check(length, tag) or tag != self._read_tag:
                raise RingError(
                    f"torn or corrupt ring record at offset {offset}: "
                    f"length={length} tag={tag} (expected tag "
                    f"{self._read_tag}) check=0x{check:04x}")
            self._read_tag = (tag + 1) & 0xFFFF
            if length == _WRAP_LENGTH:
                self._read = (self._read + (self.capacity - offset)) \
                    & 0xFFFFFFFF
                _U32.pack_into(buf, _OFF_READ, self._read)
                continue
            if length > self.max_payload:
                raise RingError(f"corrupt ring record length {length}")
            start = head + _RECORD_HEAD_SIZE
            payload = bytes(buf[start:start + length])
            self._read = (self._read + self._padded(length)) & 0xFFFFFFFF
            _U32.pack_into(buf, _OFF_READ, self._read)
            if _U32.unpack_from(buf, _OFF_WRITER_WAIT)[0]:
                with self._condition:
                    self._condition.notify_all()
            return payload

    def read(self, timeout: Optional[float] = 30.0) -> bytes:
        """Consume one record, waiting for it to arrive (spin, then
        Condition with the reader-waiting flag raised)."""
        payload = self.try_read()
        if payload is not None:
            return payload
        for _ in range(_SPIN_ROUNDS):
            payload = self.try_read()
            if payload is not None:
                return payload
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        buf = self._buf
        _U32.pack_into(buf, _OFF_READER_WAIT, 1)
        try:
            while True:
                payload = self.try_read()
                if payload is not None:
                    return payload
                with self._condition:
                    payload = self.try_read()
                    if payload is not None:
                        return payload
                    self._condition.wait(_COND_WAIT_S)
                if deadline is not None and time.monotonic() > deadline:
                    raise RingError(
                        f"ring read timed out after {timeout}s")
        finally:
            _U32.pack_into(buf, _OFF_READER_WAIT, 0)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this end's mapping; the creator also unlinks the
        segment (idempotent — worker-crash cleanup calls this again)."""
        if self._closed:
            return
        self._closed = True
        self._buf = None
        self._shm.close()
        if self._created:
            try:
                self._shm.unlink()
            except FileNotFoundError:   # pragma: no cover - already gone
                pass

    def __repr__(self) -> str:          # pragma: no cover - debug aid
        state = "closed" if self._closed else f"{self._used()}B in flight"
        return f"<SpscRing {self._shm.name} cap={self.capacity} {state}>"


class SharedMemoryRingTransport(PackedFrameTransport):
    """The ring-backed frame transport: packed bytes, conveyed through a
    per-direction :class:`SpscRing` pair instead of the pipe.

    One instance per worker channel (rings are per-pair state, unlike
    the stateless pipe transports).  ``dumps``/``loads`` stay the
    packed flat-byte codec — the bytes in the ring are identical to the
    bytes a pipe would carry, which is what lets the oversized-batch
    pipe fallback reuse them unchanged.  The coordinator side calls
    :meth:`create_pair`; the worker side rebuilds from the pure-data
    handles via :meth:`attach_pair`.
    """

    name = "ring"

    def __init__(self, tx: Optional[SpscRing] = None,
                 rx: Optional[SpscRing] = None) -> None:
        self.tx = tx
        self.rx = rx

    @classmethod
    def create_pair(cls, context,
                    capacity: int = DEFAULT_CAPACITY
                    ) -> "SharedMemoryRingTransport":
        """Coordinator side: allocate both directions' rings."""
        tx = SpscRing.create(context, capacity)
        try:
            rx = SpscRing.create(context, capacity)
        except Exception:
            tx.close()
            raise
        return cls(tx=tx, rx=rx)

    @property
    def handles(self) -> Tuple[Tuple[str, Any], Tuple[str, Any]]:
        """(worker-rx handle, worker-tx handle): the coordinator's tx is
        the worker's rx and vice versa."""
        return (self.tx.handle, self.rx.handle)

    @classmethod
    def attach_pair(cls, handles) -> "SharedMemoryRingTransport":
        """Worker side: open both rings from their handles (the
        coordinator's tx becomes this side's rx)."""
        rx_handle, tx_handle = handles
        rx = SpscRing.attach(rx_handle)
        try:
            tx = SpscRing.attach(tx_handle)
        except Exception:
            rx.close()
            raise
        return cls(tx=tx, rx=rx)

    def close(self) -> None:
        for ring in (self.tx, self.rx):
            if ring is not None:
                ring.close()


def pipe_bytes_roundtrip(conn_a, conn_b, payloads: List[bytes],
                         pickled: bool) -> None:
    """Echo ``payloads`` through a connected pipe pair — the relay
    micro-benchmark's pipe legs (``pickled`` selects ``send`` of the
    bytes object vs ``send_bytes``).  Lives here so the bench and its
    smoke test share one definition."""
    for payload in payloads:
        if pickled:
            conn_a.send(payload)
            conn_b.recv()
        else:
            conn_a.send_bytes(payload)
            conn_b.recv_bytes()
