"""Partition a network spec into per-region sub-networks.

The shard subsystem cuts one simulated network into regions that run on
independent engines (usually in independent processes).  Everything here
is **pure data** — the same convention as :mod:`repro.sweeps`: a spec
crosses a ``spawn`` process boundary unchanged, and a plan is
serializable, diffable, and replayable.

* :class:`NetworkSpec` — nodes plus :class:`LinkSpec` rows, capturable
  from a live :class:`~repro.sim.network.Network` or built directly.
* :class:`RegionPlan` — a node→region assignment applied to a spec:
  per-region :class:`RegionSpec` sub-networks, the boundary-link table,
  and the per-region conservative lookahead (the minimum propagation
  delay over that region's boundary links).

The lookahead rule is what makes sharded execution *exact* rather than
approximate: a frame that crosses a boundary link is sent at some time
``t`` at or after the sender's earliest possible activity, and arrives
``delay`` later — so no region that only advances to the minimum over
its *incoming* channels of ``sender's bound + channel delay`` can ever
be surprised by a frame from its past.  :func:`grant_horizons` computes
those per-channel bounds as a shortest-path fixpoint over the directed
region graph (:attr:`RegionPlan.channels`); the scalar
:attr:`RegionSpec.lookahead` survives as the coarser global-min bound
it generalizes (and as the floor the per-channel grants provably never
drop below).  A zero-delay boundary link would make every horizon
degenerate, so :class:`RegionPlan` rejects it at construction.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..sim.link import LinkConditions, NoLoss, UniformLoss
from ..sim.network import Network


class ShardPlanError(ValueError):
    """A spec or assignment that cannot be sharded soundly."""


@dataclass(frozen=True)
class LinkSpec:
    """One link of a network spec (pure data, picklable)."""

    a: str
    b: str
    name: str
    capacity_bps: float = 1e8
    delay: float = 0.001
    queue_limit: int = 256
    loss: Optional[float] = None    # uniform per-frame drop probability
    #: :meth:`~repro.sim.link.LinkConditions.from_dict` grammar spec for
    #: condition models (jitter/shaper/corruption/reorder), or None.  A
    #: plain dict keeps the spec pure data; the models themselves are
    #: re-instantiated fresh at :meth:`NetworkSpec.build` time, and
    #: their RNG streams are named by link, so a conditioned *interior*
    #: link behaves bit-identically sharded and unsharded.
    conditions: Optional[Dict] = None


@dataclass(frozen=True)
class NetworkSpec:
    """A whole simulated network as data: node names plus link rows."""

    nodes: Tuple[str, ...]
    links: Tuple[LinkSpec, ...]

    def validate(self) -> None:
        """Reject duplicate names and links to unknown nodes."""
        seen = set()
        for node in self.nodes:
            if node in seen:
                raise ShardPlanError(f"duplicate node name {node!r}")
            seen.add(node)
        names = set()
        for link in self.links:
            if link.name in names:
                raise ShardPlanError(f"duplicate link name {link.name!r}")
            names.add(link.name)
            for end in (link.a, link.b):
                if end not in seen:
                    raise ShardPlanError(
                        f"link {link.name!r} references unknown node {end!r}")

    @classmethod
    def from_network(cls, network: Network) -> "NetworkSpec":
        """Capture a live network's topology as pure data.

        Only plain :class:`~repro.sim.link.Link` parameters survive the
        capture; loss models other than :class:`NoLoss` /
        :class:`UniformLoss` have state that cannot be expressed as a
        scalar and are rejected.
        """
        links = []
        for name, link in network.links.items():
            a, b = network.endpoints_of(link)
            if isinstance(link.loss, NoLoss):
                loss: Optional[float] = None
            elif isinstance(link.loss, UniformLoss):
                loss = link.loss.probability
            else:
                raise ShardPlanError(
                    f"link {name!r}: loss model "
                    f"{type(link.loss).__name__} is not spec-capturable")
            if link.conditions is not None:
                # the models themselves carry live strategy state (token
                # buckets, parked frames), but their construction
                # parameters round-trip through the from_dict grammar —
                # capture those and rebuild fresh models at build time
                conditions: Optional[Dict] = link.conditions.to_dict()
            else:
                conditions = None
            links.append(LinkSpec(a=a, b=b, name=name,
                                  capacity_bps=link.capacity_bps,
                                  delay=link.delay,
                                  queue_limit=link.queue_limit, loss=loss,
                                  conditions=conditions))
        return cls(nodes=tuple(network.nodes), links=tuple(links))

    def build(self, seed: int = 0, codec: Optional[object] = None) -> Network:
        """Instantiate the spec as one (unsharded) live network.

        ``codec`` turns on wire-faithful links: every payload crosses
        every link in its encoded pure-data form (the transparency
        check for :mod:`repro.core.codec`)."""
        network = Network(seed=seed, codec=codec)
        for node in self.nodes:
            network.add_node(node)
        for link in self.links:
            network.connect(
                link.a, link.b, name=link.name,
                capacity_bps=link.capacity_bps, delay=link.delay,
                queue_limit=link.queue_limit,
                loss=None if link.loss is None else UniformLoss(link.loss),
                conditions=None if link.conditions is None
                else LinkConditions.from_dict(link.conditions))
        return network


@dataclass(frozen=True)
class BoundaryPort:
    """A region's view of one boundary link: the cut end it owns."""

    link: LinkSpec
    local_node: str
    remote_node: str
    remote_region: int


@dataclass(frozen=True)
class RegionSpec:
    """One region's sub-network: local nodes, internal links, and the
    boundary ports where frames leave for (and arrive from) other
    regions.  Pure data — this is exactly what a shard worker process
    receives."""

    region: int
    nodes: Tuple[str, ...]
    links: Tuple[LinkSpec, ...]
    boundary: Tuple[BoundaryPort, ...] = field(default_factory=tuple)

    @property
    def lookahead(self) -> float:
        """Conservative lookahead: the minimum propagation delay over
        this region's boundary links (``inf`` when it has none — such a
        region can run to completion in a single round)."""
        if not self.boundary:
            return math.inf
        return min(port.link.delay for port in self.boundary)


class RegionPlan:
    """A validated partition of a :class:`NetworkSpec` into regions.

    Parameters
    ----------
    spec:
        The whole network.
    assignment:
        node name → region id.  Region ids may be any integers; they are
        normalized to ``0..k-1`` in sorted order.
    """

    def __init__(self, spec: NetworkSpec,
                 assignment: Mapping[str, int]) -> None:
        spec.validate()
        missing = [node for node in spec.nodes if node not in assignment]
        if missing:
            raise ShardPlanError(
                f"assignment misses {len(missing)} node(s): "
                f"{', '.join(missing[:5])}")
        self.spec = spec
        raw_ids = sorted({assignment[node] for node in spec.nodes})
        normal = {raw: index for index, raw in enumerate(raw_ids)}
        self.assignment: Dict[str, int] = {
            node: normal[assignment[node]] for node in spec.nodes}

        region_nodes: List[List[str]] = [[] for _ in raw_ids]
        for node in spec.nodes:
            region_nodes[self.assignment[node]].append(node)
        region_links: List[List[LinkSpec]] = [[] for _ in raw_ids]
        region_ports: List[List[BoundaryPort]] = [[] for _ in raw_ids]
        boundary: List[LinkSpec] = []
        for link in spec.links:
            ra, rb = self.assignment[link.a], self.assignment[link.b]
            if ra == rb:
                region_links[ra].append(link)
                continue
            if link.delay <= 0.0:
                raise ShardPlanError(
                    f"boundary link {link.name!r} has zero propagation "
                    f"delay: the conservative lookahead would be zero and "
                    f"no region could ever advance")
            if link.loss is not None:
                raise ShardPlanError(
                    f"boundary link {link.name!r} has a loss model: loss "
                    f"draws would split across two RNG streams and "
                    f"diverge from the unsharded run")
            if link.conditions is not None:
                raise ShardPlanError(
                    f"boundary link {link.name!r} carries link conditions "
                    f"({', '.join(sorted(link.conditions))}): condition "
                    f"models hold live per-link state (token buckets, "
                    f"held-back frames, RNG draws) that cannot be split "
                    f"across a region cut — assign both endpoints to one "
                    f"region or strip the conditions from the cut link")
            boundary.append(link)
            region_ports[ra].append(BoundaryPort(
                link=link, local_node=link.a, remote_node=link.b,
                remote_region=rb))
            region_ports[rb].append(BoundaryPort(
                link=link, local_node=link.b, remote_node=link.a,
                remote_region=ra))
        self.boundary: Tuple[LinkSpec, ...] = tuple(boundary)
        self.regions: Tuple[RegionSpec, ...] = tuple(
            RegionSpec(region=index, nodes=tuple(region_nodes[index]),
                       links=tuple(region_links[index]),
                       boundary=tuple(region_ports[index]))
            for index in range(len(raw_ids)))
        # link name → (region of end a, region of end b): the frame
        # relay's routing table
        self.boundary_regions: Dict[str, Tuple[int, int]] = {
            link.name: (self.assignment[link.a], self.assignment[link.b])
            for link in boundary}
        # directed channel graph: (sender region, receiver region) → the
        # fastest boundary link between them.  Frames from ``s`` reach
        # ``r`` no sooner than ``s``'s earliest activity plus this delay
        # — the per-channel lookahead grant_horizons() propagates.
        channels: Dict[Tuple[int, int], float] = {}
        for link in boundary:
            ra, rb = self.assignment[link.a], self.assignment[link.b]
            for src, dst in ((ra, rb), (rb, ra)):
                best = channels.get((src, dst))
                if best is None or link.delay < best:
                    channels[(src, dst)] = link.delay
        self.channels: Dict[Tuple[int, int], float] = channels

    def incoming_channels(self, region: int) -> List[Tuple[int, float]]:
        """``(sender region, channel delay)`` rows for one region's
        incoming boundary channels."""
        return [(src, delay) for (src, dst), delay in self.channels.items()
                if dst == region]

    @property
    def lookahead(self) -> float:
        """The global round step: minimum lookahead over all regions
        (``inf`` for a plan with no boundary links at all)."""
        return min((region.lookahead for region in self.regions),
                   default=math.inf)

    def region_of(self, node: str) -> int:
        """Region id a node was assigned to."""
        return self.assignment[node]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<RegionPlan regions={len(self.regions)} "
                f"boundary={len(self.boundary)} lookahead={self.lookahead}>")


def grant_horizons(ents: Sequence[float],
                   channels: Mapping[Tuple[int, int], float],
                   until: Optional[float] = None) -> List[float]:
    """Per-channel conservative horizon grants (the null-message rule).

    ``ents[r]`` is region ``r``'s earliest possible activity — the
    minimum of its next local event time and the arrival times of
    frames already relayed to it (``math.inf`` when fully quiet).
    ``channels`` is the directed region graph of
    :attr:`RegionPlan.channels`.

    Region ``r``'s *emission bound* ``lbts(r)`` — the earliest time it
    could put a frame on any outgoing channel — satisfies::

        lbts(r) = min(ents[r], min over incoming (s, d): lbts(s) + d)

    because an emission is caused either by a local event or by a frame
    that first had to arrive.  All channel delays are positive (plan
    validation), so the least fixpoint is a single-source-set shortest
    path, solved here with Dijkstra in one pass for every region.  The
    grant is then::

        horizon(r) = min over incoming (s, d): lbts(s) + d

    (``inf`` when ``r`` has no incoming channels: nothing can ever
    reach it), clamped to ``until``.  Running ``r`` to ``horizon(r)``
    is safe: any frame a neighbor emits arrives at or after it.  The
    fixpoint *is* the quiet-cut batching — iterating the recurrence
    until no grant moves is exactly this closed form, so a stretch of
    rounds in which every region's next event lies beyond the old
    global-min window collapses into one grant.

    Two properties the tests pin: every grant is ≥ the old global-min
    horizon ``min(ents) + min incoming delay`` (the per-channel rule
    only ever widens windows), and the argmin-``ents`` region always
    satisfies ``ents[r] <= horizon(r)`` (some region can always act —
    no livelock).
    """
    count = len(ents)
    incoming: List[List[Tuple[int, float]]] = [[] for _ in range(count)]
    outgoing: List[List[Tuple[int, float]]] = [[] for _ in range(count)]
    for (src, dst), delay in channels.items():
        incoming[dst].append((src, delay))
        outgoing[src].append((dst, delay))
    lbts = [float(ent) for ent in ents]
    heap = [(bound, region) for region, bound in enumerate(lbts)
            if not math.isinf(bound)]
    heapq.heapify(heap)
    while heap:
        bound, region = heapq.heappop(heap)
        if bound > lbts[region]:
            continue
        for dst, delay in outgoing[region]:
            candidate = bound + delay
            if candidate < lbts[dst]:
                lbts[dst] = candidate
                heapq.heappush(heap, (candidate, dst))
    horizons = []
    for region in range(count):
        horizon = min((lbts[src] + delay
                       for src, delay in incoming[region]),
                      default=math.inf)
        if until is not None:
            horizon = min(horizon, until)
        horizons.append(horizon)
    return horizons


def assignment_by_prefix(spec: NetworkSpec,
                         prefixes: Sequence[Tuple[str, int]],
                         default: int = 0) -> Dict[str, int]:
    """Build an assignment from (prefix, region) rules, first match wins.

    Convenience for the topology families whose node names encode their
    region (``h3_7``, ``border3``...); anything unmatched lands in
    ``default``.
    """
    assignment = {}
    for node in spec.nodes:
        for prefix, region in prefixes:
            if node.startswith(prefix):
                assignment[node] = region
                break
        else:
            assignment[node] = default
    return assignment
