"""Flat-byte transport for boundary-frame batches.

The coordinator↔worker step protocol moves lists of
:data:`~repro.shard.engine.BoundaryFrame` tuples.  Pickling those lists
works, but it serializes frame-by-frame through a general object
protocol, and it ties the wire format of the cut to whatever pickle
decides to emit.  This module packs a whole round's frames for one
direction into **one flat byte buffer** with an explicit, versioned
layout — the frame analogue of :mod:`repro.core.codec`'s canonical
tagged-tuple forms, flattened to bytes.

Layout (big-endian)::

    batch   := magic u8 | version u8 | count u32 | frame*
    frame   := arrival f64 | link u16+utf8 | size u32 | value
    value   := 'N' | 'T' | 'F'
             | 'i' i64            (machine-width ints)
             | 'I' u32+ascii      (arbitrary-precision ints)
             | 'd' f64            (bit-exact: struct '>d' round-trips
                                   every finite float and preserves the
                                   timestamps the equivalence tests pin)
             | 's' u32+utf8
             | 'b' u32+bytes
             | '(' u32 value*     (the codec's tagged tuples)

Only wire data (scalars + tuples, :func:`repro.core.codec.is_wire_data`)
can appear in a frame payload, so these seven value forms are total.
:class:`FrameTransport` is the seam the coordinator and workers go
through: :class:`PackedFrameTransport` produces these buffers, and a
future shared-memory-ring transport can write the identical bytes into
a ring instead of a pipe without either endpoint changing — the batch
is self-delimiting, so it needs no out-of-band framing.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

_MAGIC = 0xB7
_VERSION = 1

_HEAD = struct.Struct(">BBI")
_FRAME_HEAD = struct.Struct(">dHI")   # arrival, link-name length, size
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class FrameFormatError(ValueError):
    """A buffer that is not a well-formed frame batch."""


def _pack_value(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            out.append(b"i")
            out.append(_I64.pack(value))
        else:
            text = str(value).encode("ascii")
            out.append(b"I")
            out.append(_U32.pack(len(text)))
            out.append(text)
    elif type(value) is float:
        out.append(b"d")
        out.append(_F64.pack(value))
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(b"s")
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif type(value) is bytes:
        out.append(b"b")
        out.append(_U32.pack(len(value)))
        out.append(value)
    elif type(value) is tuple:
        out.append(b"(")
        out.append(_U32.pack(len(value)))
        for item in value:
            _pack_value(item, out)
    else:
        raise FrameFormatError(
            f"frame payload holds a live {type(value).__name__}; only "
            f"wire data (scalars and tuples) may cross a cut")


def _unpack_value(buf: bytes, pos: int) -> Tuple[Any, int]:
    tag = buf[pos:pos + 1]
    pos += 1
    if tag == b"N":
        return None, pos
    if tag == b"T":
        return True, pos
    if tag == b"F":
        return False, pos
    if tag == b"i":
        return _I64.unpack_from(buf, pos)[0], pos + 8
    if tag == b"I":
        length = _U32.unpack_from(buf, pos)[0]
        pos += 4
        return int(buf[pos:pos + length].decode("ascii")), pos + length
    if tag == b"d":
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == b"s":
        length = _U32.unpack_from(buf, pos)[0]
        pos += 4
        return buf[pos:pos + length].decode("utf-8"), pos + length
    if tag == b"b":
        length = _U32.unpack_from(buf, pos)[0]
        pos += 4
        return bytes(buf[pos:pos + length]), pos + length
    if tag == b"(":
        count = _U32.unpack_from(buf, pos)[0]
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _unpack_value(buf, pos)
            items.append(item)
        return tuple(items), pos
    raise FrameFormatError(f"unknown value tag {tag!r} at offset {pos - 1}")


def pack_frames(frames: List[Tuple[float, str, Any, int]]) -> bytes:
    """One round's frames for one direction as a single flat buffer."""
    out: List[bytes] = [_HEAD.pack(_MAGIC, _VERSION, len(frames))]
    for arrival, link_name, payload, size in frames:
        raw_name = link_name.encode("utf-8")
        out.append(_FRAME_HEAD.pack(arrival, len(raw_name), size))
        out.append(raw_name)
        _pack_value(payload, out)
    return b"".join(out)


def unpack_frames(buf: bytes) -> List[Tuple[float, str, Any, int]]:
    """Decode a :func:`pack_frames` buffer back to boundary frames."""
    try:
        magic, version, count = _HEAD.unpack_from(buf, 0)
    except struct.error as exc:
        raise FrameFormatError(f"truncated frame batch: {exc}") from None
    if magic != _MAGIC:
        raise FrameFormatError(f"bad frame-batch magic 0x{magic:02x}")
    if version != _VERSION:
        raise FrameFormatError(f"unsupported frame-batch version {version}")
    pos = _HEAD.size
    frames = []
    for _ in range(count):
        arrival, name_length, size = _FRAME_HEAD.unpack_from(buf, pos)
        pos += _FRAME_HEAD.size
        link_name = buf[pos:pos + name_length].decode("utf-8")
        pos += name_length
        payload, pos = _unpack_value(buf, pos)
        frames.append((arrival, link_name, payload, size))
    if pos != len(buf):
        raise FrameFormatError(
            f"frame batch has {len(buf) - pos} trailing byte(s)")
    return frames


#: Header byte distinguishing a *single-value* gateway frame from a
#: frame batch (0xB7).  Both formats share the value grammar above.
_FRAME_MAGIC = 0xB8

_FRAME_HEADER = struct.Struct(">BB")


def pack_frame(value: Any) -> bytes:
    """One wire value as a self-contained flat buffer.

    The live-traffic gateway sends exactly one shim frame per network
    message (one UDP datagram, or one length-prefixed TCP record), so
    it needs the value grammar without the batch header.  Live objects
    raise :class:`FrameFormatError`, same as :func:`pack_frames` — run
    payloads through :func:`repro.core.codec.encode` first.
    """
    out: List[bytes] = [_FRAME_HEADER.pack(_FRAME_MAGIC, _VERSION)]
    _pack_value(value, out)
    return b"".join(out)


def unpack_frame(buf: bytes) -> Any:
    """Decode a :func:`pack_frame` buffer back to its wire value.

    Raises :class:`FrameFormatError` on a bad magic byte, an
    unsupported version, a truncated body, or trailing bytes — never
    anything else, so socket readers can treat any malformed input
    uniformly (count it, close the connection).
    """
    if len(buf) < _FRAME_HEADER.size:
        raise FrameFormatError("truncated frame: missing header")
    magic, version = _FRAME_HEADER.unpack_from(buf, 0)
    if magic != _FRAME_MAGIC:
        raise FrameFormatError(f"bad frame magic 0x{magic:02x}")
    if version != _VERSION:
        raise FrameFormatError(f"unsupported frame version {version}")
    try:
        value, pos = _unpack_value(buf, _FRAME_HEADER.size)
    except FrameFormatError:
        raise
    except (struct.error, IndexError, UnicodeDecodeError, ValueError) as exc:
        raise FrameFormatError(f"malformed frame body: {exc}") from None
    if pos > len(buf):
        raise FrameFormatError("truncated frame body")
    if pos != len(buf):
        raise FrameFormatError(
            f"frame has {len(buf) - pos} trailing byte(s)")
    return value


class FrameTransport:
    """The frame-batch seam of the step protocol.

    ``dumps`` turns a round's frame list into the object actually sent
    over the worker channel; ``loads`` inverts it.  Both endpoints hold
    the same transport, chosen once at coordinator construction, so
    swapping the representation (packed bytes today, a shared-memory
    ring tomorrow) never touches the round loop or the worker.
    """

    name = "object"

    def dumps(self, frames: List[Tuple[float, str, Any, int]]) -> Any:
        return frames

    def loads(self, payload: Any) -> List[Tuple[float, str, Any, int]]:
        return payload


class PackedFrameTransport(FrameTransport):
    """Frames cross as one flat byte buffer per round per direction."""

    name = "packed"

    def dumps(self, frames: List[Tuple[float, str, Any, int]]) -> bytes:
        return pack_frames(frames)

    def loads(self, payload: bytes) -> List[Tuple[float, str, Any, int]]:
        return unpack_frames(payload)


TRANSPORTS = {
    transport.name: transport
    for transport in (FrameTransport(), PackedFrameTransport())
}
