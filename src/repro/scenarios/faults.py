"""Pluggable fault injectors.

Each injector is an engine-scheduled actor: :meth:`FaultInjector.arm`
schedules its phases on the simulation engine, and the phases drive the
*existing* machinery — :meth:`~repro.sim.link.Link.fail`/``repair`` for
outages, loss/delay/capacity knobs for degradation,
:attr:`~repro.sim.link.Link.conditions` swaps for the network-condition
windows (jitter storm, bandwidth squeeze, corruption storm, reorder
burst), and :meth:`~repro.core.ipcp.Ipcp.crash`/``restart`` plus §5.2
re-enrollment for node failures.  Every phase is recorded in the network tracer's event
log so runs can be fingerprinted byte-for-byte (determinism tests) and
assertions can be made about the fault timeline.

Injectors are stack-agnostic: a :class:`FaultContext` adapts them to the
recursive-IPC stack, the IP baseline, or a bare :class:`Network` (the
``examples/fault_storm.py`` usage).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.link import (BandwidthShaper, CorruptionModel, Link,
                        LinkConditions, NormalJitter, ReorderModel,
                        UniformJitter, UniformLoss)
from ..sim.network import Network
from .spec import FaultSpec, SpecError


class FaultContext:
    """What an injector may touch: the network, plus stack-specific hooks.

    Parameters
    ----------
    network:
        The simulated plant (links, engine, tracer).
    built:
        A :class:`~repro.scenarios.runner.RinaStack` when injecting into
        the recursive-IPC stack (enables crash/re-enrollment); None for
        the IP baseline or bare networks.
    on_topology_change:
        Called after every administrative link up/down — the IP runner
        hooks routing reconvergence here; the IPC stack needs nothing
        (keepalives and link-state flooding notice on their own).
    """

    def __init__(self, network: Network, built: Optional[Any] = None,
                 on_topology_change: Optional[Callable[[], None]] = None) -> None:
        self.network = network
        self.engine = network.engine
        self.tracer = network.tracer
        self.built = built
        self._on_topology_change = on_topology_change
        self._holds: Dict[str, int] = {}   # link name → injector down-holds

    # -- plumbing ------------------------------------------------------
    def log(self, kind: str, **fields: Any) -> None:
        self.tracer.log(self.engine.now, kind, **fields)

    def topology_changed(self) -> None:
        if self._on_topology_change is not None:
            self._on_topology_change()

    # -- shared link down-state ----------------------------------------
    def fail_link(self, link: Link) -> None:
        """Take a link down on behalf of one injector (refcounted: with
        overlapping fault windows, the link stays down until *every*
        injector holding it has released it)."""
        self._holds[link.name] = self._holds.get(link.name, 0) + 1
        if self._holds[link.name] == 1:
            link.fail()

    def repair_link(self, link: Link) -> None:
        """Release one injector's hold; repairs only when no other fault
        is still holding the link down."""
        remaining = self._holds.get(link.name, 0) - 1
        self._holds[link.name] = max(0, remaining)
        if self._holds[link.name] == 0:
            link.repair()

    # -- target resolution ---------------------------------------------
    def resolve_link(self, target: str) -> Link:
        """A link by exact name, or by an ``a--b`` node pair."""
        link = self.network.links.get(target)
        if link is not None:
            return link
        if "--" in target:
            a, b = target.split("--", 1)
            try:
                return self.network.link_between(a, b)
            except KeyError:
                pass
        raise SpecError(f"no such link {target!r}")

    def links_of_node(self, name: str) -> List[Link]:
        """Every physical link attached to ``name``."""
        if name not in self.network.nodes:
            raise SpecError(f"no such node {name!r}")
        return [iface.link for iface in self.network.node(name).interfaces()]

    def cut_links(self, group: Sequence[str]) -> List[Link]:
        """Links crossing the bipartition (``group`` vs the rest).

        Iterates the links themselves, not the (simple) topology graph —
        parallel links between one node pair (the multihoming case) must
        all be cut or the partition never partitions.
        """
        inside = set(group)
        unknown = inside - set(self.network.nodes)
        if unknown:
            raise SpecError(f"partition group references unknown nodes "
                            f"{sorted(unknown)}")
        crossing = []
        for link in self.network.links.values():
            a, b = self.network.endpoints_of(link)
            if (a in inside) != (b in inside):
                crossing.append(link)
        return crossing

    # -- stack-specific: node crash / restart --------------------------
    def crash_node(self, name: str) -> None:
        """Lose the node's IPC state (recursive stack only; the IP
        baseline keeps no per-node protocol state worth crashing)."""
        if self.built is None:
            return
        system = self.built.systems.get(name)
        if system is None:
            return
        for layer in self.built.layer_order:
            if name in self.built.layer_members[layer]:
                system.ipcp(layer).crash()

    def restart_node(self, name: str,
                     done: Optional[Callable[[bool, str], None]] = None) -> None:
        """Bring the node's IPCPs back and re-enroll them bottom-up.

        Per layer (lowest first, since a higher layer's adjacencies may
        ride the one below): re-enroll through the first spec adjacency
        attaching this node to a partner, then bring the node's remaining
        spec adjacencies back up with the shorter §5.2 adjacency handshake
        — exactly the sequence the original stack build used.
        """
        if self.built is None:
            if done is not None:
                done(True, "ip-stateless")
            return
        system = self.built.systems.get(name)
        if system is None:
            if done is not None:
                done(False, "no-system")
            return
        layers = [layer for layer in self.built.layer_order
                  if name in self.built.layer_members[layer]]
        for layer in layers:
            system.ipcp(layer).restart()

        # (kind, layer, member_app, lower): one enroll then the connects,
        # per layer, in stack order
        steps: List[Tuple[str, str, Any, str]] = []
        for layer in layers:
            edges = self._node_edges(layer, name)
            if not edges:
                continue
            steps.append(("enroll", layer) + edges[0])
            for edge in edges[1:]:
                steps.append(("connect", layer) + edge)

        def run_step(index: int, ok: bool, reason: str) -> None:
            if not ok:
                self.log("fault.reenroll-failed", node=name,
                         step=steps[index - 1][:2] if index else (),
                         reason=reason)
                if done is not None:
                    done(False, reason)
                return
            if index >= len(steps):
                self.log("fault.reenrolled", node=name)
                if done is not None:
                    done(True, "reenrolled")
                return
            kind, layer, member_app, lower = steps[index]
            advance = lambda ok2, why: run_step(index + 1, ok2, why)
            if kind == "enroll":
                system.enroll(layer, member_app, lower, done=advance)
            else:
                system.connect_neighbor(layer, member_app, lower,
                                        done=advance)

        run_step(0, True, "start")

    def _node_edges(self, layer: str, name: str) -> List[Tuple[Any, str]]:
        """(partner member-app, lower) for each spec adjacency of ``name``."""
        dif = self.built.layers[layer]
        edges = []
        for a, b, lower in self.built.resolved_adjacencies[layer]:
            partner = b if a == name else (a if b == name else None)
            if partner is not None:
                edges.append((dif.name.ipcp_name(partner), lower))
        return edges


class FaultInjector:
    """Base class: schedule phases at absolute engine times from ``t0``."""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec

    def arm(self, ctx: FaultContext, t0: float) -> None:
        raise NotImplementedError

    def _log(self, ctx: FaultContext, phase: str, **fields: Any) -> None:
        ctx.log("fault", fault=self.spec.kind, phase=phase,
                target=self.spec.label(), **fields)


class LinkFlap(FaultInjector):
    """Administrative down/up cycles on one link.

    ``duration=None`` makes the first flap a permanent failure — the plain
    link-kill of the multihoming experiments is the degenerate case.
    """

    def arm(self, ctx: FaultContext, t0: float) -> None:
        spec = self.spec
        link = ctx.resolve_link(str(spec.target))

        def down() -> None:
            ctx.fail_link(link)
            self._log(ctx, "down")
            ctx.topology_changed()

        def up() -> None:
            ctx.repair_link(link)
            self._log(ctx, "up")
            ctx.topology_changed()

        for index in range(max(1, spec.flaps)):
            start = t0 + spec.at + index * spec.period
            ctx.engine.call_at(start, down, label="fault.flap.down")
            if spec.duration is not None:
                ctx.engine.call_at(start + spec.duration, up,
                                   label="fault.flap.up")


class LinkDegrade(FaultInjector):
    """Loss/delay ramp on one link: up over the first half of ``duration``,
    back down over the second, originals restored exactly at the end.

    Degradation is sub-detection-threshold trouble — no carrier event, so
    no ``topology_changed`` — precisely the regime where a scoped layer's
    local recovery shines and a wide-scope one pays end-to-end RTTs.
    """

    def arm(self, ctx: FaultContext, t0: float) -> None:
        spec = self.spec
        link = ctx.resolve_link(str(spec.target))
        saved: Dict[str, Any] = {}
        steps = max(1, spec.steps)
        duration = spec.duration if spec.duration is not None else 0.0
        half = duration / 2.0 if duration else 0.0

        def set_level(fraction: float) -> None:
            if not saved:
                saved["loss"] = link.loss
                saved["delay"] = link.delay
            link.loss = UniformLoss(spec.peak_loss * fraction)
            link.delay = saved["delay"] * (
                1.0 + (spec.delay_factor - 1.0) * fraction)
            self._log(ctx, "level", fraction=round(fraction, 6))

        def restore() -> None:
            link.loss = saved["loss"]
            link.delay = saved["delay"]
            self._log(ctx, "restored")

        start = t0 + spec.at
        for index in range(1, steps + 1):
            ctx.engine.call_at(start + half * index / steps,
                               set_level, index / steps,
                               label="fault.degrade.up")
        if spec.duration is not None:
            for index in range(1, steps):
                ctx.engine.call_at(start + half + half * index / steps,
                                   set_level, 1.0 - index / steps,
                                   label="fault.degrade.down")
            ctx.engine.call_at(start + duration, restore,
                               label="fault.degrade.restore")


class NodeCrash(FaultInjector):
    """Power-loss of a whole system: every attached link dies and (on the
    recursive stack) each of its IPCPs loses all DIF state without a
    departure announcement.  Restart repairs the links and re-enrolls the
    IPCPs bottom-up through the §5.2 join — recovery as an ordinary layer
    operation, not a special case."""

    def arm(self, ctx: FaultContext, t0: float) -> None:
        spec = self.spec
        name = str(spec.target)
        links = ctx.links_of_node(name)

        def crash() -> None:
            for link in links:
                ctx.fail_link(link)
            ctx.crash_node(name)
            self._log(ctx, "crash")
            ctx.topology_changed()

        def restart() -> None:
            for link in links:
                ctx.repair_link(link)
            self._log(ctx, "restart")
            ctx.topology_changed()
            ctx.restart_node(name)

        ctx.engine.call_at(t0 + spec.at, crash, label="fault.crash")
        if spec.duration is not None:
            ctx.engine.call_at(t0 + spec.at + spec.duration, restart,
                               label="fault.restart")


class Partition(FaultInjector):
    """Fail every link crossing a node-group boundary, then heal."""

    def arm(self, ctx: FaultContext, t0: float) -> None:
        spec = self.spec
        group = list(spec.target)
        links = ctx.cut_links(group)

        def split() -> None:
            for link in links:
                ctx.fail_link(link)
            self._log(ctx, "split", cut=len(links))
            ctx.topology_changed()

        def heal() -> None:
            for link in links:
                ctx.repair_link(link)
            self._log(ctx, "heal")
            ctx.topology_changed()

        ctx.engine.call_at(t0 + spec.at, split, label="fault.partition")
        if spec.duration is not None:
            ctx.engine.call_at(t0 + spec.at + spec.duration, heal,
                               label="fault.heal")


class CongestionBurst(FaultInjector):
    """Background burst eats most of a link's capacity for a while.

    Modeled as a serialization-rate cut by ``capacity_factor`` — the
    deterministic equivalent of cross traffic occupying the medium, with
    queues, pacing, and EFCP backpressure reacting exactly as they would
    to real competing load."""

    def arm(self, ctx: FaultContext, t0: float) -> None:
        spec = self.spec
        link = ctx.resolve_link(str(spec.target))
        saved: Dict[str, float] = {}

        def burst() -> None:
            saved["capacity"] = link.capacity_bps
            link.capacity_bps = link.capacity_bps / max(1.0,
                                                        spec.capacity_factor)
            self._log(ctx, "burst", capacity_bps=link.capacity_bps)

        def relent() -> None:
            link.capacity_bps = saved["capacity"]
            self._log(ctx, "relent")

        ctx.engine.call_at(t0 + spec.at, burst, label="fault.congestion")
        if spec.duration is not None:
            ctx.engine.call_at(t0 + spec.at + spec.duration, relent,
                               label="fault.relent")


class ConditionWindow(FaultInjector):
    """Shared shape of the four network-condition injectors.

    At ``t0 + at`` the link's current :class:`LinkConditions` reference
    is saved and a copy with this injector's slot replaced is installed;
    at ``t0 + at + duration`` the saved reference is restored — so
    conditions compose with whatever was configured statically, and
    overlapping windows on *different* slots merge cleanly (same-slot
    overlaps are last-writer-wins, like stacked ``link-degrade`` ramps).
    ``duration=None`` leaves the condition in place for good.
    """

    slot = ""    # which LinkConditions slot this injector drives

    def _model(self, spec: FaultSpec) -> Any:
        raise NotImplementedError

    def arm(self, ctx: FaultContext, t0: float) -> None:
        spec = self.spec
        link = ctx.resolve_link(str(spec.target))
        saved: Dict[str, Any] = {}

        def on() -> None:
            saved["conditions"] = link.conditions
            base = (link.conditions if link.conditions is not None
                    else LinkConditions())
            link.conditions = base.replace(**{self.slot: self._model(spec)})
            self._log(ctx, "on")

        def off() -> None:
            link.conditions = saved["conditions"]
            self._log(ctx, "off")

        ctx.engine.call_at(t0 + spec.at, on, label=f"fault.{self.slot}.on")
        if spec.duration is not None:
            ctx.engine.call_at(t0 + spec.at + spec.duration, off,
                               label=f"fault.{self.slot}.off")


class JitterStorm(ConditionWindow):
    """Delay variance on one link for a window — no loss, no carrier
    event, just a jittery path; stresses latency-sensitive policy and
    (with ``preserve_order=False``) EFCP sequencing."""

    slot = "jitter"

    def _model(self, spec: FaultSpec) -> Any:
        if spec.jitter_model == "normal":
            return NormalJitter(mean=spec.jitter_s,
                                stddev=spec.jitter_s / 2.0,
                                preserve_order=spec.preserve_order)
        return UniformJitter(spec.jitter_s,
                             preserve_order=spec.preserve_order)


class BandwidthSqueeze(ConditionWindow):
    """Token-bucket shaping caps one link's effective rate for a window —
    the policer/flash-crowd analogue of :class:`CongestionBurst`, but
    bursty (a bucket refills) instead of a flat serialization cut."""

    slot = "shaper"

    def _model(self, spec: FaultSpec) -> Any:
        return BandwidthShaper(spec.rate_bps, spec.burst_bytes)


class CorruptionStorm(ConditionWindow):
    """Per-frame payload corruption on one link for a window: frames
    still arrive, but damaged — the receiving stack's SDU protection
    must detect and count them, never deliver them."""

    slot = "corruption"

    def _model(self, spec: FaultSpec) -> Any:
        return CorruptionModel(spec.corrupt_prob, spec.max_flips)


class ReorderBurst(ConditionWindow):
    """Bounded-displacement reordering on one link for a window,
    stressing EFCP's sequencing (delivery order must survive)."""

    slot = "reorder"

    def _model(self, spec: FaultSpec) -> Any:
        return ReorderModel(spec.reorder_prob, spec.reorder_depth,
                            spec.reorder_hold)


INJECTORS: Dict[str, Callable[[FaultSpec], FaultInjector]] = {
    "link-flap": LinkFlap,
    "link-degrade": LinkDegrade,
    "node-crash": NodeCrash,
    "partition": Partition,
    "congestion": CongestionBurst,
    "jitter-storm": JitterStorm,
    "bandwidth-squeeze": BandwidthSqueeze,
    "corruption-storm": CorruptionStorm,
    "reorder-burst": ReorderBurst,
}


def make_injector(spec: FaultSpec) -> FaultInjector:
    """Instantiate the injector for one fault spec."""
    spec.validate()
    return INJECTORS[spec.kind](spec)
