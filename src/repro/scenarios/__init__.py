"""Scenario harness: declarative specs, fault injectors, dual-stack runner.

The paper's central claim is that one recursive IPC architecture handles
renumbering, multihoming, mobility, and security as ordinary layer
operations.  This package turns testing that claim into composition
instead of scripting:

* :mod:`~repro.scenarios.spec` — the declarative :class:`Scenario` form
  (topology family × DIF stack × workload mix × fault schedule);
* :mod:`~repro.scenarios.faults` — pluggable engine-scheduled injectors
  (link flap, degradation ramps, node crash with re-enrollment,
  partition/heal, congestion burst);
* :mod:`~repro.scenarios.runner` — executes a spec on the recursive-IPC
  stack *and* the IP baseline, emitting the standard metric dict plus a
  byte-stable trace for determinism checks;
* :mod:`~repro.scenarios.generate` — seeded sampling of valid specs for
  fuzz-style sweeps;
* :mod:`~repro.scenarios.canned` — named specs, including the E3/E4/E5
  experiment stacks re-expressed declaratively.
"""

from .canned import (CANNED, canned, corruption_storm, diurnal_load,
                     e3_scenario, e4_scenario, e5_scenario, fault_storm,
                     flash_crowd, ring_of_stars, rolling_degradation)
from .faults import (INJECTORS, BandwidthSqueeze, CongestionBurst,
                     CorruptionStorm, FaultContext, FaultInjector,
                     JitterStorm, LinkDegrade, LinkFlap, NodeCrash,
                     Partition, ReorderBurst, make_injector)
from .generate import generate_scenario, generate_specs
from .runner import (RinaStack, ScenarioRunner, build_rina_stack,
                     build_topology, canned_trace_digest, determinism_jobs,
                     run_determinism_row, run_scenario)
from .spec import (FAULT_KINDS, SHIM, TOPOLOGY_FAMILIES, WORKLOAD_KINDS,
                   FaultSpec, LayerSpec, LinkSpec, Scenario, SpecError,
                   TopologySpec, WorkloadSpec, auto_layers)

__all__ = [
    "Scenario", "TopologySpec", "LinkSpec", "LayerSpec", "WorkloadSpec",
    "FaultSpec", "SpecError", "auto_layers",
    "SHIM", "TOPOLOGY_FAMILIES", "WORKLOAD_KINDS", "FAULT_KINDS",
    "FaultContext", "FaultInjector", "LinkFlap", "LinkDegrade", "NodeCrash",
    "Partition", "CongestionBurst", "JitterStorm", "BandwidthSqueeze",
    "CorruptionStorm", "ReorderBurst", "INJECTORS", "make_injector",
    "ScenarioRunner", "RinaStack", "build_rina_stack", "build_topology",
    "run_scenario", "run_determinism_row", "canned_trace_digest",
    "determinism_jobs",
    "generate_scenario", "generate_specs",
    "CANNED", "canned", "fault_storm", "e3_scenario", "e4_scenario",
    "e5_scenario", "ring_of_stars", "flash_crowd", "diurnal_load",
    "rolling_degradation", "corruption_storm",
]
