"""Execute a :class:`~repro.scenarios.spec.Scenario` on either stack.

The runner is the counterpart of the hand-written experiment scripts: it
turns a declarative spec into (1) a topology, (2) a recursive-IPC layer
stack *or* the IP baseline, (3) workload actors drawn from
:mod:`repro.apps` (or their sockets-API equivalents), and (4) armed fault
injectors — then runs the engine for the scenario duration and reports the
standard metric dict (goodput, delivery gaps, recovery) plus a canonical
**trace**: a byte-stable fingerprint of everything observable in the run.
Two runs of the same spec with the same seed must produce identical traces
— the determinism contract the test suite enforces.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..apps.echo import EchoClient, EchoServer
from ..apps.filetransfer import FileSender, FileSink
from ..apps.streaming import CbrSource, LatencySink
from ..baselines.sockets import IpFabric
from ..core.dif import Dif, DifPolicies
from ..core.fabric import (Orchestrator, add_shims, build_dif_over,
                           make_systems, shim_between, shim_name_for)
from ..core.qos import DEFAULT_CUBES, RELIABLE
from ..experiments.common import delivery_gap, goodput_bps, percentile
from ..sim.link import LinkConditions, UniformLoss
from ..sim.network import Network
from .faults import FaultContext, make_injector
from .spec import (SHIM, LayerSpec, Scenario, SpecError, TopologySpec,
                   auto_layers)

STACKS = ("rina", "ip")
IP_RECONVERGE_DELAY = 0.3   # carrier change → routing daemon reconvergence


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
def _link_conditions(jitter: Any = None, shaper: Any = None,
                     corruption: Any = None,
                     reorder: Any = None) -> Optional[LinkConditions]:
    """Build a :class:`LinkConditions` from spec-form dicts (or None)."""
    if (jitter is None and shaper is None and corruption is None
            and reorder is None):
        return None
    try:
        return LinkConditions.from_dict({"jitter": jitter, "shaper": shaper,
                                         "corruption": corruption,
                                         "reorder": reorder})
    except (TypeError, ValueError) as exc:
        raise SpecError(f"bad link conditions: {exc}")


def build_topology(topology: TopologySpec, network: Network) -> List[str]:
    """Instantiate the topology spec into ``network``; returns node names."""
    topology.validate()
    link_kwargs = dict(topology.link)
    loss = link_kwargs.pop("loss", None)
    if loss is not None:
        link_kwargs["loss"] = UniformLoss(float(loss))
    conditions = _link_conditions(link_kwargs.pop("jitter", None),
                                  link_kwargs.pop("shaper", None),
                                  link_kwargs.pop("corruption", None),
                                  link_kwargs.pop("reorder", None))
    if conditions is not None:
        link_kwargs["conditions"] = conditions
    family = topology.family
    if family == "explicit":
        for name in topology.nodes:
            network.add_node(name)
        for spec in topology.links:
            network.connect(
                spec.a, spec.b, name=spec.name,
                capacity_bps=spec.capacity_bps, delay=spec.delay,
                loss=None if spec.loss is None else UniformLoss(spec.loss),
                wireless=spec.wireless, queue_limit=spec.queue_limit,
                conditions=_link_conditions(spec.jitter, spec.shaper,
                                            spec.corruption, spec.reorder))
        return list(topology.nodes)
    params = dict(topology.params)
    if family == "chain":
        return network.build_chain(params.get("count", 3), **link_kwargs)
    if family == "star":
        hub, leaves = network.build_star(params.get("leaves", 3),
                                         **link_kwargs)
        return [hub] + leaves
    if family == "tree":
        return network.build_tree(params.get("depth", 2),
                                  params.get("arity", 2), **link_kwargs)
    if family == "grid":
        matrix = network.build_grid(params.get("rows", 2),
                                    params.get("cols", 2), **link_kwargs)
        return [name for row in matrix for name in row]
    if family == "random":
        return network.build_random(params.get("count", 5),
                                    params.get("edge_factor", 1.5),
                                    **link_kwargs)
    if family == "ring_of_stars":
        return network.build_ring_of_stars(params.get("regions", 3),
                                           params.get("hosts", 2),
                                           **link_kwargs)
    raise SpecError(f"unknown topology family {family!r}")


def physical_edges(network: Network) -> List[Tuple[str, str, str]]:
    """(a, b, link_name) per link, in creation order.

    Resolved from the links' actual attachment points, not their names —
    custom-named links (``uplink#a``, ``radio:bs1``) count too, so
    ``dif_depth``-derived layers span every link of an explicit topology.
    """
    return [network.endpoints_of(link) + (name,)
            for name, link in network.links.items()]


# ----------------------------------------------------------------------
# The recursive-IPC stack
# ----------------------------------------------------------------------
class RinaStack:
    """Everything built for the IPC side of one scenario run."""

    def __init__(self, network: Network, systems: Dict[str, Any],
                 layers: Dict[str, Dif], layer_order: List[str],
                 layer_members: Dict[str, List[str]],
                 resolved_adjacencies: Dict[str, List[Tuple[str, str, str]]],
                 orchestrator: Orchestrator) -> None:
        self.network = network
        self.systems = systems
        self.layers = layers
        self.layer_order = layer_order
        self.layer_members = layer_members
        self.resolved_adjacencies = resolved_adjacencies
        self.orchestrator = orchestrator

    @property
    def top_layer(self) -> str:
        return self.layer_order[-1]


def make_policies(values: Dict[str, Any]) -> DifPolicies:
    """Build :class:`DifPolicies` from the JSON-safe policy dict of a
    :class:`LayerSpec` (named QoS cube references resolved)."""
    kwargs = dict(values)
    cube = kwargs.get("lower_flow_cube")
    if isinstance(cube, str):
        try:
            kwargs["lower_flow_cube"] = DEFAULT_CUBES[cube]
        except KeyError:
            raise SpecError(f"unknown QoS cube {cube!r}")
    return DifPolicies(**kwargs)


def resolve_layers(scenario: Scenario, network: Network) -> List[LayerSpec]:
    """The scenario's layer stack (explicit, or derived from dif_depth)."""
    if scenario.layers:
        return scenario.layers
    return auto_layers(physical_edges(network), scenario.dif_depth)


def build_rina_stack(scenario: Scenario, seed: int = 0,
                     network: Optional[Network] = None) -> RinaStack:
    """Build topology + systems + shims + the spec's DIF stack.

    Also usable standalone: the refactored E3/E4/E5 experiments express
    their stacks as scenario specs and call this, then keep their own
    measurement logic.
    """
    if network is None:
        network = Network(seed=seed)
        build_topology(scenario.topology, network)
    systems = make_systems(network)
    add_shims(systems, network)
    orchestrator = Orchestrator(network)
    layers: Dict[str, Dif] = {}
    layer_order: List[str] = []
    layer_members: Dict[str, List[str]] = {}
    resolved: Dict[str, List[Tuple[str, str, str]]] = {}
    for layer in resolve_layers(scenario, network):
        if layer.name in layers:
            raise SpecError(f"duplicate layer name {layer.name!r}")
        adjacencies = []
        for a, b, lower in layer.adjacencies:
            adjacencies.append((a, b, _resolve_lower(lower, a, b, network,
                                                     layers)))
        dif = Dif(layer.name, make_policies(layer.policies),
                  rank=len(layer_order) + 1)
        build_dif_over(orchestrator, dif, systems, adjacencies=adjacencies,
                       bootstrap=layer.bootstrap)
        layers[layer.name] = dif
        layer_order.append(layer.name)
        layer_members[layer.name] = LayerSpec(
            name=layer.name, adjacencies=adjacencies).members()
        resolved[layer.name] = adjacencies
    orchestrator.run(timeout=scenario.build_timeout)
    return RinaStack(network, systems, layers, layer_order, layer_members,
                     resolved, orchestrator)


def _resolve_lower(lower: str, a: str, b: str, network: Network,
                   layers: Dict[str, Dif]) -> str:
    if lower == SHIM:
        return shim_between(network, a, b)
    if lower.startswith("link:"):
        return shim_name_for(lower[len("link:"):])
    if lower in layers:
        return lower
    raise SpecError(f"adjacency {a!r}--{b!r}: unknown lower facility "
                    f"{lower!r} (not a built layer, 'shim', or 'link:...')")


# ----------------------------------------------------------------------
# Workload adapters (both stacks record the same observables)
# ----------------------------------------------------------------------
class WorkloadStats:
    """What one workload contributes to metrics and the trace."""

    def __init__(self, index: int, kind: str) -> None:
        self.index = index
        self.kind = kind
        self.delivery_times: List[float] = []
        self.sent = 0
        self.delivered = 0
        self.expected = 0
        self.bytes_delivered = 0
        self.completed = False
        self.delays: List[float] = []


class _RinaWorkloads:
    """Instantiate app-layer actors from :mod:`repro.apps` over the top
    (or named) layer of a built stack."""

    def __init__(self, built: RinaStack, scenario: Scenario) -> None:
        self.built = built
        self.engine = built.network.engine
        self.stats: List[WorkloadStats] = []
        self._keep = []   # actors must outlive this scope
        self._finishers: List[Callable[[], None]] = []
        self._stream_sinks: List[Tuple[WorkloadStats, LatencySink]] = []
        for index, spec in enumerate(scenario.workloads):
            stats = WorkloadStats(index, spec.kind)
            self.stats.append(stats)
            dif = spec.dif or built.top_layer
            qos = DEFAULT_CUBES.get(spec.qos, RELIABLE)
            if spec.kind == "echo":
                self._setup_echo(index, spec, stats, dif, qos)
            elif spec.kind == "transfer":
                self._setup_transfer(index, spec, stats, dif, qos)
            elif spec.kind == "stream":
                self._setup_stream(index, spec, stats, dif, qos)
            else:
                raise SpecError(f"unknown workload kind {spec.kind!r}")

    def _setup_echo(self, index, spec, stats, dif, qos) -> None:
        built = self.built
        server = EchoServer(built.systems[spec.server],
                            name=f"echo-srv-{index}", dif_names=[dif])
        stats.expected = spec.count

        def start() -> None:
            holder = {}

            def pump() -> None:
                client = holder["client"]
                if stats.sent < spec.count:
                    client.ping(spec.size)
                    stats.sent += 1
                    self.engine.call_later(spec.period, pump,
                                           label="wl.echo.pump")

            holder["client"] = EchoClient(
                built.systems[spec.client], server_name=f"echo-srv-{index}",
                client_name=f"echo-cli-{index}", qos=qos, dif_name=dif,
                on_reply=lambda _data: self._delivered(stats),
                on_ready=pump)
            self._keep.append(holder["client"])

        self.engine.call_later(spec.start, start, label="wl.echo.start")
        self._keep.append(server)

    def _setup_transfer(self, index, spec, stats, dif, qos) -> None:
        built = self.built

        def on_chunk(now: float, size: int) -> None:
            stats.delivery_times.append(now)
            stats.delivered += 1
            stats.bytes_delivered += size

        sink = FileSink(built.systems[spec.server], name=f"sink-{index}",
                        dif_names=[dif], on_chunk=on_chunk)
        stats.expected = spec.bytes

        def completed() -> None:
            stats.completed = sink.transfers_completed >= 1

        def start() -> None:
            sender = FileSender(built.systems[spec.client], spec.bytes,
                                sink_name=f"sink-{index}",
                                sender_name=f"sender-{index}",
                                qos=qos, dif_name=dif)
            self._keep.append(sender)
        self.engine.call_later(spec.start, start, label="wl.xfer.start")
        self._keep.append(sink)
        self._finishers.append(completed)

    def _setup_stream(self, index, spec, stats, dif, qos) -> None:
        built = self.built
        sink = LatencySink(built.systems[spec.server], name=f"lat-{index}",
                           dif_names=[dif])
        stats.expected = spec.count

        def start() -> None:
            source = CbrSource(built.systems[spec.client], f"cbr-{index}",
                               f"lat-{index}", qos, spec.size, spec.period,
                               dif_name=dif)
            source.start()
            self._keep.append(source)
        self.engine.call_later(spec.start, start, label="wl.cbr.start")
        self._keep.append(sink)
        self._stream_sinks.append((stats, sink))

    def _delivered(self, stats: WorkloadStats) -> None:
        stats.delivered += 1
        stats.delivery_times.append(self.engine.now)

    def finish(self) -> None:
        """Fold end-of-run actor state into the stats."""
        for completed in self._finishers:
            completed()
        for stats, sink in self._stream_sinks:
            stats.delivered = sink.received
            for delays in sink.delays.values():
                stats.delays.extend(delays)


class _IpWorkloads:
    """The same workload mix through the sockets API on the IP baseline."""

    def __init__(self, fabric: IpFabric, scenario: Scenario) -> None:
        self.fabric = fabric
        self.engine = fabric.network.engine
        self.stats: List[WorkloadStats] = []
        self._keep = []
        for index, spec in enumerate(scenario.workloads):
            stats = WorkloadStats(index, spec.kind)
            self.stats.append(stats)
            if spec.kind == "echo":
                self._setup_echo(index, spec, stats)
            elif spec.kind == "transfer":
                self._setup_transfer(index, spec, stats)
            elif spec.kind == "stream":
                self._setup_stream(index, spec, stats)
            else:
                raise SpecError(f"unknown workload kind {spec.kind!r}")

    def _setup_echo(self, index, spec, stats) -> None:
        server = self.fabric.host(spec.server)
        client = self.fabric.host(spec.client)
        port = 7000 + index
        stats.expected = spec.count

        def echo_handler(payload, size, src_ip, src_port) -> None:
            server.udp.sendto(server.addr(), port, src_ip, src_port,
                              payload, size)
        server.udp.bind(port, echo_handler)

        def reply_handler(payload, size, src_ip, src_port) -> None:
            stats.delivered += 1
            stats.delivery_times.append(self.engine.now)
        client_port = client.udp.bind(6000 + index, reply_handler)

        def pump() -> None:
            if stats.sent < spec.count:
                client.udp.sendto(client.addr(), client_port, server.addr(),
                                  port, b"ping", spec.size)
                stats.sent += 1
                self.engine.call_later(spec.period, pump,
                                       label="wl.echo.pump")
        self.engine.call_later(spec.start, pump, label="wl.echo.start")

    def _setup_transfer(self, index, spec, stats) -> None:
        server = self.fabric.host(spec.server)
        client = self.fabric.host(spec.client)
        port = 5000 + index
        stats.expected = spec.bytes

        def on_accept(conn) -> None:
            def on_data(length: int) -> None:
                stats.bytes_delivered += length
                stats.delivered += 1
                stats.delivery_times.append(self.engine.now)
                stats.completed = stats.bytes_delivered >= spec.bytes
            conn.on_data = on_data
            self._keep.append(conn)
        server.tcp.listen(port, on_accept)

        def start() -> None:
            conn = client.tcp.connect(client.addr(), server.addr(), port)
            self._keep.append(conn)

            def push() -> None:
                if conn.established and stats.sent < spec.bytes:
                    chunk = min(16 * 1024, spec.bytes - stats.sent)
                    conn.send(chunk)
                    stats.sent += chunk
                if stats.sent < spec.bytes:
                    self.engine.call_later(0.05, push, label="wl.xfer.push")
            push()
        self.engine.call_later(spec.start, start, label="wl.xfer.start")

    def _setup_stream(self, index, spec, stats) -> None:
        server = self.fabric.host(spec.server)
        client = self.fabric.host(spec.client)
        port = 8000 + index
        stats.expected = spec.count

        def sink_handler(payload, size, src_ip, src_port) -> None:
            stats.delivered += 1
            stats.delays.append(self.engine.now - payload)
        server.udp.bind(port, sink_handler)
        client_port = client.udp.bind(9000 + index, lambda *a: None)

        def pump() -> None:
            client.udp.sendto(client.addr(), client_port, server.addr(),
                              port, self.engine.now, spec.size)
            stats.sent += 1
            self.engine.call_later(spec.period, pump, label="wl.cbr.pump")
        self.engine.call_later(spec.start, pump, label="wl.cbr.start")

    def finish(self) -> None:
        pass


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class ScenarioRunner:
    """Execute one scenario spec on one stack and report metrics + trace."""

    def __init__(self, scenario: Scenario, seed: int = 0) -> None:
        scenario.validate()
        self.scenario = scenario
        self.seed = seed
        self.trace: str = ""
        self.network: Optional[Network] = None   # last run's plant

    def run(self, stack: str = "rina") -> Dict[str, Any]:
        """Build, inject, run, measure.  Returns the standard metric dict;
        the canonical trace of the run is left in :attr:`trace`."""
        if stack not in STACKS:
            raise SpecError(f"unknown stack {stack!r}")
        scenario = self.scenario
        network = Network(seed=self.seed)
        nodes = build_topology(scenario.topology, network)
        scenario.validate(nodes)

        if stack == "rina":
            built = build_rina_stack(scenario, seed=self.seed,
                                     network=network)
            ctx = FaultContext(network, built=built)
        else:
            fabric = IpFabric(network, routers=nodes)
            reconverge = _Reconverger(network, fabric)
            ctx = FaultContext(network, built=None,
                               on_topology_change=reconverge)

        network.run(until=network.engine.now + scenario.settle)
        # t0 is the epoch every workload start and fault time is relative
        # to: servers register now, clients/faults fire at t0 + offset.
        t0 = network.engine.now
        workloads: Any = (_RinaWorkloads(built, scenario) if stack == "rina"
                          else _IpWorkloads(fabric, scenario))
        for fault in scenario.faults:
            make_injector(fault).arm(ctx, t0)
        network.run(until=t0 + scenario.duration)

        workloads.finish()
        metrics = self._metrics(stack, t0, workloads.stats,
                                network.engine.events_processed)
        self.trace = self._trace_text(network, metrics, workloads.stats)
        self.network = network
        return metrics

    # -- measurement ---------------------------------------------------
    def _metrics(self, stack: str, t0: float,
                 stats: List[WorkloadStats], events: int) -> Dict[str, Any]:
        scenario = self.scenario
        outages: Dict[str, float] = {}
        for fault in scenario.faults:
            outages[fault.label()] = self._outage_at(stats, t0 + fault.at)
        finite = [gap for gap in outages.values() if math.isfinite(gap)]
        transfer_bytes = sum(s.bytes_delivered for s in stats
                             if s.kind == "transfer")
        delays = [d for s in stats for d in s.delays]
        return {
            "scenario": scenario.name,
            "stack": stack,
            "seed": self.seed,
            "duration_s": scenario.duration,
            "echo_sent": sum(s.sent for s in stats if s.kind == "echo"),
            "echo_delivered": sum(s.delivered for s in stats
                                  if s.kind == "echo"),
            "transfer_bytes": transfer_bytes,
            "transfers_completed": sum(1 for s in stats
                                       if s.kind == "transfer" and s.completed),
            "goodput_mbps": (goodput_bps(transfer_bytes, scenario.duration)
                             / 1e6 if transfer_bytes else 0.0),
            "stream_received": sum(s.delivered for s in stats
                                   if s.kind == "stream"),
            "stream_delay_p95_ms": (percentile(delays, 95) * 1e3
                                    if delays else None),
            "outages": outages,
            "worst_outage_s": max(finite) if finite else math.inf,
            "events": events,
        }

    @staticmethod
    def _outage_at(stats: List[WorkloadStats], at: float) -> float:
        """Worst delivery gap at/after ``at`` across probe workloads.

        Computed per workload, then maxed — merging all delivery times
        into one list would let an unaffected workload's steady traffic
        mask a real outage on another workload's path.  A workload with
        no delivery after ``at`` contributes infinity only if it had not
        already finished its work by then (a completed transfer going
        quiet is not evidence of an outage).
        """
        gaps = []
        for s in stats:
            if s.kind not in ("echo", "transfer") or not s.delivery_times:
                continue
            gap = delivery_gap(s.delivery_times, at)
            if math.isinf(gap):
                finished = (s.completed if s.kind == "transfer"
                            else s.delivered >= s.expected)
                if finished:
                    continue
            gaps.append(gap)
        return max(gaps) if gaps else math.inf

    # -- trace fingerprint ---------------------------------------------
    def _trace_text(self, network: Network, metrics: Dict[str, Any],
                    stats: List[WorkloadStats]) -> str:
        lines = [f"scenario={self.scenario.name} seed={self.seed} "
                 f"stack={metrics['stack']}"]
        for name, value in network.tracer.counters().items():
            lines.append(f"counter {name}={value}")
        for time, kind, fields in network.tracer.events():
            rendered = ",".join(f"{key}={fields[key]!r}"
                                for key in sorted(fields))
            lines.append(f"event {time!r} {kind} {rendered}")
        for s in stats:
            for time in s.delivery_times:
                lines.append(f"delivery w{s.index} {time!r}")
        lines.append("metrics " + json.dumps(metrics, sort_keys=True,
                                             default=repr))
        return "\n".join(lines) + "\n"


class _Reconverger:
    """Schedules one routing reconvergence per carrier change, a fixed
    detection delay after the event (what an IGP's hold-down would do)."""

    def __init__(self, network: Network, fabric: IpFabric) -> None:
        self._network = network
        self._fabric = fabric

    def __call__(self) -> None:
        self._network.engine.call_later(
            IP_RECONVERGE_DELAY, self._fabric.daemon.converge,
            label="ip.reconverge")


def run_scenario(scenario: Scenario, seed: int = 0,
                 stacks: Tuple[str, ...] = ("rina", "ip")) -> List[Dict[str, Any]]:
    """Run one spec on each requested stack; one metric row per stack."""
    rows = []
    for stack in stacks:
        runner = ScenarioRunner(scenario, seed=seed)
        rows.append(runner.run(stack))
    return rows


# ----------------------------------------------------------------------
# Sweep-job targets (picklable pure-data entry points)
# ----------------------------------------------------------------------
def run_determinism_row(spec: Dict[str, Any], seed: int = 0,
                        stack: str = "rina") -> Dict[str, Any]:
    """One (spec, stack) cell of the ``scenarios run`` table.

    Takes the scenario in its :meth:`Scenario.to_dict` form so a sweep
    :class:`~repro.sweeps.Job` can carry it across a ``spawn`` process
    boundary as pure data.  Executes the spec **twice** and compares the
    traces — the determinism contract — and reports the trace digest so
    callers can additionally compare across processes.
    """
    scenario = Scenario.from_dict(spec)
    first = ScenarioRunner(scenario, seed=seed)
    metrics = first.run(stack)
    second = ScenarioRunner(scenario, seed=seed)
    second.run(stack)
    return {
        "scenario": metrics["scenario"],
        "stack": stack,
        "echo": f"{metrics['echo_delivered']}/{metrics['echo_sent']}",
        "goodput_mbps": metrics["goodput_mbps"],
        "worst_outage_s": metrics["worst_outage_s"],
        "faults": len(scenario.faults),
        "deterministic": first.trace == second.trace,
        "trace_sha256": hashlib.sha256(first.trace.encode()).hexdigest(),
    }


def determinism_jobs(scenarios: List[Scenario], seed: int = 0,
                     stacks: Tuple[str, ...] = STACKS,
                     group: str = "scenarios") -> List["Job"]:
    """The :func:`run_determinism_row` job list for a scenario batch:
    one job per (spec, stack), specs serialized to pure data.  The
    single source of this construction for the CLI, the S1 bench, and
    the equivalence tests."""
    from ..sweeps import Job
    return [Job("repro.scenarios.runner:run_determinism_row",
                kwargs={"spec": scenario.to_dict(), "seed": seed,
                        "stack": stack},
                group=group, label=f"{scenario.name}/{stack}")
            for scenario in scenarios for stack in stacks]


def canned_trace_digest(name: str, seed: int = 0,
                        stack: str = "rina") -> Dict[str, Any]:
    """Row: the SHA-256 of one canned spec's trace.

    Job target for the golden-fingerprint worker checks: a trace
    produced inside a pool worker (under any start method) must match
    the pinned in-process digest.
    """
    from .canned import canned
    runner = ScenarioRunner(canned(name), seed=seed)
    runner.run(stack)
    return {
        "name": name,
        "seed": seed,
        "stack": stack,
        "sha256": hashlib.sha256(runner.trace.encode()).hexdigest(),
    }
