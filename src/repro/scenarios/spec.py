"""Declarative scenario specifications.

A :class:`Scenario` is pure data: a topology family, a DIF layer stack, a
workload mix, and a timed fault schedule.  The same spec drives both the
recursive-IPC stack and the IP baseline (see
:mod:`repro.scenarios.runner`), so scenario coverage is a matter of
*composing* specs — by hand, from the canned registry, or sampled by
:mod:`repro.scenarios.generate` — instead of writing a bespoke experiment
script per case.

Specs round-trip through plain dicts (:meth:`Scenario.to_dict` /
:meth:`Scenario.from_dict`) so they can live in JSON files and be run from
the CLI (``python -m repro scenarios run <spec>``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

TOPOLOGY_FAMILIES = ("chain", "star", "tree", "grid", "random",
                     "ring_of_stars", "explicit")
WORKLOAD_KINDS = ("echo", "transfer", "stream")
FAULT_KINDS = ("link-flap", "link-degrade", "node-crash", "partition",
               "congestion", "jitter-storm", "bandwidth-squeeze",
               "corruption-storm", "reorder-burst")

#: lower-facility reference understood by layer adjacencies:
#: ``"shim"`` — the shim over the (first) physical link between the pair;
#: ``"link:<name>"`` — the shim over the named physical link;
#: anything else — the name of another (lower) layer in the same scenario.
SHIM = "shim"


class SpecError(ValueError):
    """Raised for malformed scenario specifications."""


@dataclass
class LinkSpec:
    """One physical link of an ``explicit`` topology.

    The four condition fields are JSON-safe model-spec dicts following
    the :meth:`repro.sim.link.LinkConditions.from_dict` grammar (e.g.
    ``jitter={"model": "uniform", "amplitude": 0.005}``); None leaves
    that impairment off.
    """

    a: str
    b: str
    name: Optional[str] = None
    capacity_bps: float = 1e8
    delay: float = 0.001
    loss: Optional[float] = None      # None → perfect medium
    wireless: bool = False
    queue_limit: int = 256
    jitter: Optional[Dict[str, Any]] = None
    shaper: Optional[Dict[str, Any]] = None
    corruption: Optional[Dict[str, Any]] = None
    reorder: Optional[Dict[str, Any]] = None


@dataclass
class TopologySpec:
    """A topology family plus its size/link parameters.

    ``family`` selects one of the :class:`~repro.sim.network.Network`
    builders; ``params`` are that builder's keyword arguments (``count``,
    ``rows``/``cols``, ``depth``/``arity``, ``leaves``, ``edge_factor``).
    ``link`` gives the default link parameters for builder families.  The
    ``explicit`` family instead lists ``nodes`` and ``links`` one by one
    (parallel links and per-link media included — multihoming needs them).
    """

    family: str = "chain"
    params: Dict[str, Any] = field(default_factory=dict)
    link: Dict[str, Any] = field(default_factory=dict)
    nodes: List[str] = field(default_factory=list)
    links: List[LinkSpec] = field(default_factory=list)

    def validate(self) -> None:
        if self.family not in TOPOLOGY_FAMILIES:
            raise SpecError(f"unknown topology family {self.family!r}")
        if self.family == "explicit":
            if not self.nodes or not self.links:
                raise SpecError("explicit topology needs nodes and links")
            known = set(self.nodes)
            for link in self.links:
                if link.a not in known or link.b not in known:
                    raise SpecError(f"link {link.a!r}--{link.b!r} references "
                                    f"unknown nodes")


@dataclass
class LayerSpec:
    """One DIF of the scenario's stack.

    ``adjacencies`` are ``(system_a, system_b, lower)`` triples where
    ``lower`` follows the grammar documented at :data:`SHIM`.  ``policies``
    are plain-value :class:`~repro.core.dif.DifPolicies` keyword arguments
    (the JSON-safe subset: floats, ints, strings, dicts thereof).
    """

    name: str
    adjacencies: List[Tuple[str, str, str]] = field(default_factory=list)
    policies: Dict[str, Any] = field(default_factory=dict)
    bootstrap: Optional[str] = None

    def members(self) -> List[str]:
        ordered: List[str] = []
        for a, b, _lower in self.adjacencies:
            for name in (a, b):
                if name not in ordered:
                    ordered.append(name)
        return ordered


@dataclass
class WorkloadSpec:
    """One application pair riding the top layer (or ``dif``).

    Kinds: ``echo`` (periodic request/reply, the outage probe),
    ``transfer`` (bulk reliable push, the goodput probe), ``stream``
    (constant bit rate, the latency probe) — all drawn from
    :mod:`repro.apps`.
    """

    kind: str = "echo"
    client: str = ""
    server: str = ""
    start: float = 1.0
    period: float = 0.05     # echo/stream inter-message period
    count: int = 100         # echo: messages to send
    size: int = 200          # echo/stream message bytes
    bytes: int = 100_000     # transfer: payload volume
    qos: str = "reliable"
    dif: Optional[str] = None   # explicit layer; default: the top layer

    def validate(self, nodes: Sequence[str]) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise SpecError(f"unknown workload kind {self.kind!r}")
        for endpoint in (self.client, self.server):
            if endpoint not in nodes:
                raise SpecError(f"workload endpoint {endpoint!r} not in "
                                f"topology")
        if self.client == self.server:
            raise SpecError("workload endpoints must differ")


@dataclass
class FaultSpec:
    """One timed fault.

    ``target`` is a link name, an ``"a--b"`` node pair, a node name
    (``node-crash``), or a list of node names (``partition`` group).
    Times are relative to the workload epoch (t0 = stack built and
    settled).  ``duration=None`` makes the fault permanent.
    """

    kind: str = "link-flap"
    target: Any = None
    at: float = 2.0
    duration: Optional[float] = 1.0
    # link-flap
    flaps: int = 1
    period: float = 2.0
    # link-degrade
    peak_loss: float = 0.5
    delay_factor: float = 4.0
    steps: int = 4
    # congestion
    capacity_factor: float = 8.0
    # jitter-storm
    jitter_s: float = 0.005
    jitter_model: str = "uniform"
    preserve_order: bool = True
    # bandwidth-squeeze
    rate_bps: float = 1e6
    burst_bytes: Optional[float] = None
    # corruption-storm
    corrupt_prob: float = 0.1
    max_flips: int = 3
    # reorder-burst
    reorder_prob: float = 0.2
    reorder_depth: int = 3
    reorder_hold: float = 0.05

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SpecError(f"unknown fault kind {self.kind!r}")
        if self.target is None:
            raise SpecError(f"fault {self.kind} needs a target")
        if self.at < 0:
            raise SpecError("fault time must be non-negative")
        if self.kind == "partition" and not isinstance(self.target,
                                                       (list, tuple)):
            raise SpecError("partition target must be a node group")
        if self.kind == "jitter-storm":
            if self.jitter_s < 0:
                raise SpecError("jitter_s must be non-negative")
            if self.jitter_model not in ("uniform", "normal"):
                raise SpecError(f"unknown jitter model {self.jitter_model!r}")
        if self.kind == "bandwidth-squeeze" and self.rate_bps <= 0:
            raise SpecError("rate_bps must be positive")
        if self.kind == "corruption-storm" and not (
                0.0 <= self.corrupt_prob <= 1.0):
            raise SpecError("corrupt_prob must be in [0,1]")
        if self.kind == "reorder-burst":
            if not 0.0 <= self.reorder_prob <= 1.0:
                raise SpecError("reorder_prob must be in [0,1]")
            if self.reorder_depth < 1:
                raise SpecError("reorder_depth must be >= 1")

    def label(self) -> str:
        target = ("+".join(self.target) if isinstance(self.target,
                                                      (list, tuple))
                  else str(self.target))
        return f"{self.kind}@{self.at:g}:{target}"


@dataclass
class Scenario:
    """The complete declarative description of one simulation run."""

    name: str = "scenario"
    topology: TopologySpec = field(default_factory=TopologySpec)
    layers: List[LayerSpec] = field(default_factory=list)
    dif_depth: int = 1          # used when ``layers`` is empty
    workloads: List[WorkloadSpec] = field(default_factory=list)
    faults: List[FaultSpec] = field(default_factory=list)
    duration: float = 10.0
    settle: float = 0.5         # quiet time between stack-up and epoch
    build_timeout: float = 120.0
    description: str = ""

    def validate(self, nodes: Optional[Sequence[str]] = None) -> None:
        """Structural validation (node-level checks need the built node
        list for builder families, hence the optional argument)."""
        self.topology.validate()
        if not self.workloads:
            raise SpecError("a scenario needs at least one workload")
        if self.duration <= 0:
            raise SpecError("duration must be positive")
        if not self.layers and self.dif_depth < 1:
            raise SpecError("dif_depth must be >= 1")
        for fault in self.faults:
            fault.validate()
        if nodes is not None:
            for workload in self.workloads:
                workload.validate(nodes)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-safe) form of this spec."""
        return asdict(self)

    @classmethod
    def from_dict(cls, value: Dict[str, Any]) -> "Scenario":
        """Rebuild a :class:`Scenario` from :meth:`to_dict` output."""
        value = dict(value)
        topology = value.get("topology") or {}
        if isinstance(topology, dict):
            topology = dict(topology)
            topology["links"] = [LinkSpec(**dict(link)) if isinstance(link, dict)
                                 else link
                                 for link in topology.get("links", [])]
            value["topology"] = TopologySpec(**topology)
        value["layers"] = [
            LayerSpec(**{**dict(layer),
                         "adjacencies": [tuple(adj) for adj in
                                         dict(layer).get("adjacencies", [])]})
            if isinstance(layer, dict) else layer
            for layer in value.get("layers", [])]
        value["workloads"] = [WorkloadSpec(**dict(w)) if isinstance(w, dict)
                              else w for w in value.get("workloads", [])]
        value["faults"] = [FaultSpec(**dict(f)) if isinstance(f, dict) else f
                           for f in value.get("faults", [])]
        return cls(**value)


def auto_layers(links: Sequence[Tuple[str, str, str]],
                depth: int) -> List[LayerSpec]:
    """Derive a full-span layer stack of the given depth.

    ``links`` are ``(a, b, link_name)`` triples — one per physical link,
    so parallel links each contribute their own rank-1 adjacency (extra
    points of attachment, not duplicates).  Layer 1 rides the shim of
    each named link; layer ``k`` repeats the node adjacency graph over
    layer ``k-1`` — the paper's "the same mechanisms recur at every rank"
    made literal.  Lower layers get faster keepalives (narrow scope,
    short feedback loop); each higher layer doubles the interval.
    """
    if depth < 1:
        raise SpecError("dif_depth must be >= 1")
    layers: List[LayerSpec] = []
    for rank in range(1, depth + 1):
        if rank == 1:
            adjacencies = [(a, b, f"link:{name}") for a, b, name in links]
        else:
            seen = set()
            adjacencies = []
            for a, b, _name in links:
                if (a, b) not in seen:   # one (N-1) flow per neighbor pair
                    seen.add((a, b))
                    adjacencies.append((a, b, layers[-1].name))
        keepalive = 0.2 * (2 ** (rank - 1))
        layers.append(LayerSpec(
            name=f"L{rank}" if depth > 1 else "net",
            adjacencies=adjacencies,
            policies={"keepalive_interval": keepalive, "dead_factor": 3,
                      "spf_delay": 0.02, "refresh_interval": None}))
    return layers
