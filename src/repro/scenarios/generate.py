"""Seeded random sampling of valid scenario specs.

Turns scenario coverage from O(hand-written files) into O(combinations):
``generate_specs(seed, count)`` yields ``count`` independent, *valid*
specs — topology family, DIF depth, workload mix, and fault schedule all
sampled — with the fault kinds cycled so any batch of ≥ ``len(FAULT_KINDS)``
specs exercises every injector (the network-condition windows included).  Sampling is pure (one ``random.Random`` per spec, no
global state), so the same seed always yields the same specs: the
determinism tests lean on this to fingerprint whole fuzz batches.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..sim.network import Network
from .runner import build_topology
from .spec import (FAULT_KINDS, FaultSpec, LinkSpec, Scenario, TopologySpec,
                   WorkloadSpec)

_FAMILIES = ("chain", "star", "tree", "grid", "random", "ring_of_stars")
_LINK_FAULTS = ("link-flap", "link-degrade", "congestion", "jitter-storm",
                "bandwidth-squeeze", "corruption-storm", "reorder-burst")


def _sample_topology(rng: random.Random) -> TopologySpec:
    family = rng.choice(_FAMILIES)
    if family == "chain":
        params = {"count": rng.randint(3, 6)}
    elif family == "star":
        params = {"leaves": rng.randint(3, 5)}
    elif family == "tree":
        params = {"depth": 2, "arity": 2}
    elif family == "grid":
        params = {"rows": 2, "cols": rng.randint(2, 3)}
    elif family == "ring_of_stars":
        params = {"regions": 3, "hosts": rng.randint(1, 2)}
    else:
        params = {"count": rng.randint(4, 6), "edge_factor": 1.4}
    return TopologySpec(family=family, params=params,
                        link={"capacity_bps": rng.choice([2e7, 5e7, 1e8]),
                              "delay": rng.choice([0.001, 0.003, 0.01])})


def _freeze_topology(topology: TopologySpec, seed: int):
    """Realize the sampled family once, off to the side, and freeze it
    into an ``explicit`` spec (nodes + links listed one by one).

    Frozen specs are self-contained: the runner's seed cannot change the
    structure a fault schedule targets (a ``random``-family graph would
    otherwise realize differently under a different master seed)."""
    network = Network(seed=seed)
    nodes = build_topology(topology, network)
    links = []
    for name, link in network.links.items():
        a, b = name.split("#")[0].split("--", 1)
        links.append(LinkSpec(a=a, b=b, capacity_bps=link.capacity_bps,
                              delay=link.delay))
    frozen = TopologySpec(family="explicit", nodes=list(nodes), links=links)
    return frozen, nodes, [
        f"{spec.a}--{spec.b}#{index}" for index, spec in enumerate(links)]


def _sample_workloads(rng: random.Random, nodes: Sequence[str],
                      duration: float) -> List[WorkloadSpec]:
    workloads = []
    count = rng.randint(1, 2)
    for _ in range(count):
        client, server = rng.sample(list(nodes), 2)
        kind = rng.choice(("echo", "echo", "transfer", "stream"))
        if kind == "echo":
            workloads.append(WorkloadSpec(
                kind="echo", client=client, server=server, start=1.0,
                period=0.05, count=min(80, int((duration - 1.5) / 0.05)),
                size=rng.choice([120, 200])))
        elif kind == "transfer":
            workloads.append(WorkloadSpec(
                kind="transfer", client=client, server=server, start=1.0,
                bytes=rng.choice([20_000, 40_000])))
        else:
            workloads.append(WorkloadSpec(
                kind="stream", client=client, server=server, start=1.0,
                period=0.04, size=300))
    return workloads


def _sample_fault(rng: random.Random, kind: str, nodes: Sequence[str],
                  links: Sequence[str],
                  endpoints: Sequence[str]) -> FaultSpec:
    at = round(rng.uniform(1.5, 3.0), 3)
    duration = round(rng.uniform(0.6, 1.5), 3)
    if kind == "node-crash":
        candidates = [n for n in nodes if n not in endpoints]
        if not candidates:
            kind = "link-flap"   # fall back: every node hosts an endpoint
        else:
            return FaultSpec(kind="node-crash",
                             target=rng.choice(candidates),
                             at=at, duration=duration + 0.5)
    if kind == "partition":
        size = rng.randint(1, max(1, min(2, len(nodes) - 1)))
        group = rng.sample(list(nodes), size)
        return FaultSpec(kind="partition", target=group, at=at,
                         duration=duration)
    target = rng.choice(list(links))
    if kind == "jitter-storm":
        return FaultSpec(kind="jitter-storm", target=target, at=at,
                         duration=duration,
                         jitter_s=rng.choice([0.002, 0.005, 0.01]),
                         jitter_model=rng.choice(["uniform", "normal"]))
    if kind == "bandwidth-squeeze":
        return FaultSpec(kind="bandwidth-squeeze", target=target, at=at,
                         duration=duration,
                         rate_bps=rng.choice([1e6, 2e6, 5e6]),
                         burst_bytes=rng.choice([3000.0, 8000.0]))
    if kind == "corruption-storm":
        return FaultSpec(kind="corruption-storm", target=target, at=at,
                         duration=duration,
                         corrupt_prob=round(rng.uniform(0.05, 0.25), 3),
                         max_flips=rng.randint(1, 3))
    if kind == "reorder-burst":
        return FaultSpec(kind="reorder-burst", target=target, at=at,
                         duration=duration,
                         reorder_prob=round(rng.uniform(0.1, 0.35), 3),
                         reorder_depth=rng.randint(2, 4))
    if kind == "link-degrade":
        return FaultSpec(kind="link-degrade", target=target, at=at,
                         duration=duration,
                         peak_loss=round(rng.uniform(0.2, 0.6), 3),
                         delay_factor=rng.choice([2.0, 4.0]), steps=3)
    if kind == "congestion":
        return FaultSpec(kind="congestion", target=target, at=at,
                         duration=duration,
                         capacity_factor=rng.choice([4.0, 8.0, 16.0]))
    return FaultSpec(kind="link-flap", target=target, at=at,
                     duration=duration,
                     flaps=rng.choice([1, 1, 2]), period=duration + 1.0)


def generate_scenario(seed: int, index: int = 0) -> Scenario:
    """Sample one valid scenario.  Pure in (seed, index)."""
    rng = random.Random(seed * 1_000_003 + index)
    family = _sample_topology(rng)
    topology, nodes, links = _freeze_topology(family,
                                              seed=rng.randrange(2 ** 31))
    duration = round(rng.uniform(6.0, 8.0), 3)
    workloads = _sample_workloads(rng, nodes, duration)
    endpoints = [w.client for w in workloads] + [w.server for w in workloads]
    # first fault kind cycles deterministically with the index so a batch
    # of >= len(FAULT_KINDS) specs covers every injector
    kinds = [FAULT_KINDS[index % len(FAULT_KINDS)]]
    for _ in range(rng.randint(0, 2)):
        kinds.append(rng.choice(FAULT_KINDS))
    faults = [_sample_fault(rng, kind, nodes, links, endpoints)
              for kind in kinds]
    depth = rng.choice([1, 1, 2])
    scenario = Scenario(
        name=f"gen-{seed}-{index}",
        topology=topology,
        dif_depth=depth,
        workloads=workloads,
        faults=faults,
        duration=duration,
        description=(f"generated: {family.family} depth={depth} "
                     f"faults={[f.kind for f in faults]}"))
    scenario.validate(nodes)
    return scenario


def generate_specs(seed: int, count: int = 20) -> List[Scenario]:
    """A batch of independent specs; ≥ ``len(FAULT_KINDS)`` of them cover
    every injector."""
    return [generate_scenario(seed, index) for index in range(count)]
