"""Canned scenario specs.

Two families live here:

* re-expressions of the bespoke E3/E4/E5 experiment setups as declarative
  specs — the experiment modules now *build their stacks from these* and
  keep only their measurement logic;
* composite demonstrations (``fault-storm``) that exercise every injector
  in one run, used by the CLI, the S1 benchmark, and the examples.

Every entry in :data:`CANNED` is a zero-argument callable returning a
fresh :class:`~repro.scenarios.spec.Scenario`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .spec import (SHIM, FaultSpec, LayerSpec, LinkSpec, Scenario,
                   TopologySpec, WorkloadSpec)

# ----------------------------------------------------------------------
# E3 — Fig 3/§6.2: a wireless-scope DIF under the internet DIF
# ----------------------------------------------------------------------
E3_WIRED_BPS = 5e7
E3_WIRELESS_BPS = 2e7

_E3_INTERNET_POLICIES = {
    "keepalive_interval": 2.0, "dead_factor": 8,
    "efcp_overrides": {"rto_min": 0.2, "rto_initial": 0.3,
                       "initial_credit": 64},
    "lower_flow_cube": "reliable",
}
_E3_WIRELESS_POLICIES = {
    "keepalive_interval": 2.0, "dead_factor": 8,
    "efcp_overrides": {"rto_min": 0.005, "rto_initial": 0.03,
                       "rto_max": 0.2, "initial_credit": 128},
}


def e3_scenario(config: str = "scoped", wired_delay: float = 0.06) -> Scenario:
    """The E3 plant: ``sender — (wired) — border — (lossy radio) — mobile``,
    one wide-scope DIF, optionally a 2-member wireless DIF under its last
    hop.  The experiment injects loss through the radio link's loss knob;
    the standalone scenario carries a link-degrade fault instead."""
    if config not in ("e2e", "scoped"):
        raise ValueError(f"unknown configuration {config!r}")
    topology = TopologySpec(
        family="explicit",
        nodes=["sender", "border", "mobile"],
        links=[LinkSpec("sender", "border", capacity_bps=E3_WIRED_BPS,
                        delay=wired_delay),
               LinkSpec("border", "mobile", capacity_bps=E3_WIRELESS_BPS,
                        delay=0.004, loss=0.0)])
    layers: List[LayerSpec] = []
    mobile_lower = SHIM
    if config == "scoped":
        layers.append(LayerSpec(
            name="wifi", policies=dict(_E3_WIRELESS_POLICIES),
            adjacencies=[("border", "mobile", SHIM)]))
        mobile_lower = "wifi"
    layers.append(LayerSpec(
        name="internet", policies=dict(_E3_INTERNET_POLICIES),
        adjacencies=[("sender", "border", SHIM),
                     ("border", "mobile", mobile_lower)]))
    return Scenario(
        name=f"e3-{config}",
        description="Fig 3/§6.2: wireless-scope DIF vs end-to-end recovery",
        topology=topology, layers=layers, build_timeout=60,
        workloads=[WorkloadSpec(kind="transfer", client="sender",
                                server="mobile", bytes=120_000, start=1.0,
                                qos="reliable", dif="internet")],
        faults=[FaultSpec(kind="link-degrade", target="border--mobile",
                          at=1.1, duration=2.0, peak_loss=0.3,
                          delay_factor=2.0)],
        duration=12.0)


# ----------------------------------------------------------------------
# E4 — Fig 4/§6.3: multihoming failover below a surviving flow
# ----------------------------------------------------------------------
def e4_scenario(keepalive_interval: float = 0.2) -> Scenario:
    """A host with two attachments to its provider; the primary dies."""
    topology = TopologySpec(
        family="explicit",
        nodes=["host", "provider"],
        links=[LinkSpec("host", "provider", name="uplink#a", delay=0.005),
               LinkSpec("host", "provider", name="uplink#b", delay=0.005)])
    layers = [LayerSpec(
        name="net",
        policies={"keepalive_interval": keepalive_interval, "dead_factor": 3},
        adjacencies=[("host", "provider", "link:uplink#a"),
                     ("host", "provider", "link:uplink#b")])]
    return Scenario(
        name="e4-multihoming",
        description="Fig 4/§6.3: PoA failover vs TCP/SCTP",
        topology=topology, layers=layers, build_timeout=30,
        workloads=[WorkloadSpec(kind="echo", client="host",
                                server="provider", period=0.05, count=120,
                                size=200, start=1.0)],
        faults=[FaultSpec(kind="link-flap", target="uplink#a", at=2.0,
                          duration=None)],
        duration=10.0)


# ----------------------------------------------------------------------
# E5 — Fig 5/§6.4: mobility plant (three DIFs of different rank)
# ----------------------------------------------------------------------
_E5_REGION_POLICIES = {"keepalive_interval": 0.1, "dead_factor": 3,
                       "spf_delay": 0.01, "refresh_interval": None}
_E5_METRO_POLICIES = {"keepalive_interval": 0.4, "dead_factor": 3,
                      "spf_delay": 0.01, "refresh_interval": None}


def e5_scenario() -> Scenario:
    """Fig 5's physical plant and three-DIF stack.  The experiment drives
    the actual moves (enroll/attach orchestration); the standalone
    scenario instead flaps the mobile's current radio."""
    topology = TopologySpec(
        family="explicit",
        nodes=["m", "bs1", "bs2", "bs3", "bs4", "r1", "r2", "b", "c"],
        links=([LinkSpec("m", bs, name=f"radio:{bs}", capacity_bps=2e7,
                         delay=0.003) for bs in ("bs1", "bs2", "bs3", "bs4")]
               + [LinkSpec("bs1", "r1", name="bs1--r1", delay=0.002),
                  LinkSpec("bs2", "r1", name="bs2--r1", delay=0.002),
                  LinkSpec("bs3", "r2", name="bs3--r2", delay=0.002),
                  LinkSpec("bs4", "r2", name="bs4--r2", delay=0.002),
                  LinkSpec("r1", "b", name="r1--b", delay=0.01),
                  LinkSpec("r2", "b", name="r2--b", delay=0.01),
                  LinkSpec("c", "b", name="c--b", delay=0.01)]))
    layers = [
        LayerSpec(name="region1", policies=dict(_E5_REGION_POLICIES),
                  adjacencies=[("bs1", "r1", "link:bs1--r1"),
                               ("bs2", "r1", "link:bs2--r1"),
                               ("m", "bs1", "link:radio:bs1")]),
        LayerSpec(name="region2", policies=dict(_E5_REGION_POLICIES),
                  adjacencies=[("bs3", "r2", "link:bs3--r2"),
                               ("bs4", "r2", "link:bs4--r2")]),
        LayerSpec(name="metro", policies=dict(_E5_METRO_POLICIES),
                  adjacencies=[("r1", "b", "link:r1--b"),
                               ("r2", "b", "link:r2--b"),
                               ("c", "b", "link:c--b"),
                               ("m", "r1", "region1")]),
    ]
    return Scenario(
        name="e5-mobility",
        description="Fig 5/§6.4: three-DIF mobility plant",
        topology=topology, layers=layers, build_timeout=60,
        workloads=[WorkloadSpec(kind="echo", client="c", server="m",
                                period=0.05, count=120, size=120,
                                start=1.0, dif="metro")],
        faults=[FaultSpec(kind="link-flap", target="radio:bs1", at=2.5,
                          duration=2.0)],
        duration=10.0)


# ----------------------------------------------------------------------
# Composite: every injector in one run
# ----------------------------------------------------------------------
def fault_storm() -> Scenario:
    """All five fault injectors against a 2×3 grid carrying an echo probe
    and a bulk transfer corner to corner."""
    return Scenario(
        name="fault-storm",
        description="all five injectors on a 2x3 grid, echo + transfer",
        topology=TopologySpec(family="grid",
                              params={"rows": 2, "cols": 3},
                              link={"capacity_bps": 5e7, "delay": 0.002}),
        dif_depth=1,
        workloads=[
            WorkloadSpec(kind="echo", client="g0_0", server="g1_2",
                         period=0.05, count=160, size=200, start=1.0),
            WorkloadSpec(kind="transfer", client="g0_0", server="g1_2",
                         bytes=60_000, start=1.0),
        ],
        faults=[
            FaultSpec(kind="link-flap", target="g0_0--g0_1", at=1.5,
                      duration=0.8),
            FaultSpec(kind="link-degrade", target="g0_1--g0_2", at=3.0,
                      duration=1.2, peak_loss=0.4, delay_factor=3.0),
            FaultSpec(kind="congestion", target="g1_1--g1_2", at=4.5,
                      duration=1.0, capacity_factor=8.0),
            FaultSpec(kind="partition", target=["g0_2", "g1_2"], at=6.0,
                      duration=1.0),
            FaultSpec(kind="node-crash", target="g1_1", at=8.0,
                      duration=1.2),
        ],
        duration=12.0)


# ----------------------------------------------------------------------
# Scale-tier family: regional stars over a backbone ring (E6's plant)
# ----------------------------------------------------------------------
def ring_of_stars(regions: int = 4, hosts: int = 3) -> Scenario:
    """Regional access stars on a redundant backbone ring.  The echo probe
    crosses the ring between opposite regions while a backbone link flaps —
    the ring's redundancy should reroute instead of partitioning.  Larger
    instances of the same family drive the E6 scale tier."""
    return Scenario(
        name=f"ring-of-stars-{regions}x{hosts}",
        description=f"{regions} regional stars on a backbone ring, "
                    f"backbone flap rerouted",
        topology=TopologySpec(family="ring_of_stars",
                              params={"regions": regions, "hosts": hosts},
                              link={"capacity_bps": 5e7, "delay": 0.002}),
        dif_depth=1,
        workloads=[
            WorkloadSpec(kind="echo", client="s0_h0",
                         server=f"s{regions // 2}_h0",
                         period=0.05, count=120, size=200, start=1.0),
            WorkloadSpec(kind="transfer", client="s0_h1",
                         server=f"s{regions // 2}_h1",
                         bytes=40_000, start=1.0),
        ],
        faults=[FaultSpec(kind="link-flap", target="s0--s1", at=2.5,
                          duration=1.5)],
        duration=10.0)


# ----------------------------------------------------------------------
# Network-condition families: jitter / shaping / corruption / reordering
# ----------------------------------------------------------------------
def flash_crowd() -> Scenario:
    """A flash crowd against one origin: the star's leaves open staggered
    echo waves on the hub while a bulk pull rides along; at the peak the
    first access link gets bandwidth-squeezed (a policer saturating) and
    a second one turns jittery."""
    return Scenario(
        name="flash-crowd",
        description="staggered echo waves on a star; access links "
                    "squeezed + jittered at the peak",
        topology=TopologySpec(family="star", params={"leaves": 4},
                              link={"capacity_bps": 2e7, "delay": 0.003}),
        dif_depth=1,
        workloads=[WorkloadSpec(kind="echo", client=f"leaf{i}",
                                server="hub", period=0.04, count=100,
                                size=200, start=1.0 + 0.4 * i)
                   for i in range(4)]
        + [WorkloadSpec(kind="transfer", client="leaf0", server="hub",
                        bytes=40_000, start=1.2)],
        faults=[
            FaultSpec(kind="bandwidth-squeeze", target="hub--leaf0",
                      at=2.0, duration=2.5, rate_bps=2e6,
                      burst_bytes=4000.0),
            FaultSpec(kind="jitter-storm", target="hub--leaf1", at=2.5,
                      duration=2.0, jitter_s=0.008, jitter_model="normal"),
        ],
        duration=10.0)


def diurnal_load() -> Scenario:
    """A diurnal utilization curve compressed into one run: off-peak,
    ramp, midday peak, ramp-down — expressed as bandwidth-squeeze
    windows of increasing severity on a chain's middle hop, with a
    jitter storm riding the peak."""
    return Scenario(
        name="diurnal-load",
        description="squeeze windows tracing a diurnal load curve on a "
                    "chain backbone; jitter storm at the peak",
        topology=TopologySpec(family="chain", params={"count": 4},
                              link={"capacity_bps": 5e7, "delay": 0.002}),
        dif_depth=1,
        workloads=[
            WorkloadSpec(kind="echo", client="n0", server="n3",
                         period=0.05, count=150, size=200, start=1.0),
            WorkloadSpec(kind="transfer", client="n0", server="n3",
                         bytes=80_000, start=1.0),
            WorkloadSpec(kind="stream", client="n3", server="n0",
                         period=0.04, size=300, start=1.0),
        ],
        faults=[
            FaultSpec(kind="bandwidth-squeeze", target="n1--n2", at=1.5,
                      duration=1.5, rate_bps=8e6),           # morning ramp
            FaultSpec(kind="bandwidth-squeeze", target="n1--n2", at=3.5,
                      duration=2.0, rate_bps=2e6,
                      burst_bytes=6000.0),                   # midday peak
            FaultSpec(kind="jitter-storm", target="n1--n2", at=4.0,
                      duration=1.0, jitter_s=0.004),
            FaultSpec(kind="bandwidth-squeeze", target="n1--n2", at=6.5,
                      duration=1.5, rate_bps=8e6),           # evening tail
        ],
        duration=10.0)


def rolling_degradation() -> Scenario:
    """Regional trouble rolling around a backbone ring: each backbone
    link in turn degrades (loss + delay ramp) with a jitter storm on
    top, while cross-region probes keep running — sub-threshold trouble
    moving through the plant, never a clean outage."""
    degrade_windows = [("s0--s1", 1.5), ("s1--s2", 3.5), ("s2--s0", 5.5)]
    return Scenario(
        name="rolling-degradation",
        description="loss/delay/jitter degradation rolling across the "
                    "backbone ring, region by region",
        topology=TopologySpec(family="ring_of_stars",
                              params={"regions": 3, "hosts": 2},
                              link={"capacity_bps": 5e7, "delay": 0.002}),
        dif_depth=1,
        workloads=[
            WorkloadSpec(kind="echo", client="s0_h0", server="s1_h0",
                         period=0.05, count=140, size=200, start=1.0),
            WorkloadSpec(kind="echo", client="s1_h1", server="s2_h1",
                         period=0.05, count=140, size=200, start=1.0),
            WorkloadSpec(kind="transfer", client="s0_h1", server="s2_h0",
                         bytes=40_000, start=1.0),
        ],
        faults=[spec
                for target, at in degrade_windows
                for spec in (
                    FaultSpec(kind="link-degrade", target=target, at=at,
                              duration=1.5, peak_loss=0.3,
                              delay_factor=2.0, steps=3),
                    FaultSpec(kind="jitter-storm", target=target, at=at,
                              duration=1.5, jitter_s=0.005),
                )],
        duration=9.0)


def corruption_storm() -> Scenario:
    """Bit errors and reordering instead of outages: two links flip
    payload bytes for a while and a third swaps in-flight frames.  Every
    damaged frame must be detected and counted at the receiving stack —
    reliable flows recover by retransmission, never by delivering
    garbage."""
    return Scenario(
        name="corruption-storm",
        description="payload corruption on two grid links + a reorder "
                    "burst on a third; echo + transfer must recover",
        topology=TopologySpec(family="grid",
                              params={"rows": 2, "cols": 3},
                              link={"capacity_bps": 5e7, "delay": 0.002}),
        dif_depth=1,
        workloads=[
            WorkloadSpec(kind="echo", client="g0_0", server="g1_2",
                         period=0.05, count=140, size=200, start=1.0),
            WorkloadSpec(kind="transfer", client="g0_0", server="g1_2",
                         bytes=60_000, start=1.0),
        ],
        faults=[
            FaultSpec(kind="corruption-storm", target="g0_0--g0_1",
                      at=1.5, duration=2.0, corrupt_prob=0.15),
            FaultSpec(kind="corruption-storm", target="g1_1--g1_2",
                      at=3.0, duration=2.0, corrupt_prob=0.1,
                      max_flips=2),
            FaultSpec(kind="reorder-burst", target="g0_1--g0_2", at=2.0,
                      duration=2.5, reorder_prob=0.25, reorder_depth=3),
        ],
        duration=10.0)


CANNED: Dict[str, Callable[[], Scenario]] = {
    "fault-storm": fault_storm,
    "e3-scoped": lambda: e3_scenario("scoped"),
    "e3-e2e": lambda: e3_scenario("e2e"),
    "e4-multihoming": e4_scenario,
    "e5-mobility": e5_scenario,
    "ring-of-stars": ring_of_stars,
    "flash-crowd": flash_crowd,
    "diurnal-load": diurnal_load,
    "rolling-degradation": rolling_degradation,
    "corruption-storm": corruption_storm,
}


def canned(name: str) -> Scenario:
    """Look up a canned spec by name."""
    try:
        return CANNED[name]()
    except KeyError:
        raise KeyError(f"unknown canned scenario {name!r}; "
                       f"known: {', '.join(sorted(CANNED))}")
