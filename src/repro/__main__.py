"""Command-line entry point: run examples, experiments, and scenarios.

Usage::

    python -m repro                 # list what is available
    python -m repro e1              # run one experiment, print its table
    python -m repro e3 e4           # several in sequence
    python -m repro all             # the whole battery
    python -m repro all --jobs 4    # ... swept over a 4-worker pool

    python -m repro scenarios list
    python -m repro scenarios run [--seed N] [--stack rina|ip|both] \
        [--jobs N] fault-storm spec.json gen:3

Every experiment exposes its configuration list as data
(``iter_jobs()``), so the battery is a flat job list dispatched over a
``multiprocessing`` pool (``--jobs N``, or ``REPRO_JOBS``, default
``os.cpu_count()``; ``--jobs 1`` is the in-process serial path).  Rows
merge back **in job order, not completion order** — output is
bit-for-bit independent of scheduling, which ``tests/test_sweeps.py``
enforces.

``scenarios run`` executes each spec on the requested stacks **twice**
and verifies the two runs produce byte-identical traces (the determinism
contract); the exit code is non-zero if any run diverges.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Callable, Dict, List, Optional, Tuple

from .experiments.common import format_table
from .sweeps import Job, SweepRunner, default_worker_count, parse_worker_count


def _e1_jobs() -> List[Job]:
    from .experiments.e1_two_system import iter_jobs
    return iter_jobs()


def _e2_jobs() -> List[Job]:
    from .experiments.e2_relay import iter_jobs
    return iter_jobs()


def _e3_jobs() -> List[Job]:
    from .experiments.e3_scoped_recovery import iter_jobs
    return iter_jobs()


def _e4_jobs() -> List[Job]:
    from .experiments.e4_multihoming import iter_jobs
    return iter_jobs()


def _e5_jobs() -> List[Job]:
    from .experiments.e5_mobility import iter_jobs
    return iter_jobs()


def _e6_jobs() -> List[Job]:
    from .experiments.e6_scalability import iter_jobs
    return iter_jobs()


def _e6_scale_jobs() -> List[Job]:
    from .experiments.e6_scalability import iter_scale_jobs
    tiers = os.environ.get("REPRO_E6_SCALE_TIERS", "small,medium,large")
    return iter_scale_jobs([t.strip() for t in tiers.split(",") if t.strip()])


def _e7_jobs() -> List[Job]:
    from .experiments.e7_security import iter_jobs
    return iter_jobs()


def _e8_jobs() -> List[Job]:
    from .experiments.e8_utilization import iter_jobs
    return iter_jobs()


def _e9_jobs() -> List[Job]:
    from .experiments.e9_private_addresses import iter_jobs
    return iter_jobs()


def _a1_jobs() -> List[Job]:
    from .experiments.a1_addressing import iter_jobs
    return iter_jobs()


def _a2_jobs() -> List[Job]:
    from .experiments.a2_efcp_policies import iter_jobs
    return iter_jobs()


EXPERIMENTS: Dict[str, tuple] = {
    "e1": ("Fig 1: two-system IPC under loss", _e1_jobs),
    "e2": ("Fig 2: relaying through dedicated systems", _e2_jobs),
    "e3": ("Fig 3/§6.2: wireless-scope DIF vs end-to-end", _e3_jobs),
    "e4": ("Fig 4/§6.3: multihoming failover vs TCP/SCTP", _e4_jobs),
    "e5": ("Fig 5/§6.4: mobility vs Mobile-IP (+A4 ablation)", _e5_jobs),
    "e6": ("§6.5: flat vs recursive routing state", _e6_jobs),
    "e6-scale": ("§6.5 scale tier: 56/211/1,021-system builds, "
                 "wall-clock + events/sec (REPRO_E6_SCALE_TIERS; "
                 "--shards N adds the sharded flood tier, --stateful "
                 "shards the control plane itself, --balance weighs "
                 "the partition)",
                 _e6_scale_jobs),
    "e7": ("§6.1: attack surface", _e7_jobs),
    "e8": ("§6.6: utilization before QoS violation", _e8_jobs),
    "e9": ("§6.5/§6.7: private addressing without NAT", _e9_jobs),
    "a1": ("ablation: addressing policies", _a1_jobs),
    "a2": ("ablation: EFCP policies", _a2_jobs),
}


def _extract_int_flag(args: List[str], flag: str, noun: str
                      ) -> Tuple[List[str], Optional[int], Optional[str]]:
    """Pull ``<flag> N`` (or ``<flag>=N``) out of an argument list.

    Returns (remaining args, value or None, error message or None).
    The flag may appear anywhere; validation rejects 0, negative
    counts, and non-integers, naming the quantity ``noun`` in errors.
    """
    remaining: List[str] = []
    value: Optional[int] = None
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == flag:
            index += 1
            if index >= len(args):
                return remaining, None, f"{flag} requires a value"
            try:
                value = parse_worker_count(args[index], noun=noun)
            except ValueError as exc:
                return remaining, None, f"{flag}: {exc}"
        elif arg.startswith(flag + "="):
            try:
                value = parse_worker_count(arg[len(flag) + 1:], noun=noun)
            except ValueError as exc:
                return remaining, None, f"{flag}: {exc}"
        else:
            remaining.append(arg)
        index += 1
    return remaining, value, None


def _extract_worker_count(args: List[str]
                          ) -> Tuple[List[str], Optional[int], Optional[str]]:
    """Pull ``--jobs N`` out of an argument list."""
    return _extract_int_flag(args, "--jobs", "worker count")


def _extract_shard_count(args: List[str]
                         ) -> Tuple[List[str], Optional[int], Optional[str]]:
    """Pull ``--shards N`` out of an argument list."""
    return _extract_int_flag(args, "--shards", "shard count")


def _extract_bool_flag(args: List[str], flag: str) -> Tuple[List[str], bool]:
    """Pull a valueless ``--flag`` out of an argument list."""
    remaining = [arg for arg in args if arg != flag]
    return remaining, len(remaining) != len(args)


#: Mirrors ``repro.shard.PROTOCOLS`` / ``TRANSPORT_NAMES`` without
#: importing the shard package on every CLI startup; the CLI test suite
#: pins the mirror against the real tuples.
PROTOCOL_CHOICES = ("per-channel", "global-min", "async-grants")
TRANSPORT_CHOICES = ("object", "packed", "ring")


def _extract_choice_flag(args: List[str], flag: str, choices: Tuple[str, ...]
                         ) -> Tuple[List[str], Optional[str], Optional[str]]:
    """Pull ``<flag> NAME`` (or ``<flag>=NAME``) out of an argument
    list, validating NAME against ``choices``."""
    remaining: List[str] = []
    value: Optional[str] = None
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == flag:
            index += 1
            if index >= len(args):
                return remaining, None, f"{flag} requires a value"
            value = args[index]
        elif arg.startswith(flag + "="):
            value = arg[len(flag) + 1:]
        else:
            remaining.append(arg)
        index += 1
    if value is not None and value not in choices:
        return remaining, None, (f"{flag}: unknown value {value!r}; "
                                 f"known: {', '.join(choices)}")
    return remaining, value, None


def _sharded_scale_main(shards: int, workers_flag: Optional[int],
                        stateful: bool, balance: bool,
                        protocol: Optional[str] = None,
                        transport: Optional[str] = None) -> int:
    """``repro e6-scale --shards N [--stateful] [--balance]
    [--protocol P] [--transport T]``: the sharded tiers.

    Default is the frame-level flood fan-out; ``--stateful`` runs the
    flat configuration's *control plane* (enrollment + RIEP + LSA
    flooding) region-sharded instead.  ``--balance`` swaps the modulo
    region spread for the cost-weighted partitioner.  ``--protocol``
    selects the round rule (per-channel / global-min / async-grants)
    and ``--transport`` the relay wire format (object / packed / ring)
    for the stateful tier.  Each job is one whole sharded run whose
    coordinator spawns its own per-region workers, so the sweep itself
    defaults to serial dispatch (``--jobs`` still overrides; inside a
    pool worker the coordinator falls back to in-process rounds).
    """
    from .experiments.e6_scalability import iter_flood_jobs, iter_stateful_jobs
    kwargs = {}
    if stateful:
        tiers = os.environ.get("REPRO_E6_STATEFUL_TIERS", "small,medium")
        iter_fn, tier_env, what = (iter_stateful_jobs,
                                   "REPRO_E6_STATEFUL_TIERS",
                                   "flat control plane (stateful)")
        if protocol is not None:
            kwargs["protocol"] = protocol
        if transport is not None:
            kwargs["transport"] = transport
    else:
        tiers = os.environ.get("REPRO_E6_SCALE_TIERS", "small,medium,large")
        iter_fn, tier_env, what = (iter_flood_jobs, "REPRO_E6_SCALE_TIERS",
                                   "flat flooding fan-out")
    try:
        jobs = iter_fn([t.strip() for t in tiers.split(",") if t.strip()],
                       shards=shards, balance=balance, **kwargs)
    except ValueError as exc:
        print(f"{tier_env}: {exc}", file=sys.stderr)
        return 2
    runner, error = _make_runner(1 if workers_flag is None else workers_flag)
    if runner is None:
        print(error, file=sys.stderr)
        return 2
    rows = runner.run(jobs)
    suffix = ", balanced partition" if balance else ""
    if protocol:
        suffix += f", {protocol} rounds"
    if transport:
        suffix += f", {transport} transport"
    print(format_table(
        rows, title=f"e6-shard: {what}, unsharded vs "
                    f"{shards}-way region shards{suffix}"))
    return 0


def _resolve_workers(flag_value: Optional[int]) -> int:
    """The effective worker count: ``--jobs`` beats ``REPRO_JOBS`` beats
    ``os.cpu_count()`` (raises :class:`ValueError` on a bad env value).

    Called only on the paths that actually dispatch jobs — a bad
    ``REPRO_JOBS`` must not break ``repro`` (help) or ``scenarios
    list``, which never touch a pool.
    """
    if flag_value is not None:
        return flag_value
    return default_worker_count()


def _make_runner(workers_flag: Optional[int]
                 ) -> Tuple[Optional[SweepRunner], Optional[str]]:
    """Build the sweep runner, or report the misconfigured knob."""
    try:
        workers = _resolve_workers(workers_flag)
    except ValueError as exc:
        return None, f"REPRO_JOBS: {exc}"
    try:
        return SweepRunner(workers=workers), None
    except ValueError as exc:
        return None, f"REPRO_START_METHOD: {exc}"


def _load_scenarios(names: List[str], seed: int) -> List:
    """Resolve CLI scenario references: canned names, ``.json`` spec
    files, or ``gen:<count>`` batches from the seeded generator."""
    from .scenarios import Scenario, canned, generate_specs
    scenarios = []
    for name in names:
        if name.startswith("gen:"):
            scenarios.extend(generate_specs(seed, int(name[len("gen:"):])))
        elif name.endswith(".json"):
            with open(name) as handle:
                spec = Scenario.from_dict(json.load(handle))
            spec.validate()   # inside the caller's try: a structurally
            scenarios.append(spec)   # bad spec is a load error, not a crash
        else:
            scenarios.append(canned(name))
    return scenarios


def scenarios_main(argv: List[str],
                   workers_flag: Optional[int] = None) -> int:
    """The ``scenarios`` subcommand (``workers_flag`` = parsed ``--jobs``
    value, or None to fall back to ``REPRO_JOBS`` / cpu count)."""
    from .scenarios import CANNED
    if not argv or argv[0] == "list":
        print("canned scenarios:")
        for name in sorted(CANNED):
            print(f"  {name:16s} {CANNED[name]().description}")
        print("\nalso accepted by `run`: a spec .json file, gen:<count>")
        return 0
    if argv[0] != "run":
        print(f"unknown scenarios subcommand {argv[0]!r} (list|run)",
              file=sys.stderr)
        return 2
    args = argv[1:]
    seed, stacks, names = 0, ("rina", "ip"), []
    index = 0
    while index < len(args):
        arg = args[index]
        if arg in ("--seed", "--stack"):
            index += 1
            if index >= len(args):
                print(f"{arg} requires a value", file=sys.stderr)
                return 2
            value = args[index]
            if arg == "--seed":
                try:
                    seed = int(value)
                except ValueError:
                    print(f"--seed requires an integer, got {value!r}",
                          file=sys.stderr)
                    return 2
            else:
                if value not in ("rina", "ip", "both"):
                    print(f"unknown stack {value!r} (rina|ip|both)",
                          file=sys.stderr)
                    return 2
                stacks = ("rina", "ip") if value == "both" else (value,)
        else:
            names.append(arg)
        index += 1
    if not names:
        print("scenarios run: no spec given (canned name, .json, gen:N)",
              file=sys.stderr)
        return 2
    try:
        scenarios = _load_scenarios(names, seed)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except (OSError, ValueError, TypeError) as exc:
        print(f"cannot load scenario spec: {exc}", file=sys.stderr)
        return 2
    runner, error = _make_runner(workers_flag)
    if runner is None:
        print(error, file=sys.stderr)
        return 2
    from .scenarios import determinism_jobs
    rows = runner.run(determinism_jobs(scenarios, seed=seed, stacks=stacks))
    divergent = sum(1 for row in rows if not row["deterministic"])
    print(format_table(rows,
                       columns=["scenario", "stack", "echo", "goodput_mbps",
                                "worst_outage_s", "faults", "deterministic"],
                       title=f"scenarios (seed={seed}, two runs each, "
                             f"jobs={runner.workers})"))
    if divergent:
        print(f"\nDETERMINISM VIOLATION in {divergent} run(s)",
              file=sys.stderr)
        return 1
    print("\nall runs byte-identical across repeats")
    return 0


def main(argv: List[str]) -> int:
    """Entry point; returns a process exit code."""
    argv, workers_flag, error = _extract_worker_count(argv)
    if error:
        print(error, file=sys.stderr)
        return 2
    argv, shards_flag, error = _extract_shard_count(argv)
    if error:
        print(error, file=sys.stderr)
        return 2
    argv, stateful_flag = _extract_bool_flag(argv, "--stateful")
    argv, balance_flag = _extract_bool_flag(argv, "--balance")
    argv, protocol_flag, error = _extract_choice_flag(
        argv, "--protocol", PROTOCOL_CHOICES)
    if error:
        print(error, file=sys.stderr)
        return 2
    argv, transport_flag, error = _extract_choice_flag(
        argv, "--transport", TRANSPORT_CHOICES)
    if error:
        print(error, file=sys.stderr)
        return 2
    if (protocol_flag or transport_flag) and not stateful_flag:
        print("--protocol/--transport apply to `repro e6-scale --shards N "
              "--stateful` only (the flood tier always uses the default "
              "round rule)", file=sys.stderr)
        return 2
    if shards_flag is not None:
        if argv != ["e6-scale"]:
            print("--shards applies to `repro e6-scale` only",
                  file=sys.stderr)
            return 2
        if shards_flag == 1 and (stateful_flag or balance_flag):
            # mirroring the --jobs validation: a contradictory flag
            # combination is an error, not a silently degenerate run —
            # --shards 1 is the unsharded reference row, which neither
            # shards the control plane nor has a partition to weigh
            flags = "/".join(flag for flag, on in
                             (("--stateful", stateful_flag),
                              ("--balance", balance_flag)) if on)
            print(f"{flags} contradicts --shards 1: the unsharded "
                  f"reference row has no partition; use --shards 2 or "
                  f"more", file=sys.stderr)
            return 2
        return _sharded_scale_main(shards_flag, workers_flag,
                                   stateful_flag, balance_flag,
                                   protocol=protocol_flag,
                                   transport=transport_flag)
    if stateful_flag or balance_flag:
        print("--stateful/--balance apply to `repro e6-scale --shards N` "
              "only", file=sys.stderr)
        return 2
    if not argv:
        print("repro — 'Networking is IPC' (Day/Matta/Mattar 2008), "
              "executable reproduction\n")
        print("usage: python -m repro <experiment> [...] | all [--jobs N]\n"
              "       python -m repro e6-scale --shards N "
              "[--stateful] [--balance]\n"
              "                [--protocol per-channel|global-min|"
              "async-grants] [--transport object|packed|ring]\n"
              "       python -m repro scenarios list|run ...\n"
              "       python -m repro gateway serve|load|conformance ...\n")
        for key, (title, _jobs_fn) in EXPERIMENTS.items():
            print(f"  {key}   {title}")
        print("\n(see also: pytest benchmarks/ --benchmark-only, examples/)")
        return 0
    if argv[0] == "scenarios":
        return scenarios_main(argv[1:], workers_flag=workers_flag)
    if argv[0] == "gateway":
        from .gateway.cli import gateway_main
        return gateway_main(argv[1:])
    wanted = list(EXPERIMENTS) if argv == ["all"] else argv
    unknown = [key for key in wanted if key not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    runner, error = _make_runner(workers_flag)
    if runner is None:
        print(error, file=sys.stderr)
        return 2
    # one flat job list across all requested experiments, so the pool
    # overlaps work across table boundaries; results stream back in job
    # order, so each experiment's table prints as soon as its slice of
    # the battery completes (a late failure can't eat earlier tables)
    batches: List[Tuple[str, str, List[Job]]] = []
    for key in wanted:
        title, jobs_fn = EXPERIMENTS[key]
        batches.append((key, title, list(jobs_fn())))
    all_jobs = [job for _key, _title, jobs in batches for job in jobs]
    results = runner.imap(all_jobs)
    for key, title, jobs in batches:
        rows = [row for _job in jobs for row in next(results)]
        print(f"\n=== {key}: {title} ===")
        print(format_table(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
