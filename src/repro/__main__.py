"""Command-line entry point: run examples, experiments, and scenarios.

Usage::

    python -m repro                 # list what is available
    python -m repro e1              # run one experiment, print its table
    python -m repro e3 e4           # several in sequence
    python -m repro all             # the whole battery

    python -m repro scenarios list
    python -m repro scenarios run [--seed N] [--stack rina|ip|both] \
        fault-storm spec.json gen:3

``scenarios run`` executes each spec on the requested stacks **twice**
and verifies the two runs produce byte-identical traces (the determinism
contract); the exit code is non-zero if any run diverges.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Dict, List

from .experiments.common import format_table


def _e1() -> List[dict]:
    from .core.qos import BEST_EFFORT, RELIABLE
    from .experiments.e1_two_system import run_sweep
    return (run_sweep([0.0, 0.05, 0.1, 0.2], RELIABLE, messages=150)
            + run_sweep([0.1, 0.2], BEST_EFFORT, messages=150))


def _e2() -> List[dict]:
    from .experiments.e2_relay import run_sweep
    return run_sweep([1, 2, 4, 8])


def _e3() -> List[dict]:
    from .experiments.e3_scoped_recovery import run_bursty, run_sweep
    rows = run_sweep([0.0, 0.1, 0.2, 0.3], total_bytes=120_000)
    rows.append(run_bursty("e2e"))
    rows.append(run_bursty("scoped"))
    return rows


def _e4() -> List[dict]:
    from .experiments.e4_multihoming import run_comparison
    return run_comparison()


def _e5() -> List[dict]:
    from .experiments.e5_mobility import run_comparison, run_rina
    rows = run_comparison()
    rows += [r for r in run_rina(make_before_break=False)
             if r["move"] == "inter-region"]
    return rows


def _e6() -> List[dict]:
    from .experiments.e6_scalability import run_sweep
    return run_sweep([(3, 4), (4, 8)])


def _e6_scale() -> List[dict]:
    import os
    from .experiments.e6_scalability import run_scale_tier
    tiers = os.environ.get("REPRO_E6_SCALE_TIERS", "small,medium,large")
    return run_scale_tier([t.strip() for t in tiers.split(",") if t.strip()])


def _e7() -> List[dict]:
    from .experiments.e7_security import run_comparison
    return run_comparison()


def _e8() -> List[dict]:
    from .experiments.e8_utilization import run_sweep
    return run_sweep([0.5, 0.8, 0.9, 1.0, 1.1], duration=4.0)


def _e9() -> List[dict]:
    from .experiments.e9_private_addresses import run_comparison
    return run_comparison()


def _a1() -> List[dict]:
    from .experiments.a1_addressing import run_comparison
    return run_comparison(side=5)


def _a2() -> List[dict]:
    from .experiments.a2_efcp_policies import run_sweep
    return run_sweep([0.0, 0.05, 0.1, 0.2], total_bytes=80_000)


EXPERIMENTS: Dict[str, tuple] = {
    "e1": ("Fig 1: two-system IPC under loss", _e1),
    "e2": ("Fig 2: relaying through dedicated systems", _e2),
    "e3": ("Fig 3/§6.2: wireless-scope DIF vs end-to-end", _e3),
    "e4": ("Fig 4/§6.3: multihoming failover vs TCP/SCTP", _e4),
    "e5": ("Fig 5/§6.4: mobility vs Mobile-IP (+A4 ablation)", _e5),
    "e6": ("§6.5: flat vs recursive routing state", _e6),
    "e6-scale": ("§6.5 scale tier: 56/211/1,021-system builds, "
                 "wall-clock + events/sec (REPRO_E6_SCALE_TIERS)", _e6_scale),
    "e7": ("§6.1: attack surface", _e7),
    "e8": ("§6.6: utilization before QoS violation", _e8),
    "e9": ("§6.5/§6.7: private addressing without NAT", _e9),
    "a1": ("ablation: addressing policies", _a1),
    "a2": ("ablation: EFCP policies", _a2),
}


def _load_scenarios(names: List[str], seed: int) -> List:
    """Resolve CLI scenario references: canned names, ``.json`` spec
    files, or ``gen:<count>`` batches from the seeded generator."""
    from .scenarios import Scenario, canned, generate_specs
    scenarios = []
    for name in names:
        if name.startswith("gen:"):
            scenarios.extend(generate_specs(seed, int(name[len("gen:"):])))
        elif name.endswith(".json"):
            with open(name) as handle:
                spec = Scenario.from_dict(json.load(handle))
            spec.validate()   # inside the caller's try: a structurally
            scenarios.append(spec)   # bad spec is a load error, not a crash
        else:
            scenarios.append(canned(name))
    return scenarios


def scenarios_main(argv: List[str]) -> int:
    """The ``scenarios`` subcommand."""
    from .scenarios import CANNED, ScenarioRunner
    if not argv or argv[0] == "list":
        print("canned scenarios:")
        for name in sorted(CANNED):
            print(f"  {name:16s} {CANNED[name]().description}")
        print("\nalso accepted by `run`: a spec .json file, gen:<count>")
        return 0
    if argv[0] != "run":
        print(f"unknown scenarios subcommand {argv[0]!r} (list|run)",
              file=sys.stderr)
        return 2
    args = argv[1:]
    seed, stacks, names = 0, ("rina", "ip"), []
    index = 0
    while index < len(args):
        arg = args[index]
        if arg in ("--seed", "--stack"):
            index += 1
            if index >= len(args):
                print(f"{arg} requires a value", file=sys.stderr)
                return 2
            value = args[index]
            if arg == "--seed":
                try:
                    seed = int(value)
                except ValueError:
                    print(f"--seed requires an integer, got {value!r}",
                          file=sys.stderr)
                    return 2
            else:
                if value not in ("rina", "ip", "both"):
                    print(f"unknown stack {value!r} (rina|ip|both)",
                          file=sys.stderr)
                    return 2
                stacks = ("rina", "ip") if value == "both" else (value,)
        else:
            names.append(arg)
        index += 1
    if not names:
        print("scenarios run: no spec given (canned name, .json, gen:N)",
              file=sys.stderr)
        return 2
    try:
        scenarios = _load_scenarios(names, seed)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except (OSError, ValueError, TypeError) as exc:
        print(f"cannot load scenario spec: {exc}", file=sys.stderr)
        return 2
    rows, divergent = [], 0
    for scenario in scenarios:
        for stack in stacks:
            first = ScenarioRunner(scenario, seed=seed)
            metrics = first.run(stack)
            second = ScenarioRunner(scenario, seed=seed)
            second.run(stack)
            deterministic = first.trace == second.trace
            divergent += 0 if deterministic else 1
            rows.append({
                "scenario": metrics["scenario"],
                "stack": stack,
                "echo": f"{metrics['echo_delivered']}/{metrics['echo_sent']}",
                "goodput_mbps": metrics["goodput_mbps"],
                "worst_outage_s": metrics["worst_outage_s"],
                "faults": len(scenario.faults),
                "deterministic": deterministic,
            })
    print(format_table(rows, title=f"scenarios (seed={seed}, two runs each)"))
    if divergent:
        print(f"\nDETERMINISM VIOLATION in {divergent} run(s)",
              file=sys.stderr)
        return 1
    print("\nall runs byte-identical across repeats")
    return 0


def main(argv: List[str]) -> int:
    """Entry point; returns a process exit code."""
    if not argv:
        print("repro — 'Networking is IPC' (Day/Matta/Mattar 2008), "
              "executable reproduction\n")
        print("usage: python -m repro <experiment> [...] | all\n"
              "       python -m repro scenarios list|run ...\n")
        for key, (title, _fn) in EXPERIMENTS.items():
            print(f"  {key}   {title}")
        print("\n(see also: pytest benchmarks/ --benchmark-only, examples/)")
        return 0
    if argv[0] == "scenarios":
        return scenarios_main(argv[1:])
    wanted = list(EXPERIMENTS) if argv == ["all"] else argv
    unknown = [key for key in wanted if key not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for key in wanted:
        title, runner = EXPERIMENTS[key]
        print(f"\n=== {key}: {title} ===")
        rows = runner()
        print(format_table(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
