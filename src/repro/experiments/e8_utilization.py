"""E8 — §1 point 5 / §6.6: operating subnetworks above best-effort loads.

The paper: stacking scoped DIFs "provides the basis for operating
subnetworks at much higher utilizations than the 30%–40% in the current
Internet" — because an IPC facility multiplexes *flows with declared QoS
cubes* under an explicit scheduling policy, instead of one undifferentiated
best-effort aggregate.

Setup: three sources → access router → sink, bottleneck 10 Mb/s.  One
delay-sensitive flow (LOW_LATENCY cube: small periodic messages, 50 ms
target) shares the bottleneck with elastic/background traffic.  The
offered load is swept from 0.4 to 1.2 of bottleneck capacity under three
RMT multiplexing policies (the DIF's policy knob — ablation A3 reuses
this harness):

* ``fifo``     — the best-effort Internet analogue: one queue, no classes;
* ``priority`` — strict priority by QoS cube;
* ``drr``      — deficit round robin across cubes.

Reported per (policy, load): p50/p99 latency of the delay-sensitive flow,
its delivery ratio, achieved bottleneck utilization, and whether the
50 ms SLA held.  The headline number is the **highest load whose p99
meets the SLA**: ~0.4–0.7 for FIFO, ≳1.0 for cube-aware scheduling.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..apps.streaming import CbrSource, LatencySink
from ..core import (BEST_EFFORT, LOW_LATENCY, Dif, DifPolicies, Orchestrator,
                    add_shims, build_dif_over, make_systems, run_until,
                    shim_between)
from ..sim.network import Network
from ..sweeps import Job
from .common import percentile

BOTTLENECK_BPS = 1e7
SLA_SECONDS = 0.05
LL_MESSAGE_BYTES = 300
LL_PERIOD = 0.01  # 300 B / 10 ms = 240 kb/s of delay-sensitive traffic


def build_bottleneck(scheduler: str, seed: int = 1):
    """Three sources, one router, one sink; DIF with the given scheduler."""
    network = Network(seed=seed)
    for name in ("src1", "src2", "src3", "router", "sink"):
        network.add_node(name)
    for src in ("src1", "src2", "src3"):
        network.connect(src, "router", capacity_bps=5e7, delay=0.001)
    network.connect("router", "sink", capacity_bps=BOTTLENECK_BPS, delay=0.002)
    systems = make_systems(network)
    add_shims(systems, network)
    policies = DifPolicies(scheduler=scheduler, keepalive_interval=5.0,
                           refresh_interval=None)
    dif = Dif("access", policies)
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, dif, systems, adjacencies=[
        ("src1", "router", shim_between(network, "src1", "router")),
        ("src2", "router", shim_between(network, "src2", "router")),
        ("src3", "router", shim_between(network, "src3", "router")),
        ("router", "sink", shim_between(network, "router", "sink"))],
        bootstrap="router")
    orchestrator.run(timeout=60)
    return network, systems, dif


def run_point(scheduler: str, load: float, duration: float = 6.0,
              seed: int = 1) -> Dict[str, Any]:
    """One (policy, offered load) measurement."""
    network, systems, _dif = build_bottleneck(scheduler, seed)
    sink = LatencySink(systems["sink"], "sink")
    network.run(until=network.engine.now + 0.5)

    ll = CbrSource(systems["src1"], "voice", "sink", LOW_LATENCY,
                   LL_MESSAGE_BYTES, LL_PERIOD)
    # background load split over two elastic senders, sized so that
    # ll + background = load * bottleneck
    ll_bps = LL_MESSAGE_BYTES * 8 / LL_PERIOD
    background_bps = max(0.0, load * BOTTLENECK_BPS - ll_bps)
    bg_message = 1200
    bg_sources = []
    for name in ("src2", "src3"):
        period = bg_message * 8 / (background_bps / 2) if background_bps else 1e9
        bg_sources.append(CbrSource(systems[name], f"bg-{name}", "sink",
                                    BEST_EFFORT, bg_message, period))
    run_until(network, lambda: ll.waiter.done() and
              all(s.waiter.done() for s in bg_sources), timeout=15)
    start = network.engine.now
    ll.start()
    for source in bg_sources:
        source.start()
    network.run(until=start + duration)
    ll.stop()
    for source in bg_sources:
        source.stop()
    network.run(until=network.engine.now + 0.5)

    voice_delays = sink.delays.get("voice", [])
    bottleneck = network.link_between("router", "sink")
    utilization = bottleneck.utilization(network.engine.now - start, 0)
    p99 = percentile(voice_delays, 99)
    return {
        "scheduler": scheduler,
        "offered_load": load,
        "voice_sent": ll.sent,
        "voice_delivered": len(voice_delays),
        "delivery_ratio": len(voice_delays) / ll.sent if ll.sent else 0.0,
        "p50_ms": 1000 * percentile(voice_delays, 50),
        "p99_ms": 1000 * p99,
        "utilization": round(utilization, 3),
        "sla_met": bool(voice_delays) and p99 <= SLA_SECONDS
        and len(voice_delays) >= 0.98 * ll.sent,
    }


def run_sweep(loads: List[float], schedulers: Optional[List[str]] = None,
              duration: float = 6.0, seed: int = 1) -> List[Dict[str, Any]]:
    """The E8 table."""
    rows = []
    for scheduler in (schedulers or ["fifo", "priority", "drr"]):
        for load in loads:
            rows.append(run_point(scheduler, load, duration, seed))
    return rows


def iter_jobs(loads: List[float] = (0.5, 0.8, 0.9, 1.0, 1.1),
              schedulers: Optional[List[str]] = None,
              duration: float = 4.0, seed: int = 1) -> List[Job]:
    """The E8 table as data: one job per (scheduler, offered load), in
    the :func:`run_sweep` row order."""
    return [Job("repro.experiments.e8_utilization:run_point",
                kwargs={"scheduler": scheduler, "load": load,
                        "duration": duration, "seed": seed},
                group="e8", label=f"e8 {scheduler} load={load}")
            for scheduler in (schedulers or ["fifo", "priority", "drr"])
            for load in loads]


def achievable_utilization(rows: List[Dict[str, Any]]) -> Dict[str, float]:
    """Headline: highest offered load meeting the SLA, per scheduler."""
    best: Dict[str, float] = {}
    for row in rows:
        if row["sla_met"]:
            best[row["scheduler"]] = max(best.get(row["scheduler"], 0.0),
                                         row["offered_load"])
    return best
