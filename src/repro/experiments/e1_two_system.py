"""E1 — Figure 1: one layer of IPC between two directly connected hosts.

What the figure shows: two hosts, one physical link, one DIF; applications
allocate by name through the IPC interface, EFCP supports the requested
channel properties, port IDs are local handles.

What we measure: with the link's loss rate swept, a *reliable* cube must
deliver 100% of messages (EFCP recovers), while a *best-effort* cube
delivers ≈ (1 - loss) — demonstrating that the DIF really provides the
requested properties rather than a fixed service.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Union

from ..apps.echo import EchoClient, EchoServer
from ..core import (BEST_EFFORT, RELIABLE, Dif, DifPolicies, Orchestrator,
                    QosCube, add_shims, build_dif_over, make_systems,
                    run_until, shim_between)
from ..core.qos import DEFAULT_CUBES
from ..sim.link import UniformLoss
from ..sim.network import Network
from ..sweeps import Job
from .common import goodput_bps


def build_two_hosts(loss: float = 0.0, seed: int = 1,
                    capacity_bps: float = 1e7, delay: float = 0.002):
    """The Fig 1 scenario: hosts h1, h2, one link, one DIF."""
    network = Network(seed=seed)
    network.add_node("h1")
    network.add_node("h2")
    network.connect("h1", "h2", capacity_bps=capacity_bps, delay=delay,
                    loss=UniformLoss(loss) if loss > 0 else None)
    systems = make_systems(network)
    add_shims(systems, network)
    dif = Dif("net", DifPolicies(keepalive_interval=5.0))
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, dif, systems,
                   adjacencies=[("h1", "h2", shim_between(network, "h1", "h2"))])
    orchestrator.run(timeout=30)
    return network, systems, dif


def run_transfer(loss: float, qos: Union[QosCube, str], messages: int = 200,
                 size: int = 600, seed: int = 1) -> Dict[str, Any]:
    """One row: send ``messages`` of ``size`` bytes under ``loss``.

    ``qos`` may be a :class:`QosCube` or the name of a default cube —
    the string form is what sweep :class:`~repro.sweeps.Job`\\ s use, so
    their kwargs stay picklable pure data.
    """
    if isinstance(qos, str):
        qos = DEFAULT_CUBES[qos]
    network, systems, _dif = build_two_hosts(loss=loss, seed=seed)
    server = EchoServer(systems["h2"])
    network.run(until=network.engine.now + 0.5)
    client = EchoClient(systems["h1"], qos=qos)
    run_until(network, lambda: client.waiter.done(), timeout=10)
    if not client.ready:
        raise RuntimeError(f"allocation failed: {client.waiter.reason}")
    start = network.engine.now
    for _ in range(messages):
        client.ping(size)
    # reliable flows must finish; unreliable flows get a bounded window
    deadline = 60.0 if qos.reliable else 10.0
    run_until(network, lambda: client.replies >= messages, timeout=deadline)
    elapsed = network.engine.now - start
    efcp = _client_efcp_stats(systems["h1"])
    return {
        "loss": loss,
        "qos": qos.name,
        "sent": messages,
        "delivered": client.replies,
        "delivery_ratio": client.replies / messages,
        "elapsed_s": elapsed,
        "goodput_bps": goodput_bps(client.replies * size, elapsed),
        "retransmissions": efcp.get("retransmissions", 0),
        "rtt_p50_ms": 1000 * _median(client.rtts),
    }


def run_sweep(losses: List[float], qos: Union[QosCube, str],
              messages: int = 200, seed: int = 1) -> List[Dict[str, Any]]:
    """Table: one row per loss rate."""
    return [run_transfer(loss, qos, messages=messages, seed=seed)
            for loss in losses]


def iter_jobs(reliable_losses: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
              best_effort_losses: Sequence[float] = (0.1, 0.2),
              messages: int = 150, seed: int = 1) -> List[Job]:
    """The E1 table as data: one job per (loss, cube) point, in the
    serial table order (reliable sweep, then best-effort)."""
    return [Job("repro.experiments.e1_two_system:run_transfer",
                kwargs={"loss": loss, "qos": cube, "messages": messages,
                        "seed": seed},
                group="e1", label=f"e1 {cube} loss={loss}")
            for cube, losses in (("reliable", reliable_losses),
                                 ("best-effort", best_effort_losses))
            for loss in losses]


def run_port_id_locality(seed: int = 1) -> Dict[str, Any]:
    """Check the §3.1 remark: port IDs are local and carry no app semantics.

    Two flows to the same server get distinct local port ids, and the two
    ends of one flow have unrelated ids.
    """
    network, systems, _dif = build_two_hosts(seed=seed)
    server = EchoServer(systems["h2"])
    network.run(until=network.engine.now + 0.5)
    first = EchoClient(systems["h1"], client_name="c1")
    second = EchoClient(systems["h1"], client_name="c2")
    run_until(network, lambda: first.ready and second.ready, timeout=10)
    server_ports = [mf.flow.port_id.value for mf in server._flows]
    return {
        "client_ports": [first.flow.port_id.value, second.flow.port_id.value],
        "server_ports": server_ports,
        "client_ports_distinct": (first.flow.port_id.value
                                  != second.flow.port_id.value),
        "no_well_known_port": sorted(server_ports) != [80, 80],
    }


def _client_efcp_stats(system) -> Dict[str, int]:
    ipcp = system.ipcp("net")
    stats: Dict[str, int] = {"retransmissions": 0}
    for record in ipcp.flow_allocator.records().values():
        if record.efcp is not None:
            stats["retransmissions"] += record.efcp.stats.retransmissions
    return stats


def _median(values: List[float]) -> float:
    if not values:
        return float("nan")
    ordered = sorted(values)
    return ordered[len(ordered) // 2]
