"""A2 — ablation of §3.1/§8: EFCP mechanism fixed, policy swapped.

"By separating mechanisms from policies [...] we can enable users to
specify IPC policies declaratively."  Here the same EFCP machinery runs a
bulk transfer over one lossy link under three retransmission policies and
two congestion policies, showing that policy choice — not new protocol
code — covers the performance space:

* ``selective``  — SACK-based selective repeat (default reliable cube);
* ``gobackn``    — retransmit the whole window on timeout;
* ``none``       — no recovery (best-effort cube): delivery < 1 under loss.

Measured: completion time, goodput, retransmission count (gobackn resends
far more), delivery ratio (1.0 for the reliable policies, ≈1-loss for
none).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..apps.filetransfer import FileSender, FileSink
from ..core import (BEST_EFFORT, RELIABLE, Dif, DifPolicies, Orchestrator,
                    QosCube, add_shims, build_dif_over, make_systems, run_until,
                    shim_between)
from ..sim.link import UniformLoss
from ..sim.network import Network
from ..sweeps import Job
from .common import goodput_bps


def build_lossy_pair(retx: str, congestion: str = "none", seed: int = 1):
    """Two hosts, one lossy link, EFCP policy overrides per the ablation."""
    network = Network(seed=seed)
    network.add_node("a")
    network.add_node("b")
    loss_model = UniformLoss(0.0)
    network.connect("a", "b", capacity_bps=2e7, delay=0.01, loss=loss_model)
    systems = make_systems(network)
    add_shims(systems, network)
    overrides: Dict[str, Any] = {"congestion": congestion}
    if retx != "none":
        overrides["retx"] = retx
    policies = DifPolicies(keepalive_interval=2.0, dead_factor=8,
                           efcp_cube_overrides={"reliable": overrides,
                                                "bulk": overrides})
    dif = Dif("net", policies)
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, dif, systems,
                   adjacencies=[("a", "b", shim_between(network, "a", "b"))])
    orchestrator.run(timeout=30)
    return network, systems, loss_model


def run_policy(retx: str, loss: float, total_bytes: int = 100_000,
               congestion: str = "none", seed: int = 1) -> Dict[str, Any]:
    """One row: one policy at one loss rate."""
    network, systems, loss_model = build_lossy_pair(retx, congestion, seed)
    sink = FileSink(systems["b"])
    network.run(until=network.engine.now + 0.5)
    loss_model.probability = loss
    qos = BEST_EFFORT if retx == "none" else RELIABLE
    sender = FileSender(systems["a"], total_bytes, qos=qos)
    run_until(network, lambda: sender.waiter.done(), timeout=10)
    start = sender.started_at if sender.started_at is not None else network.engine.now
    if retx == "none":
        # unreliable: wait until submission finished plus drain time
        run_until(network, lambda: sender.finished_submitting, timeout=120)
        network.run(until=network.engine.now + 2.0)
        finished = sink.transfers_completed >= 1
        elapsed = network.engine.now - 2.0 - start
    else:
        finished = run_until(network, lambda: sink.transfers_completed >= 1,
                             timeout=300)
        elapsed = (sink.completion_times[0] - start) if finished else float("inf")
    stats = _sender_efcp(systems["a"])
    delivered = sink.bytes_received
    return {
        "retx": retx,
        "congestion": congestion,
        "loss": loss,
        "completed": finished,
        "delivery_ratio": round(delivered / total_bytes, 4),
        "goodput_mbps": goodput_bps(delivered, elapsed) / 1e6
        if elapsed not in (0, float("inf")) else 0.0,
        "retransmissions": stats["retransmissions"],
        "timeouts": stats["timeouts"],
    }


def run_sweep(losses: List[float], total_bytes: int = 100_000,
              seed: int = 1) -> List[Dict[str, Any]]:
    """The A2 table."""
    rows = []
    for loss in losses:
        for retx in ("selective", "gobackn", "none"):
            rows.append(run_policy(retx, loss, total_bytes, seed=seed))
    return rows


def iter_jobs(losses: List[float] = (0.0, 0.05, 0.1, 0.2),
              total_bytes: int = 80_000, seed: int = 1) -> List[Job]:
    """The A2 table as data: one job per (loss, retx policy), in the
    :func:`run_sweep` row order."""
    return [Job("repro.experiments.a2_efcp_policies:run_policy",
                kwargs={"retx": retx, "loss": loss,
                        "total_bytes": total_bytes, "seed": seed},
                group="a2", label=f"a2 {retx} loss={loss}")
            for loss in losses
            for retx in ("selective", "gobackn", "none")]


def run_congestion_ablation(loss: float = 0.02, total_bytes: int = 200_000,
                            seed: int = 1) -> List[Dict[str, Any]]:
    """Companion table: pure credit vs AIMD window adaptation."""
    return [run_policy("selective", loss, total_bytes, congestion=cc, seed=seed)
            for cc in ("none", "aimd")]


def _sender_efcp(system) -> Dict[str, int]:
    stats = {"retransmissions": 0, "timeouts": 0}
    for record in system.ipcp("net").flow_allocator.records().values():
        if record.efcp is not None:
            stats["retransmissions"] += record.efcp.stats.retransmissions
            stats["timeouts"] += record.efcp.stats.timeouts
    return stats
