"""Shared utilities for the experiment harnesses.

Every experiment module exposes ``run_*`` functions returning plain dicts
(one per table row), so that:

* ``benchmarks/bench_*.py`` can time them and print the paper-style table;
* ``tests/test_experiments.py`` can assert the qualitative *shape* of each
  result (who wins, where the crossover is) — the reproduction criterion
  for a position paper with no published numbers.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence


def format_table(rows: Sequence[Dict[str, Any]],
                 columns: Optional[Sequence[str]] = None,
                 title: str = "") -> str:
    """Render result rows as an aligned text table (for bench output)."""
    if not rows:
        return f"{title}\n(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[_cell(row.get(col)) for col in columns]
                                 for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def goodput_bps(bytes_delivered: int, elapsed: float) -> float:
    """Application-level throughput in bits/s."""
    if elapsed <= 0:
        return math.nan
    return bytes_delivered * 8.0 / elapsed


def delivery_gap(times: Sequence[float], at: float) -> float:
    """Largest inter-delivery gap at or after instant ``at``.

    The standard outage metric of the failover/mobility experiments: with
    periodic traffic, the max gap bounds how long the path was unusable
    (in-flight deliveries right after ``at`` do not mask the outage).

    When ``at`` precedes the first delivery there is no previous delivery
    to anchor the first gap: it is measured from ``at`` itself — the wait
    from the instant of interest until delivery starts counts as an
    outage and sets a floor on the result — and only deliveries strictly
    before ``at`` (beyond the float tolerance) may serve as the anchor,
    so a delivery on the wrong side of ``at`` can never stand in for a
    working path.  Input order is irrelevant (times are sorted here).
    """
    eps = 1e-9
    ordered = sorted(times)
    after = [t for t in ordered if t >= at - eps]
    if not after:
        return float("inf")
    before = [t for t in ordered if t < at - eps]
    gap = max(0.0, after[0] - (before[-1] if before else at))
    for earlier, later in zip(after, after[1:]):
        gap = max(gap, later - earlier)
    return gap


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (NaN when empty)."""
    return sum(values) / len(values) if values else math.nan


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile."""
    if not values:
        return math.nan
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(math.ceil(pct / 100.0 * len(ordered))) - 1))
    return ordered[rank]
