"""E5 — Figure 5 / §6.4: mobility is dynamic multihoming.

Physical plant (same for both stacks)::

    C --- B --- R1 --- BS1 BS2     (region 1)
           \\-- R2 --- BS3 BS4     (region 2)
    M (mobile) has a wireless link to every base station; only the
    current attachment carries traffic.

IPC configuration: three DIFs of different rank, exactly Fig 5's picture —

* ``region1`` = {R1, BS1, BS2, M}  (N-1, narrow scope, fast keepalives)
* ``region2`` = {R2, BS3, BS4, M}
* ``metro``   = {M, R1, R2, B, C}  (N), whose M–R1 adjacency *is a flow of
  region1* — so an intra-region move is invisible to it.

Moves measured:

1. **intra-region** (BS1 → BS2): only region1's routing updates; the metro
   DIF sees nothing; the correspondent's flow survives.
2. **inter-region** (BS2 → BS3): M enrolls in region2, brings up a new
   metro adjacency via region2, then loses the old radio; routing updates
   stay inside region2 + metro; the flow still survives.

Baseline: Mobile-IP on the identical topology — home agent at R1,
care-of registration per move, triangle routing forever after.

Reported per move: routing-update messages by DIF (the paper's locality
argument), delivery outage at the correspondent, and for Mobile-IP the
path stretch and registration signalling.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..apps.echo import EchoClient, EchoServer
from ..baselines import HomeAgent, IpFabric, MobileNode
from ..core import Dif, run_until, shim_name_for
from ..scenarios.canned import e5_scenario
from ..scenarios.runner import build_rina_stack, build_topology
from ..sim.network import Network
from ..sweeps import Job
from .common import delivery_gap

REGIONS = {
    "region1": ("r1", ["bs1", "bs2"]),
    "region2": ("r2", ["bs3", "bs4"]),
}
SEND_PERIOD = 0.05


def build_physical(seed: int = 1) -> Network:
    """The shared physical plant (from the declarative E5 scenario spec)."""
    network = Network(seed=seed)
    build_topology(e5_scenario().topology, network)
    return network


# ----------------------------------------------------------------------
# RINA side
# ----------------------------------------------------------------------
class RinaMobilityScenario:
    """Builds the three-DIF stack and drives the two moves."""

    def __init__(self, seed: int = 1) -> None:
        # Fig 5's plant and three-DIF stack, re-expressed as the canned
        # scenario spec; this class keeps the move orchestration.
        built = build_rina_stack(e5_scenario(), seed=seed)
        self.network = built.network
        self.systems = built.systems
        self.region1 = built.layers["region1"]
        self.region2 = built.layers["region2"]
        self.metro = built.layers["metro"]
        # prepare the not-yet-used attachment points: base stations must be
        # reachable over their radio shims for the mobile to attach later
        self.systems["bs2"].publish_ipcp("region1", shim_name_for("radio:bs2"))
        self.systems["bs3"].publish_ipcp("region2", shim_name_for("radio:bs3"))
        self.systems["bs4"].publish_ipcp("region2", shim_name_for("radio:bs4"))
        self.systems["m"].create_ipcp(self.region2)
        self.systems["m"].publish_ipcp("region2", shim_name_for("radio:bs3"))
        self.systems["r2"].publish_ipcp("metro", "region2")
        self._lsa_baseline: Dict[str, int] = {}

    # -- measurement helpers -------------------------------------------
    def _members_of(self, dif: Dif) -> List[str]:
        return sorted({ipcp.system_name for ipcp in dif.members().values()})

    def lsa_counts(self) -> Dict[str, int]:
        """Total routing updates received, per DIF."""
        totals = {}
        for dif in (self.region1, self.region2, self.metro):
            totals[str(dif.name)] = sum(
                ipcp.routing.lsas_received for ipcp in dif.members().values())
        return totals

    def snapshot(self) -> None:
        """Remember current LSA counters (call before a move)."""
        self._lsa_baseline = self.lsa_counts()

    def lsa_delta(self) -> Dict[str, int]:
        """Routing updates received since the last snapshot, per DIF."""
        now = self.lsa_counts()
        return {name: now[name] - self._lsa_baseline.get(name, 0)
                for name in now}

    # -- the moves -------------------------------------------------------
    def move_intra_region(self, done: Optional[List] = None) -> None:
        """BS1 → BS2: make-before-break within region1."""
        system = self.systems["m"]
        member = self.region1.name.ipcp_name("bs2")

        def attached(ok: bool, reason: str) -> None:
            # new radio up: drop the old one (signal 'fails', Fig 5)
            self.network.links["radio:bs1"].fail()
            if done is not None:
                done.append((ok, reason))
        system.connect_neighbor("region1", member,
                                shim_name_for("radio:bs2"), attached)

    def move_inter_region(self, done: Optional[List] = None,
                          make_before_break: bool = True) -> None:
        """BS2 → BS3: enroll region2 and re-home the metro adjacency.

        With ``make_before_break`` (the default, and the right engineering)
        the new attachments come up before the old radio dies; the
        break-before-make variant — the radio fails first, as in an abrupt
        signal loss — is the A4 ablation: same machinery, larger outage.
        """
        system = self.systems["m"]
        region_member = self.region2.name.ipcp_name("bs3")
        metro_member = self.metro.name.ipcp_name("r2")

        if not make_before_break:
            self.network.links["radio:bs2"].fail()

        def metro_attached(ok: bool, reason: str) -> None:
            if make_before_break:
                self.network.links["radio:bs2"].fail()
            if done is not None:
                done.append((ok, reason))

        def enrolled(ok: bool, reason: str) -> None:
            if not ok:
                if done is not None:
                    done.append((ok, reason))
                return
            system.connect_neighbor("metro", metro_member, "region2",
                                    metro_attached)
        system.enroll("region2", region_member, shim_name_for("radio:bs3"),
                      done=enrolled)


def run_rina(seed: int = 1,
             make_before_break: bool = True) -> List[Dict[str, Any]]:
    """The RINA half of the E5 table: one row per move."""
    scenario = RinaMobilityScenario(seed)
    network = scenario.network
    server = EchoServer(scenario.systems["m"], dif_names=["metro"])
    network.run(until=network.engine.now + 1.0)
    client = EchoClient(scenario.systems["c"], dif_name="metro")
    run_until(network, lambda: client.waiter.done(), timeout=15)
    if not client.ready:
        raise RuntimeError(f"allocation failed: {client.waiter.reason}")

    delivery_times: List[float] = []
    original = client.message_flow._receiver

    def on_reply(data: bytes) -> None:
        delivery_times.append(network.engine.now)
        original(data)
    client.message_flow.set_message_receiver(on_reply)

    stop = [False]

    def pump() -> None:
        if not stop[0]:
            client.ping(120)
            network.engine.call_later(SEND_PERIOD, pump)
    pump()
    network.run(until=network.engine.now + 1.0)

    rows = []
    movers = (
        ("intra-region", scenario.move_intra_region),
        ("inter-region",
         lambda outcome: scenario.move_inter_region(
             outcome, make_before_break=make_before_break)),
    )
    for move_name, mover in movers:
        scenario.snapshot()
        before = len(delivery_times)
        move_at = network.engine.now
        outcome: List = []
        mover(outcome)
        network.run(until=move_at + 8.0)
        delta = scenario.lsa_delta()
        after = [t for t in delivery_times if t >= move_at]
        gap = delivery_gap(delivery_times, move_at)
        rows.append({
            "stack": "rina" if make_before_break else "rina(bbm)",
            "move": move_name,
            "flow_survived": client.flow.allocated and bool(after),
            "outage_s": gap,
            "updates_region1": delta["region1"],
            "updates_region2": delta["region2"],
            "updates_metro": delta["metro"],
        })
    stop[0] = True
    return rows


# ----------------------------------------------------------------------
# Mobile-IP side
# ----------------------------------------------------------------------
def run_mobileip(seed: int = 1, detection_delay: float = 0.1) -> List[Dict[str, Any]]:
    """The baseline half: home agent at R1, registration per move."""
    network = build_physical(seed)
    routers = ["bs1", "bs2", "bs3", "bs4", "r1", "r2", "b"]
    fabric = IpFabric(network, routers=routers)
    m, c, r1 = fabric.host("m"), fabric.host("c"), fabric.host("r1")

    home_address = m.addr("if0")          # address on the radio:bs1 link
    agent_ip = r1.addr("if0")
    agent = HomeAgent(r1.ip, r1.udp, agent_ip)
    mobile = MobileNode(network.engine, m.ip, m.udp, home_address, agent_ip)

    # a UDP echo responder on the mobile's stack, reachable via any address
    delivery_times: List[float] = []

    def echo_handler(payload, size, src_ip, src_port) -> None:
        m.udp.sendto(mobile.current_address(), 7, src_ip, src_port,
                     payload, size)
    m.udp.bind(7, echo_handler)

    replies: List[float] = []

    def reply_handler(payload, size, src_ip, src_port) -> None:
        replies.append(network.engine.now)
    client_port = c.udp.bind(0, reply_handler)

    stop = [False]

    def pump() -> None:
        if not stop[0]:
            c.udp.sendto(c.addr(), client_port, home_address, 7, b"ping", 120)
            network.engine.call_later(SEND_PERIOD, pump)
    pump()
    network.run(until=1.0)

    def rehome(new_ifname: str) -> None:
        """Point the mobile's default route at its current attachment —
        what a real mobile's DHCP/RA handling does on re-attachment."""
        stack = m.ip
        stack.clear_routes()
        for ifname, ip_if in stack.interfaces.items():
            if ip_if.up:
                prefix, plen = ip_if.network
                stack.add_route(prefix, plen, None, ifname)
        new_if = stack.interfaces[new_ifname]
        # default route via the base station's end of the subnet
        peer = (new_if.address & ~3) + (1 if (new_if.address & 3) == 2 else 2)
        stack.add_route(0, 0, peer, new_ifname)

    rows = []
    moves = [
        ("intra-region", "radio:bs1", "if1", 6),   # C-b-r1(HA)-r1..bs2-M
        ("inter-region", "radio:bs2", "if2", 8),
    ]
    direct_hops = {"intra-region": 4, "inter-region": 4}
    for move_name, old_link, new_if, via_ha_hops in moves:
        move_at = network.engine.now
        registrations_before = mobile.registrations_sent
        network.links[old_link].fail()
        care_of = m.addr(new_if)

        def attach(coa=care_of, ifname=new_if) -> None:
            rehome(ifname)
            mobile.move_to(coa)
        network.engine.call_later(detection_delay, attach)
        network.run(until=move_at + 8.0)
        after = [t for t in replies if t >= move_at]
        gap = delivery_gap(replies, move_at)
        rows.append({
            "stack": "mobile-ip",
            "move": move_name,
            "flow_survived": bool(after),
            "outage_s": gap,
            "registration_msgs": mobile.registrations_sent - registrations_before,
            "path_hops_via_ha": via_ha_hops,
            "path_hops_direct": direct_hops[move_name],
            "stretch": via_ha_hops / direct_hops[move_name],
        })
    stop[0] = True
    return rows


def run_comparison(seed: int = 1) -> List[Dict[str, Any]]:
    """Full E5 table: RINA moves then Mobile-IP moves."""
    return run_rina(seed) + run_mobileip(seed)


def run_rina_break_before_make(seed: int = 1) -> List[Dict[str, Any]]:
    """The A4 ablation rows: the inter-region move *without*
    make-before-break (enrollment starts only after the old PoA drops)."""
    return [row for row in run_rina(seed, make_before_break=False)
            if row["move"] == "inter-region"]


def iter_jobs(seed: int = 1) -> List[Job]:
    """The E5 table as data: the RINA moves, the Mobile-IP moves, then
    the A4 break-before-make ablation."""
    return [
        Job("repro.experiments.e5_mobility:run_rina",
            kwargs={"seed": seed}, group="e5", label="e5 rina"),
        Job("repro.experiments.e5_mobility:run_mobileip",
            kwargs={"seed": seed}, group="e5", label="e5 mobile-ip"),
        Job("repro.experiments.e5_mobility:run_rina_break_before_make",
            kwargs={"seed": seed}, group="e5", label="e5 rina(bbm)"),
    ]
