"""E2 — Figure 2: IPC through dedicated relaying systems.

What the figure shows: hosts communicating through a router; per-interface
IPC processes below, one relaying-and-multiplexing DIF above.

What we measure, sweeping the number of routers on the path: flows still
allocate purely by name; RTT grows linearly with hop count (relaying
works); every intermediate system relays (its RMT counters prove it
forwards *without* any per-flow state — only the endpoints hold EFCP
state, the paper's transport/relaying integration point).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..apps.echo import EchoClient, EchoServer
from ..core import (RELIABLE, Dif, DifPolicies, Orchestrator, add_shims,
                    build_dif_over, make_systems, run_until, shim_between)
from ..sim.network import Network
from ..sweeps import Job


def build_chain(routers: int, seed: int = 1, capacity_bps: float = 2e7,
                delay: float = 0.001):
    """h0 - r1 - ... - rk - h1 with one DIF over the whole chain."""
    network = Network(seed=seed)
    names = (["h0"] + [f"r{i}" for i in range(1, routers + 1)] + ["h1"])
    for name in names:
        network.add_node(name)
    for left, right in zip(names, names[1:]):
        network.connect(left, right, capacity_bps=capacity_bps, delay=delay)
    systems = make_systems(network)
    add_shims(systems, network)
    dif = Dif("net", DifPolicies(keepalive_interval=5.0))
    orchestrator = Orchestrator(network)
    adjacencies = [(a, b, shim_between(network, a, b))
                   for a, b in zip(names, names[1:])]
    build_dif_over(orchestrator, dif, systems, adjacencies=adjacencies)
    orchestrator.run(timeout=60 + 10 * routers)
    return network, systems, dif, names


def run_relay(routers: int, messages: int = 50, size: int = 400,
              seed: int = 1) -> Dict[str, Any]:
    """One row: echo across ``routers`` relaying systems."""
    network, systems, _dif, names = build_chain(routers, seed=seed)
    server = EchoServer(systems["h1"])
    network.run(until=network.engine.now + 0.5)
    client = EchoClient(systems["h0"])
    run_until(network, lambda: client.waiter.done(), timeout=15)
    if not client.ready:
        raise RuntimeError(f"allocation failed: {client.waiter.reason}")
    for _ in range(messages):
        client.ping(size)
    run_until(network, lambda: client.replies >= messages, timeout=60)
    relayed = {name: systems[name].ipcp("net").rmt.pdus_relayed
               for name in names[1:-1]}
    endpoint_flow_state = {
        name: systems[name].ipcp("net").flow_allocator.active_flow_count()
        for name in names}
    return {
        "routers": routers,
        "delivered": client.replies,
        "rtt_p50_ms": 1000 * sorted(client.rtts)[len(client.rtts) // 2]
        if client.rtts else float("nan"),
        "relayed_min": min(relayed.values()) if relayed else 0,
        "relay_flow_state": max((endpoint_flow_state[n] for n in names[1:-1]),
                                default=0),
        "endpoint_flow_state": endpoint_flow_state["h0"],
    }


def run_sweep(router_counts: List[int], seed: int = 1) -> List[Dict[str, Any]]:
    """Table: one row per chain length."""
    return [run_relay(count, seed=seed) for count in router_counts]


def iter_jobs(router_counts: Sequence[int] = (1, 2, 4, 8),
              seed: int = 1) -> List[Job]:
    """The E2 table as data: one job per chain length."""
    return [Job("repro.experiments.e2_relay:run_relay",
                kwargs={"routers": count, "seed": seed},
                group="e2", label=f"e2 routers={count}")
            for count in router_counts]
