"""Experiment harnesses — one module per figure/claim of the paper.

Each module exposes ``run_*`` functions returning plain dict rows, plus
an ``iter_jobs()`` that renders its default configuration sweep as a
list of picklable :class:`repro.sweeps.Job` data — the form the
multi-process sweep runner (CLI ``--jobs N``, bench ``REPRO_JOBS``)
dispatches over a worker pool.  The ``benchmarks/`` suite times the
sweeps and prints the paper-style tables, and
``tests/test_experiments.py`` asserts the qualitative shapes; see
DESIGN.md §4 for the experiment index and EXPERIMENTS.md for results.

* ``e1_two_system``         — Fig 1: one IPC layer between two hosts
* ``e2_relay``              — Fig 2: relaying through dedicated systems
* ``e3_scoped_recovery``    — Fig 3/§6.2: narrow-scope DIF over wireless
* ``e4_multihoming``        — Fig 4/§6.3: PoA failover vs TCP vs SCTP
* ``e5_mobility``           — Fig 5/§6.4: handover locality vs Mobile-IP
* ``e6_scalability``        — §6.5: flat vs recursive routing state
* ``e7_security``           — §6.1: enrollment, PDU gate, ACLs vs IP scan
* ``e8_utilization``        — §6.6: utilization before QoS violation
* ``e9_private_addresses``  — §6.5/§6.7: address reuse without NAT
* ``a1_addressing``         — ablation: topological vs flat addresses
* ``a2_efcp_policies``      — ablation: EFCP retransmission/congestion
* (A3, schedulers, reuses the ``e8_utilization`` harness)
"""

from . import common

__all__ = ["common"]
