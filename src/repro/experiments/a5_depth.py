"""A5 — ablation (§1.2/§4): what does each level of recursion cost?

"The greater the operating range in a network, the more IPC layers it may
have" — but each layer adds header bytes and another EFCP/RMT pass.  This
ablation stacks 1..N identical DIFs between two hosts over one wire and
measures goodput, per-message latency, and wire overhead per level, so a
designer can see what the divide-and-conquer strategy costs when the
extra scopes buy nothing (the complement of E3, where a scope earns its
keep against a lossy medium).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..apps.echo import EchoClient, EchoServer
from ..apps.filetransfer import FileSender, FileSink
from ..core import (RELIABLE, Dif, DifPolicies, Orchestrator, add_shims,
                    build_dif_over, make_systems, run_until, shim_between)
from ..sim.network import Network
from ..sweeps import Job
from .common import goodput_bps


def build_stack(depth: int, seed: int = 1, capacity_bps: float = 2e7):
    """Two hosts, one wire, ``depth`` DIFs stacked on the shim."""
    if depth < 1:
        raise ValueError("depth must be at least 1")
    network = Network(seed=seed)
    network.add_node("a")
    network.add_node("b")
    network.connect("a", "b", capacity_bps=capacity_bps, delay=0.005)
    systems = make_systems(network)
    add_shims(systems, network)
    orchestrator = Orchestrator(network)
    lower = shim_between(network, "a", "b")
    top_name = None
    for level in range(1, depth + 1):
        dif = Dif(f"level{level}", DifPolicies(
            keepalive_interval=2.0, refresh_interval=None,
            lower_flow_cube=RELIABLE if level > 1 else None))
        build_dif_over(orchestrator, dif, systems,
                       adjacencies=[("a", "b", lower)], settle=0.2)
        lower = f"level{level}"
        top_name = lower
    orchestrator.run(timeout=60 + 20 * depth)
    return network, systems, top_name


def run_depth(depth: int, total_bytes: int = 100_000,
              seed: int = 1) -> Dict[str, Any]:
    """One row: bulk goodput + echo latency through ``depth`` layers."""
    network, systems, top = build_stack(depth, seed=seed)
    link = network.link_between("a", "b")

    sink = FileSink(systems["b"], dif_names=[top])
    network.run(until=network.engine.now + 0.5)
    wire_before = sum(link.bytes_delivered)
    sender = FileSender(systems["a"], total_bytes, qos=RELIABLE,
                        dif_name=top)
    run_until(network, lambda: sender.waiter.done(), timeout=15)
    start = (sender.started_at if sender.started_at is not None
             else network.engine.now)
    finished = run_until(network, lambda: sink.transfers_completed >= 1,
                         timeout=300)
    elapsed = (sink.completion_times[0] - start) if finished else float("inf")
    wire_bytes = sum(link.bytes_delivered) - wire_before

    server = EchoServer(systems["b"], name=f"echo-{depth}", dif_names=[top])
    network.run(until=network.engine.now + 0.5)
    client = EchoClient(systems["a"], server_name=f"echo-{depth}",
                        dif_name=top)
    run_until(network, lambda: client.waiter.done(), timeout=15)
    for _ in range(20):
        client.ping(100)
    run_until(network, lambda: client.replies >= 20, timeout=30)
    rtts = sorted(client.rtts)
    return {
        "depth": depth,
        "completed": finished,
        "goodput_mbps": goodput_bps(total_bytes, elapsed) / 1e6,
        "wire_bytes_per_payload_byte": round(wire_bytes / total_bytes, 3),
        "rtt_p50_ms": 1000 * rtts[len(rtts) // 2] if rtts else float("nan"),
    }


def run_sweep(depths: List[int], total_bytes: int = 100_000,
              seed: int = 1) -> List[Dict[str, Any]]:
    """The A5 table."""
    return [run_depth(depth, total_bytes, seed) for depth in depths]


def iter_jobs(depths: List[int] = (1, 2, 3, 4), total_bytes: int = 100_000,
              seed: int = 1) -> List[Job]:
    """The A5 table as data: one job per stack depth."""
    return [Job("repro.experiments.a5_depth:run_depth",
                kwargs={"depth": depth, "total_bytes": total_bytes,
                        "seed": seed},
                group="a5", label=f"a5 depth={depth}")
            for depth in depths]
