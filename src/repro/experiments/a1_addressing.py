"""A1 — ablation of §5.3: topological vs flat addressing.

"To facilitate routing, we would want to route over a topology that is
perhaps more stable [...] internal addresses should be topological
(location-dependent)."

One DIF over an ``n × n`` grid whose quadrants are the "regions" (a grid
gives every member several distinct next hops, so aggregation is earned,
not a default-route freebie).  Three addressing policies at enrollment:

* **flat** — opaque counters; the forwarding table cannot aggregate: one
  entry per destination.
* **topological** — each member's address is prefixed with its region
  path (the region hint comes from where it physically enrolls); entries
  whose region shares a next hop collapse into one prefix entry.
* **mismatched** — topological *format* but hints assigned round-robin,
  deliberately uncorrelated with location: shows aggregation needs
  addresses that follow the topology, not merely structured bits.

Measured per member: raw table entries vs aggregated prefix entries, and
(as a sanity check) that longest-prefix lookup over the aggregated table
agrees with the raw table for every destination.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..core import (Dif, DifPolicies, FlatAddressing, Orchestrator,
                    TopologicalAddressing, add_shims,
                    aggregate_forwarding_table, build_dif_over, lookup_aggregated,
                    make_systems, shim_between)
from ..sim.network import Network
from ..sweeps import Job


def build_grid_dif(side: int, policy: str, seed: int = 1):
    """One DIF over a ``side × side`` grid; region hints per the policy.

    Regions are the grid quadrants; the quadrant label is the region hint
    a member presents at enrollment (its management knows where it is).
    """
    network = Network(seed=seed)
    matrix = network.build_grid(side, side, delay=0.001)
    systems = make_systems(network)
    add_shims(systems, network)

    def quadrant(row: int, col: int) -> int:
        return (2 if row >= (side + 1) // 2 else 0) + (
            1 if col >= (side + 1) // 2 else 0) + 1

    adjacencies = []
    for row in range(side):
        for col in range(side):
            if col + 1 < side:
                adjacencies.append((matrix[row][col], matrix[row][col + 1],
                                    shim_between(network, matrix[row][col],
                                                 matrix[row][col + 1])))
            if row + 1 < side:
                adjacencies.append((matrix[row][col], matrix[row + 1][col],
                                    shim_between(network, matrix[row][col],
                                                 matrix[row + 1][col])))

    if policy == "flat":
        addressing = FlatAddressing()
        region_hints: Dict[str, List[int]] = {}
    elif policy == "topological":
        addressing = TopologicalAddressing()
        region_hints = {matrix[row][col]: [quadrant(row, col)]
                        for row in range(side) for col in range(side)}
    elif policy == "mismatched":
        addressing = TopologicalAddressing()
        # structured addresses, but hints genuinely uncorrelated with
        # location: a seeded shuffle of the quadrant labels
        labels = [(index % 4) + 1 for index in range(side * side)]
        network.streams.stream("a1-mismatch").shuffle(labels)
        region_hints = {}
        for index, (row, col) in enumerate(
                (r, c) for r in range(side) for c in range(side)):
            region_hints[matrix[row][col]] = [labels[index]]
    else:
        raise ValueError(f"unknown policy {policy!r}")

    dif = Dif("net", DifPolicies(addressing=addressing, keepalive_interval=2.0,
                                 refresh_interval=None))
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, dif, systems, adjacencies=adjacencies,
                   bootstrap=matrix[0][0], region_hints=region_hints,
                   settle=1.0)
    orchestrator.run(timeout=600)
    network.run(until=network.engine.now + 1.0)
    return network, systems, dif


def run_policy(policy: str, side: int = 4, seed: int = 1) -> Dict[str, Any]:
    """One row of the A1 table."""
    network, systems, dif = build_grid_dif(side, policy, seed)
    raw_sizes: List[int] = []
    aggregated_sizes: List[int] = []
    lookups_consistent = True
    for ipcp in dif.members().values():
        table = ipcp.routing.table()
        raw_sizes.append(len(table))
        entries = aggregate_forwarding_table(table)
        aggregated_sizes.append(len(entries))
        for destination, next_hop in table.items():
            if lookup_aggregated(entries, destination) != next_hop:
                lookups_consistent = False
    members = len(raw_sizes)
    return {
        "policy": policy,
        "members": members,
        "raw_mean": sum(raw_sizes) / members,
        "raw_max": max(raw_sizes),
        "aggregated_mean": round(sum(aggregated_sizes) / members, 2),
        "aggregated_max": max(aggregated_sizes),
        "compression": round(sum(raw_sizes) / max(1, sum(aggregated_sizes)), 2),
        "lookups_consistent": lookups_consistent,
    }


def run_comparison(side: int = 4, seed: int = 1) -> List[Dict[str, Any]]:
    """The A1 table: all three policies."""
    return [run_policy(policy, side, seed)
            for policy in ("flat", "topological", "mismatched")]


def iter_jobs(side: int = 5, seed: int = 1) -> List[Job]:
    """The A1 table as data: one job per addressing policy."""
    return [Job("repro.experiments.a1_addressing:run_policy",
                kwargs={"policy": policy, "side": side, "seed": seed},
                group="a1", label=f"a1 {policy}")
            for policy in ("flat", "topological", "mismatched")]
