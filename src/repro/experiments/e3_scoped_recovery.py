"""E3 — Figure 3 / §6.2: repeating the IPC layer over a lossy wireless scope.

What the figure shows: a host-to-host DIF riding DIFs "tailored to the
wireless component"; the claim (§6.2) is that an extra narrow-scope layer,
with policies tuned to that range, manages the underlying channel better
than one wide-scope layer can — today's kludge being performance-enhancing
proxies.

Setup: ``sender — (wired) — border — (lossy wireless) — mobile``.

* **e2e** configuration: one internet-wide DIF over both links.  Its EFCP
  policies must suit a wide operating range, so its retransmission floor
  is conservative (``rto_min = 0.2 s``, like practical TCP); every wireless
  loss costs an end-to-end recovery.
* **scoped** configuration: the same internet DIF, plus a 2-member wireless
  DIF over the lossy hop with aggressive local recovery
  (``rto_min = 5 ms``).  The internet DIF's border–mobile adjacency rides a
  *reliable* flow of the wireless DIF, so losses are repaired locally and
  the wide-scope layer almost never notices.

The wired segment has a wide-area delay (default 60 ms one way): the whole
point of §4's "closed-loop control is more effective/stable for shorter
feedback loops" is that an end-to-end recovery costs at least one long RTT
while a local recovery costs one short one.  With a LAN-scale wired delay
both configurations recover cheaply and the layering overhead dominates —
scoping is a *policy for a range*, not a free win, which is itself a §4
claim worth demonstrating (see the bench's ablation row).

Expected shape: goodput of **scoped** degrades slowly with loss; **e2e**
collapses — and the gap widens with loss rate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..apps.filetransfer import FileSender, FileSink
from ..core import RELIABLE, run_until
from ..scenarios.canned import E3_WIRED_BPS as WIRED_BPS
from ..scenarios.canned import E3_WIRELESS_BPS as WIRELESS_BPS
from ..scenarios.canned import e3_scenario
from ..scenarios.runner import build_rina_stack
from ..sim.link import GilbertElliott
from ..sweeps import Job
from .common import goodput_bps


def build_scenario(config: str, seed: int = 1, wired_delay: float = 0.06):
    """Build the stack; returns (network, systems, loss_knob).

    The topology and DIF stack are the declarative scenario spec
    :func:`repro.scenarios.canned.e3_scenario`; this experiment keeps only
    the loss knob and the measurement logic.
    """
    spec = e3_scenario(config, wired_delay=wired_delay)
    built = build_rina_stack(spec, seed=seed)
    network, systems = built.network, built.systems
    # loss injected after the stack settles, through the radio's loss model
    loss_model = network.link_between("border", "mobile").loss
    return network, systems, loss_model


def run_transfer(config: str, loss: float, total_bytes: int = 150_000,
                 seed: int = 1, wired_delay: float = 0.06) -> Dict[str, Any]:
    """One row: transfer ``total_bytes`` under the given wireless loss."""
    network, systems, loss_model = build_scenario(config, seed=seed,
                                                  wired_delay=wired_delay)
    sink = FileSink(systems["mobile"])
    network.run(until=network.engine.now + 0.5)
    loss_model.probability = loss
    sender = FileSender(systems["sender"], total_bytes, qos=RELIABLE)
    run_until(network, lambda: sender.waiter.done(), timeout=15)
    start = (sender.started_at if sender.started_at is not None
             else network.engine.now)
    finished = run_until(network,
                         lambda: sink.transfers_completed >= 1, timeout=600)
    elapsed = (sink.completion_times[0] - start) if finished else float("inf")
    top_retx = _efcp_retransmissions(systems["sender"], "internet")
    row = {
        "config": config,
        "loss": loss,
        "bytes": total_bytes,
        "completed": finished,
        "elapsed_s": elapsed,
        "goodput_mbps": goodput_bps(total_bytes, elapsed) / 1e6,
        "top_layer_retx": top_retx,
    }
    if config == "scoped":
        row["wireless_layer_retx"] = _efcp_retransmissions(systems["border"],
                                                           "wifi")
    return row


def run_bursty(config: str, total_bytes: int = 100_000, seed: int = 1,
               wired_delay: float = 0.06) -> Dict[str, Any]:
    """Companion row: bursty (Gilbert–Elliott) radio instead of uniform loss.

    Deep fades are where local recovery matters most: an end-to-end layer
    pays a WAN round trip per burst, the scoped layer replays the burst
    locally at radio timescales.
    """
    network, systems, loss_model = build_scenario(config, seed=seed,
                                                  wired_delay=wired_delay)
    sink = FileSink(systems["mobile"])
    network.run(until=network.engine.now + 0.5)
    radio = network.link_between("border", "mobile")
    radio.loss = GilbertElliott(p_good_to_bad=0.02, p_bad_to_good=0.3,
                                loss_good=0.01, loss_bad=0.8)
    sender = FileSender(systems["sender"], total_bytes, qos=RELIABLE)
    run_until(network, lambda: sender.waiter.done(), timeout=15)
    start = (sender.started_at if sender.started_at is not None
             else network.engine.now)
    finished = run_until(network,
                         lambda: sink.transfers_completed >= 1, timeout=600)
    elapsed = (sink.completion_times[0] - start) if finished else float("inf")
    return {
        "config": config,
        "loss": "bursty(GE)",
        "bytes": total_bytes,
        "completed": finished,
        "elapsed_s": elapsed,
        "goodput_mbps": goodput_bps(total_bytes, elapsed) / 1e6,
        "top_layer_retx": _efcp_retransmissions(systems["sender"], "internet"),
    }


def run_sweep(losses: List[float], total_bytes: int = 150_000,
              seed: int = 1, wired_delay: float = 0.06) -> List[Dict[str, Any]]:
    """Table: both configurations across the loss sweep."""
    rows = []
    for loss in losses:
        for config in ("e2e", "scoped"):
            rows.append(run_transfer(config, loss, total_bytes=total_bytes,
                                     seed=seed, wired_delay=wired_delay))
    return rows


def iter_jobs(losses: Sequence[float] = (0.0, 0.1, 0.2, 0.3),
              total_bytes: int = 120_000, seed: int = 1,
              bursty: bool = True) -> List[Job]:
    """The E3 table as data: (loss × config) transfer points in the
    serial sweep order, then the two bursty companion rows."""
    jobs = [Job("repro.experiments.e3_scoped_recovery:run_transfer",
                kwargs={"config": config, "loss": loss,
                        "total_bytes": total_bytes, "seed": seed},
                group="e3", label=f"e3 {config} loss={loss}")
            for loss in losses for config in ("e2e", "scoped")]
    if bursty:
        jobs += [Job("repro.experiments.e3_scoped_recovery:run_bursty",
                     kwargs={"config": config, "seed": seed},
                     group="e3", label=f"e3 {config} bursty")
                 for config in ("e2e", "scoped")]
    return jobs


def _efcp_retransmissions(system, dif_name: str) -> int:
    total = 0
    for record in system.ipcp(dif_name).flow_allocator.records().values():
        if record.efcp is not None:
            total += record.efcp.stats.retransmissions
    return total
