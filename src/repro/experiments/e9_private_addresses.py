"""E9 — §6.5 / §6.7: private addresses are the norm, NAT is unnecessary.

Claim: "None of the problems NATs cause in the Internet exist in our
model, even though private addresses are the norm, because there is a
complete addressing architecture."

Setup: ``k`` customer sites hang off a provider core; a public service
sits at a data-centre host.  Every site internally uses **the same**
private address space.

* **IP + NAT** — each site's addresses collide, so its border router must
  NAT.  We measure: translation state at each border (grows with flows),
  port-pool exhaustion (connections refused once the pool is full), and
  unsolicited inbound reachability (the service can never initiate a
  connection to a host behind the NAT).
* **IPC** — each site is its own DIF; *all sites deliberately get
  identical internal addresses* (flat policy starting at 1 — reuse is
  safe because addresses are private to each facility, §3.2).  Hosts also
  join the provider DIF for external flows.  Measured: address values
  reused across sites (maximal), border translation state (zero — the
  border router just relays), inbound flow success (the service allocates
  a flow *to the host's application name*).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..baselines import IpFabric, NatBox, ip, prefix_of
from ..core import (ApplicationName, Dif, DifPolicies, FlatAddressing,
                    FlowWaiter, Orchestrator, add_shims, build_dif_over,
                    make_systems, run_until, shim_between)
from ..sim.network import Network
from ..sweeps import Job


def _site_topology(sites: int, hosts_per_site: int, seed: int = 1) -> Network:
    network = Network(seed=seed)
    network.add_node("core")
    network.add_node("dc")
    network.connect("dc", "core", delay=0.002)
    for site in range(sites):
        border = f"gw{site}"
        network.add_node(border)
        network.connect(border, "core", delay=0.002)
        for host_index in range(hosts_per_site):
            host = f"h{site}_{host_index}"
            network.add_node(host)
            network.connect(host, border, delay=0.001)
    return network


# ----------------------------------------------------------------------
# IP + NAT side
# ----------------------------------------------------------------------
def run_ip_nat(sites: int = 3, hosts_per_site: int = 2,
               flows_per_host: int = 40, port_pool: int = 64,
               seed: int = 1) -> Dict[str, Any]:
    """The NAT world: per-border state, exhaustion, broken inbound.

    Every site runs the *identical* 192.168/16 plan (the whole point of
    private addressing), so the cores cannot route to site interiors and
    each border must translate.
    """
    from ..baselines.sockets import Host

    network = _site_topology(sites, hosts_per_site, seed)
    hosts: Dict[str, Host] = {}
    routers = {"core"} | {f"gw{s}" for s in range(sites)}
    for name, node in network.nodes.items():
        hosts[name] = Host(node, forwarding=name in routers)

    # --- public plan: /30 per core-facing link, from 100.64.0.0 ---
    public_base = ip("100.64.0.0")
    core = hosts["core"]
    core_ifs = list(network.node("core").interfaces())
    gw_public: Dict[str, int] = {}
    for index, interface in enumerate(core_ifs):
        subnet = public_base + 4 * index
        core.ip.add_interface(interface.name, subnet + 1, 30)
        core.ip.add_route(subnet, 30, None, interface.name)
        # figure out who sits at the far end of this link
        far = [n for n in network.nodes
               if n != "core" and any(i.link is interface.link
                                      for i in network.node(n).interfaces())][0]
        far_host = hosts[far]
        far_if = [i for i in network.node(far).interfaces()
                  if i.link is interface.link][0]
        far_host.ip.add_interface(far_if.name, subnet + 2, 30)
        far_host.ip.add_route(subnet, 30, None, far_if.name)
        gw_public[far] = subnet + 2
        far_host.ip.add_route(0, 0, subnet + 1, far_if.name)  # default → core
    server = hosts["dc"]

    # --- private plan: identical per site ---
    private_base = ip("192.168.0.0")
    nats = []
    for site in range(sites):
        gw = hosts[f"gw{site}"]
        for host_index in range(hosts_per_site):
            host = hosts[f"h{site}_{host_index}"]
            link = network.link_between(f"h{site}_{host_index}", f"gw{site}")
            subnet = private_base + 4 * host_index
            host_if = [i for i in network.node(f"h{site}_{host_index}").interfaces()
                       if i.link is link][0]
            gw_if = [i for i in network.node(f"gw{site}").interfaces()
                     if i.link is link][0]
            host.ip.add_interface(host_if.name, subnet + 2, 30)
            gw.ip.add_interface(gw_if.name, subnet + 1, 30)
            host.ip.add_route(subnet, 30, None, host_if.name)
            host.ip.add_route(0, 0, subnet + 1, host_if.name)  # default → gw
            gw.ip.add_route(subnet, 30, None, gw_if.name)
        nats.append(NatBox(gw.ip, private_base, 16, gw_public[f"gw{site}"],
                           port_pool=port_pool))
    # core's connected /30s cover every public endpoint (one hop away);
    # crucially, *nothing* outside a site can route 192.168/16.
    server.tcp.listen(80, lambda conn: None)
    hosts["h0_0"].tcp.listen(8080, lambda conn: None)  # inbound target

    established: List[int] = []
    server_ip = [a for a in server.ip.addresses()][0]
    for site in range(sites):
        for host_index in range(hosts_per_site):
            host = hosts[f"h{site}_{host_index}"]
            for _ in range(flows_per_host):
                conn = host.tcp.connect(host.addr(), server_ip, 80)
                conn.on_connected = lambda: established.append(1)
    network.run(until=30.0)

    # unsolicited inbound: the server can only aim at the border's public
    # address (the interior plan is ambiguous from outside) — no mapping,
    # so the NAT drops it.
    inbound_ok: List[int] = []
    drops_before = sum(nat.drops_no_mapping for nat in nats)
    for site in range(sites):
        conn = server.tcp.connect(server_ip, gw_public[f"gw{site}"], 8080)
        conn.on_connected = lambda: inbound_ok.append(1)
    network.run(until=60.0)

    attempted = sites * hosts_per_site * flows_per_host
    return {
        "world": f"ip+nat(pool={port_pool})",
        "outbound_attempted": attempted,
        "outbound_established": len(established),
        "border_state_total": sum(nat.active_mappings() for nat in nats),
        "pool_exhausted_drops": sum(nat.drops_pool_exhausted for nat in nats),
        "inbound_attempts": sites,
        "inbound_succeeded": len(inbound_ok),
        "inbound_blocked": sum(nat.drops_no_mapping for nat in nats)
        > drops_before,
        "site_addresses_identical": True,
    }


# ----------------------------------------------------------------------
# IPC side
# ----------------------------------------------------------------------
def run_rina(sites: int = 3, hosts_per_site: int = 2,
             flows_per_host: int = 40, seed: int = 1) -> Dict[str, Any]:
    """The DIF world: identical private addresses per site, no middlebox."""
    network = _site_topology(sites, hosts_per_site, seed)
    systems = make_systems(network)
    add_shims(systems, network)
    orchestrator = Orchestrator(network)

    site_difs: List[Dif] = []
    for site in range(sites):
        # every site uses the very same internal address space on purpose
        dif = Dif(f"site{site}", DifPolicies(addressing=FlatAddressing(start=1),
                                             keepalive_interval=2.0,
                                             refresh_interval=None))
        site_difs.append(dif)
        border = f"gw{site}"
        adjacencies = [(f"h{site}_{i}", border,
                        shim_between(network, f"h{site}_{i}", border))
                       for i in range(hosts_per_site)]
        build_dif_over(orchestrator, dif, systems, adjacencies=adjacencies,
                       bootstrap=border, settle=0.2)

    provider = Dif("provider", DifPolicies(keepalive_interval=2.0,
                                           refresh_interval=None))
    adjacencies = [("dc", "core", shim_between(network, "dc", "core"))]
    for site in range(sites):
        adjacencies.append((f"gw{site}", "core",
                            shim_between(network, f"gw{site}", "core")))
        # hosts reach the provider DIF through their site DIF (the border
        # relays) — their provider-IPCP attaches over the site facility
        adjacencies.append((f"h{site}_0", f"gw{site}", f"site{site}"))
    build_dif_over(orchestrator, provider, systems, adjacencies=adjacencies,
                   bootstrap="core", settle=0.5)
    orchestrator.run(timeout=300)

    # the public service, plus one registered app per site's first host
    systems["dc"].register_app(ApplicationName("webservice"),
                               lambda flow: None, dif_names=["provider"])
    inbound_listeners: List = []
    for site in range(sites):
        systems[f"h{site}_0"].register_app(
            ApplicationName(f"site{site}-agent"),
            lambda flow: inbound_listeners.append(flow),
            dif_names=["provider"])
    network.run(until=network.engine.now + 1.0)

    # outbound flows from every first host
    waiters: List[FlowWaiter] = []
    for site in range(sites):
        system = systems[f"h{site}_0"]
        for index in range(flows_per_host):
            flow = system.allocate_flow(
                ApplicationName(f"site{site}-client-{index}"),
                ApplicationName("webservice"), dif_name="provider")
            waiters.append(FlowWaiter(flow))
    run_until(network, lambda: all(w.done() for w in waiters), timeout=120)

    # inbound: the service opens flows toward the site agents *by name*
    inbound_waiters: List[FlowWaiter] = []
    for site in range(sites):
        flow = systems["dc"].allocate_flow(
            ApplicationName("webservice"),
            ApplicationName(f"site{site}-agent"), dif_name="provider")
        inbound_waiters.append(FlowWaiter(flow))
    run_until(network, lambda: all(w.done() for w in inbound_waiters),
              timeout=60)

    # address reuse: identical address values across the site DIFs
    address_sets = [sorted(str(a) for a in dif.members()) for dif in site_difs]
    reused = all(addresses == address_sets[0] for addresses in address_sets)
    attempted = sites * flows_per_host
    return {
        "world": "rina",
        "outbound_attempted": attempted,
        "outbound_established": sum(1 for w in waiters if w.ok),
        "border_state_total": 0,   # borders only relay; no translation table
        "pool_exhausted_drops": 0,
        "inbound_attempts": sites,
        "inbound_succeeded": sum(1 for w in inbound_waiters if w.ok),
        "inbound_blocked": False,
        "site_addresses_identical": reused,
        "site_address_sets": address_sets[0],
    }


def run_comparison(sites: int = 3, hosts_per_site: int = 2,
                   flows_per_host: int = 40, port_pool: int = 64,
                   seed: int = 1) -> List[Dict[str, Any]]:
    """The E9 table: NAT world vs DIF world."""
    return [
        run_ip_nat(sites, hosts_per_site, flows_per_host, port_pool, seed),
        run_rina(sites, hosts_per_site, flows_per_host, seed),
    ]


def iter_jobs(sites: int = 3, hosts_per_site: int = 2,
              flows_per_host: int = 40, port_pool: int = 64,
              seed: int = 1) -> List[Job]:
    """The E9 table as data: the NAT world, then the DIF world."""
    return [
        Job("repro.experiments.e9_private_addresses:run_ip_nat",
            kwargs={"sites": sites, "hosts_per_site": hosts_per_site,
                    "flows_per_host": flows_per_host, "port_pool": port_pool,
                    "seed": seed},
            group="e9", label="e9 ip+nat"),
        Job("repro.experiments.e9_private_addresses:run_rina",
            kwargs={"sites": sites, "hosts_per_site": hosts_per_site,
                    "flows_per_host": flows_per_host, "seed": seed},
            group="e9", label="e9 rina"),
    ]
