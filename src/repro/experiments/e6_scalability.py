"""E6 — §6.5: "this repeating structure scales indefinitely".

The claim: because each DIF has private internal addresses and management
policies that bound its membership, per-system routing state and the scope
of routing updates stay bounded as the internet grows — versus one global
layer where both grow with the whole network.

Setup: ``k`` regions of ``m`` systems each (a star around a regional
border router), all borders joined by a backbone ring-of-star around a
core.  Two configurations over identical physical plants:

* **flat** — one DIF containing every system: table size per member is
  O(n); a single link flap floods LSAs to all n members.
* **recursive** — one DIF per region (m+1 members), one backbone DIF
  (k+1 members), and a host-to-host DIF only for the systems that
  actually talk end to end (Fig 3's "3rd-level host-to-host DIF").  A
  host's state is O(m); a border's is O(m + k); a link flap floods only
  within its region.

Measured per configuration: mean/max routing-table entries per system,
total RIB-ish state, and the number of systems that receive at least one
routing update when one access link flaps.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from ..apps.echo import EchoClient, EchoServer
from ..core import (Dif, DifPolicies, Orchestrator, add_shims, build_dif_over,
                    make_systems, run_until, shim_between)
from ..sim.network import Network
from ..sweeps import Job

#: The scale tier: named (regions, hosts/region) sizes the hot-path work
#: opened up.  ``large`` is 1,021 systems — the "scales indefinitely"
#: claim exercised at three orders of magnitude.
SCALE_SIZES: Dict[str, Tuple[int, int]] = {
    "small": (5, 10),      # 56 systems
    "medium": (10, 20),    # 211 systems
    "large": (20, 50),     # 1,021 systems
}

#: Flood-only tier sizes: the frame-level flooding data path carries no
#: per-member control plane, so it reaches plants the full stack cannot.
#: ``xlarge`` is the columnar-engine acceptance tier — 100,001 systems
#: (500 regions x 199 hosts, plus borders and the core), built and
#: flooded in one process.
FLOOD_SIZES: Dict[str, Tuple[int, int]] = dict(SCALE_SIZES,
                                               xlarge=(500, 199))

#: Announcement origins per flood tier.  ``None`` (the default) means
#: every node announces — the initial-LSA storm, quadratic in plant
#: size and infeasible at 100k systems (10^10 deliveries).  The xlarge
#: tier instead floods from a sparse, evenly spread set of origins: the
#: steady-state re-origination trickle of a built plant, linear per
#: origin, still touching every link and every boundary.
FLOOD_TIER_ORIGINS: Dict[str, Optional[int]] = {"xlarge": 8}


def _peak_mem_mb() -> Optional[float]:
    """Process peak-RSS high-water mark in MB, or ``None`` where the
    platform cannot report one.  Monotonic over a process lifetime — a
    scale row records the high-water mark *as of that row*, which for
    the ascending tier order means the largest plant's row carries its
    own peak.

    ``resource`` is imported lazily: the module does not exist off
    POSIX, and a top-level import would take the whole experiments
    package down with it.  ``ru_maxrss`` is kilobytes on Linux but
    *bytes* on macOS, so the divisor follows ``sys.platform``.
    """
    try:
        import resource
    except ImportError:
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return round(rss / divisor, 1)


def _region_names(region: int, hosts: int) -> Tuple[str, List[str]]:
    border = f"border{region}"
    return border, [f"h{region}_{i}" for i in range(hosts)]


def build_physical(regions: int, hosts_per_region: int, seed: int = 1) -> Network:
    """k regional stars joined by a core node."""
    network = Network(seed=seed)
    network.add_node("core")
    for region in range(regions):
        border, hosts = _region_names(region, hosts_per_region)
        network.add_node(border)
        network.connect(border, "core", delay=0.002)
        for host in hosts:
            network.add_node(host)
            network.connect(host, border, delay=0.001)
    return network


def _policies() -> DifPolicies:
    return DifPolicies(keepalive_interval=0.5, dead_factor=4, spf_delay=0.02,
                       refresh_interval=None)


def build_flat(regions: int, hosts_per_region: int, seed: int = 1):
    """One DIF over everything."""
    network = build_physical(regions, hosts_per_region, seed)
    systems = make_systems(network)
    add_shims(systems, network)
    dif = Dif("flat", _policies())
    adjacencies = []
    for region in range(regions):
        border, hosts = _region_names(region, hosts_per_region)
        adjacencies.append((border, "core", shim_between(network, border, "core")))
        for host in hosts:
            adjacencies.append((host, border, shim_between(network, host, border)))
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, dif, systems, adjacencies=adjacencies,
                   bootstrap="core", settle=1.0)
    orchestrator.run(timeout=600)
    return network, systems, {"flat": dif}


def build_recursive(regions: int, hosts_per_region: int, seed: int = 1,
                    talkers: int = 2):
    """Region DIFs + backbone DIF + a host-to-host DIF for the talkers."""
    network = build_physical(regions, hosts_per_region, seed)
    systems = make_systems(network)
    add_shims(systems, network)
    orchestrator = Orchestrator(network)
    difs: Dict[str, Dif] = {}

    for region in range(regions):
        border, hosts = _region_names(region, hosts_per_region)
        dif = Dif(f"region{region}", _policies())
        difs[str(dif.name)] = dif
        adjacencies = [(host, border, shim_between(network, host, border))
                       for host in hosts]
        build_dif_over(orchestrator, dif, systems, adjacencies=adjacencies,
                       bootstrap=border, settle=0.3)

    backbone = Dif("backbone", _policies())
    difs["backbone"] = backbone
    adjacencies = [(f"border{region}", "core",
                    shim_between(network, f"border{region}", "core"))
                   for region in range(regions)]
    build_dif_over(orchestrator, backbone, systems, adjacencies=adjacencies,
                   bootstrap="core", settle=0.3)

    # the host-to-host DIF: first host of region 0 talks to first host of
    # the last region, through their borders (adjacencies ride the region
    # DIFs and the backbone)
    top = Dif("h2h", _policies())
    difs["h2h"] = top
    src = f"h0_0"
    dst = f"h{regions - 1}_0"
    build_dif_over(orchestrator, top, systems, adjacencies=[
        (src, "border0", "region0"),
        ("border0", f"border{regions - 1}", "backbone"),
        (f"border{regions - 1}", dst, f"region{regions - 1}")],
        bootstrap="border0", settle=0.3)
    orchestrator.run(timeout=600)
    return network, systems, difs


def _state_stats(systems, difs: Dict[str, Dif]) -> Dict[str, float]:
    per_system: Dict[str, int] = {}
    for dif in difs.values():
        for ipcp in dif.members().values():
            per_system[ipcp.system_name] = (
                per_system.get(ipcp.system_name, 0) + ipcp.routing.table_size())
    sizes = list(per_system.values())
    return {
        "mean_table": sum(sizes) / len(sizes),
        "max_table": max(sizes),
        "total_state": sum(sizes),
    }


def _flap_scope(network: Network, systems, difs: Dict[str, Dif],
                link_name: str) -> int:
    """Fail+repair one access link; count systems receiving an update."""
    before = {}
    for dif in difs.values():
        for ipcp in dif.members().values():
            before[(str(dif.name), ipcp.system_name)] = ipcp.routing.lsas_received
    link = network.links[link_name]
    link.fail()
    network.run(until=network.engine.now + 4.0)
    link.repair()
    network.run(until=network.engine.now + 4.0)
    touched = set()
    for dif in difs.values():
        for ipcp in dif.members().values():
            key = (str(dif.name), ipcp.system_name)
            if ipcp.routing.lsas_received > before.get(key, 0):
                touched.add(ipcp.system_name)
    return len(touched)


def run_ip_rip(regions: int, hosts_per_region: int,
               seed: int = 1, update_interval: float = 1.0) -> Dict[str, Any]:
    """The baseline row: one global distance-vector IGP (RIP-style).

    The flat-IP world's analogue of the flat DIF: every router carries a
    route per subnet, periodic full-table updates flow everywhere, and a
    link flap eventually touches every table.
    """
    from ..baselines import IpFabric
    from ..baselines.rip import run_rip_network
    network = build_physical(regions, hosts_per_region, seed)
    routers = ["core"] + [f"border{r}" for r in range(regions)]
    fabric = IpFabric(network, routers=routers)
    for host in fabric.hosts.values():
        host.ip.clear_routes()
    daemons = run_rip_network(fabric, update_interval=update_interval)
    network.run(until=10 * update_interval)
    sizes = [daemon.table_size() for daemon in daemons.values()]
    updates_before = sum(d.updates_sent for d in daemons.values())
    window = 5 * update_interval
    start = network.engine.now
    # steady-state update cost over a window
    network.run(until=start + window)
    updates_rate = (sum(d.updates_sent for d in daemons.values())
                    - updates_before) / window
    # flap scope: whose table changes after an access link flaps
    def snapshot():
        return {name: {key: (r.metric, r.next_hop)
                       for key, r in d._routes.items()}
                for name, d in daemons.items()}
    before = snapshot()
    link = network.link_between("h0_1", "border0")
    link.fail()
    network.run(until=network.engine.now + 8 * update_interval)
    during = snapshot()   # the failure's footprint across tables
    link.repair()
    network.run(until=network.engine.now + 8 * update_interval)
    touched = sum(1 for name in daemons if before[name] != during[name])
    n = 1 + regions * (1 + hosts_per_region)
    return {
        "config": "ip+rip",
        "systems": n,
        "regions": regions,
        "mean_table": round(sum(sizes) / len(sizes), 2),
        "max_table": max(sizes),
        "total_state": sum(sizes),
        "flap_update_scope": touched,
        "updates_per_s": round(updates_rate, 1),
    }


def run_config(config: str, regions: int, hosts_per_region: int,
               seed: int = 1) -> Dict[str, Any]:
    """One row of the E6 table."""
    if config == "flat":
        network, systems, difs = build_flat(regions, hosts_per_region, seed)
    elif config == "recursive":
        network, systems, difs = build_recursive(regions, hosts_per_region, seed)
    elif config == "ip+rip":
        return run_ip_rip(regions, hosts_per_region, seed)
    else:
        raise ValueError(f"unknown config {config!r}")
    n = 1 + regions * (1 + hosts_per_region)
    stats = _state_stats(systems, difs)
    scope = _flap_scope(network, systems, difs,
                        network.link_between("h0_1", "border0").name)
    row = {
        "config": config,
        "systems": n,
        "regions": regions,
        "mean_table": round(stats["mean_table"], 2),
        "max_table": stats["max_table"],
        "total_state": stats["total_state"],
        "flap_update_scope": scope,
    }
    return row


def run_scale(config: str, regions: int, hosts_per_region: int,
              seed: int = 1) -> Dict[str, Any]:
    """One scale-tier row: build the stack, record wall-clock and
    events/sec alongside the routing-state metrics.

    Unlike :func:`run_config` this is a *performance* row — it exists so
    hot-path regressions show up in the bench JSON as a falling
    ``events_per_s``, not as a silently slower CI.
    """
    if config == "flat":
        builder = build_flat
    elif config == "recursive":
        builder = build_recursive
    else:
        raise ValueError(f"unknown scale config {config!r}")
    started = time.perf_counter()
    network, systems, difs = builder(regions, hosts_per_region, seed)
    build_wall = time.perf_counter() - started
    stats = _state_stats(systems, difs)
    scope = _flap_scope(network, systems, difs,
                        network.link_between("h0_1", "border0").name)
    wall = time.perf_counter() - started
    events = network.engine.events_processed
    members = [ipcp for dif in difs.values()
               for ipcp in dif.members().values()]
    reflooded = sum(ipcp.routing.lsas_reflooded for ipcp in members)
    return {
        "config": f"{config}-scale",
        "systems": 1 + regions * (1 + hosts_per_region),
        "regions": regions,
        "mean_table": round(stats["mean_table"], 2),
        "max_table": stats["max_table"],
        "total_state": stats["total_state"],
        "flap_update_scope": scope,
        "lsas_reflooded": reflooded,
        # the lazy-SPF summary: how much Dijkstra the PR-2 laziness
        # avoided across every member of this tier's stack
        "spf_runs": sum(ipcp.routing.spf_runs for ipcp in members),
        "spf_skipped": sum(ipcp.routing.spf_skipped for ipcp in members),
        "spf_partial_skips": sum(ipcp.routing.spf_partial_skips
                                 for ipcp in members),
        "build_s": round(build_wall, 2),
        "wall_s": round(wall, 2),
        "events": events,
        "events_per_s": int(events / wall) if wall > 0 else 0,
        "peak_mem_mb": _peak_mem_mb(),
    }


def run_scale_tier(tiers: List[str], seed: int = 1) -> List[Dict[str, Any]]:
    """Scale rows for the named :data:`SCALE_SIZES` tiers, executed
    in-process (:func:`iter_scale_jobs` is the single source of the
    tier enumeration)."""
    return [row for job in iter_scale_jobs(tiers, seed)
            for row in job.run()]


def run_sweep(sizes: List[Tuple[int, int]], seed: int = 1) -> List[Dict[str, Any]]:
    """Table: (regions, hosts/region) pairs, both configurations."""
    rows = []
    for regions, hosts in sizes:
        rows.append(run_config("flat", regions, hosts, seed))
        rows.append(run_config("recursive", regions, hosts, seed))
        rows.append(run_config("ip+rip", regions, hosts, seed))
    return rows


def iter_jobs(sizes: List[Tuple[int, int]] = ((3, 4), (4, 8)),
              seed: int = 1) -> List[Job]:
    """The E6 table as data: per size, the flat, recursive, and ip+rip
    configurations (the :func:`run_sweep` row order)."""
    return [Job("repro.experiments.e6_scalability:run_config",
                kwargs={"config": config, "regions": regions,
                        "hosts_per_region": hosts, "seed": seed},
                group="e6", label=f"e6 {config} {regions}x{hosts}")
            for regions, hosts in sizes
            for config in ("flat", "recursive", "ip+rip")]


def iter_scale_jobs(tiers: List[str] = ("small", "medium", "large"),
                    seed: int = 1) -> List[Job]:
    """The scale tier as data: flat at the small size (the quadratic
    baseline), recursive at every requested tier — the
    :func:`run_scale_tier` row order.  Scale rows carry wall-clock
    fields (:data:`repro.sweeps.WALL_CLOCK_KEYS`), so only their
    deterministic columns are covered by serial equivalence."""
    jobs = []
    for tier in tiers:
        if tier not in SCALE_SIZES:
            raise ValueError(f"unknown scale tier {tier!r}; "
                             f"known: {', '.join(SCALE_SIZES)}")
        regions, hosts = SCALE_SIZES[tier]
        if tier == "small":
            jobs.append(Job("repro.experiments.e6_scalability:run_scale",
                            kwargs={"config": "flat", "regions": regions,
                                    "hosts_per_region": hosts, "seed": seed},
                            group="e6-scale", label=f"e6-scale flat {tier}"))
        jobs.append(Job("repro.experiments.e6_scalability:run_scale",
                        kwargs={"config": "recursive", "regions": regions,
                                "hosts_per_region": hosts, "seed": seed},
                        group="e6-scale", label=f"e6-scale recursive {tier}"))
    return jobs


def _hosts_per_region_list(regions: int, hosts_per_region) -> List[int]:
    """Normalize the per-region host count: an int plant is uniform, a
    sequence is a skewed plant (one entry per region)."""
    if isinstance(hosts_per_region, int):
        return [hosts_per_region] * regions
    counts = [int(count) for count in hosts_per_region]
    if len(counts) != regions:
        raise ValueError(f"skewed plant needs {regions} host counts, "
                         f"got {len(counts)}")
    return counts


def build_flood_spec(regions: int, hosts_per_region):
    """The E6 physical plant as a pure-data
    :class:`~repro.shard.plan.NetworkSpec` (same shape as
    :func:`build_physical`, shardable by region).

    ``hosts_per_region`` may be a sequence (one count per region) to
    build a *skewed* plant — the shape the cost-weighted shard balance
    exists for.
    """
    from ..shard import LinkSpec, NetworkSpec
    counts = _hosts_per_region_list(regions, hosts_per_region)
    nodes = ["core"]
    links = []
    for region in range(regions):
        border, hosts = _region_names(region, counts[region])
        nodes.append(border)
        links.append(LinkSpec(a=border, b="core",
                              name=f"{border}--core", delay=0.002))
        for host in hosts:
            nodes.append(host)
            links.append(LinkSpec(a=host, b=border,
                                  name=f"{host}--{border}", delay=0.001))
    return NetworkSpec(nodes=tuple(nodes), links=tuple(links))


def region_weights(regions: int, hosts_per_region) -> List[float]:
    """Expected event volume per region, up to a constant: flood and
    control-plane work alike scale with a region's link count (hosts
    plus the border's backbone uplink)."""
    return [float(count + 1)
            for count in _hosts_per_region_list(regions, hosts_per_region)]


def balanced_assignment(regions: int, hosts_per_region,
                        shards: int) -> Dict[str, int]:
    """Greedy cost-weighted partitioner (the adaptive shard balance).

    Regions are weighed by expected event volume and placed
    longest-processing-time-first onto the least-loaded shard; the
    core — the backbone — is pinned with its heaviest talker region, so
    the busiest shard is not also the one paying every relay.  On a
    uniform plant this degenerates to a round-robin-equivalent spread;
    on a skewed plant it tightens the round barrier (the per-round wait
    is the *maximum* shard's work, which LPT minimizes to within 4/3 of
    optimal).
    """
    shards = max(1, min(shards, regions))
    weights = region_weights(regions, hosts_per_region)
    order = sorted(range(regions), key=lambda r: (-weights[r], r))
    load = [0.0] * shards
    region_shard: Dict[int, int] = {}
    for region in order:
        target = min(range(shards), key=lambda s: (load[s], s))
        region_shard[region] = target
        load[target] += weights[region]
    counts = _hosts_per_region_list(regions, hosts_per_region)
    assignment = {"core": region_shard[order[0]]}
    for region in range(regions):
        border, hosts = _region_names(region, counts[region])
        for node in [border] + hosts:
            assignment[node] = region_shard[region]
    return assignment


def flood_assignment(regions: int, hosts_per_region,
                     shards: int, balance: bool = False) -> Dict[str, int]:
    """Node → shard: region ``r`` (border + hosts) lands on shard
    ``r % shards``; the core rides with shard 0, so every cut link is a
    border–core backbone link (delay 0.002 — the lookahead).  With
    ``balance`` the modulo spread is replaced by the cost-weighted
    :func:`balanced_assignment`."""
    if balance:
        return balanced_assignment(regions, hosts_per_region, shards)
    shards = max(1, min(shards, regions))
    counts = _hosts_per_region_list(regions, hosts_per_region)
    assignment = {"core": 0}
    for region in range(regions):
        border, hosts = _region_names(region, counts[region])
        for node in [border] + hosts:
            assignment[node] = region % shards
    return assignment


#: The stateful tier: (regions, hosts/region) per named size.  Smaller
#: than :data:`SCALE_SIZES` deliberately — a stateful system runs the
#: whole control plane (enrollment, RIEP, flooding, keepalives), so a
#: "small" stateful plant already moves more PDUs than a large flood.
STATEFUL_SIZES: Dict[str, Tuple[int, int]] = {
    "small": (3, 4),       # 16 systems
    "medium": (6, 6),      # 43 systems
    "large": (10, 10),     # 111 systems
}

#: Stateful enrollment schedule constants (simulated seconds).  Odd
#: spacings, co-prime with the plant's 1/2 ms hop delays, keep causal
#: chains tie-free (see repro.shard.stateful).  Borders join first
#: (their authenticator is the bootstrap core), hosts after a margin
#: that covers the slowest border handshake.
STATEFUL_BORDER_START = 0.0511
STATEFUL_BORDER_SPACING = 0.0511
STATEFUL_HOST_SPACING = 0.0127
STATEFUL_HOST_MARGIN = 0.1003
STATEFUL_SETTLE = 1.2007

#: Sparse-traffic variant knobs: hosts enroll six times farther apart
#: and keepalives tick four times slower, so the plant spends most of
#: its simulated time with activity in only one or two regions at once.
#: This is the regime the per-channel grant protocol exists for — the
#: round-count regression test pins its advantage over global-min here
#: — and the values stay odd / co-prime with the 1/2 ms hop delays so
#: the tie-freeness precondition holds (see repro.shard.stateful).
STATEFUL_SPARSE_HOST_SPACING = 0.0763
STATEFUL_SPARSE_KEEPALIVE = 2.0113
STATEFUL_SPARSE_SETTLE = 4.2007


def build_stateful_workload(regions: int, hosts_per_region, *,
                            host_spacing: float = STATEFUL_HOST_SPACING,
                            settle: float = STATEFUL_SETTLE,
                            policies: Optional[Dict[str, float]] = None,
                            ) -> Dict[str, Any]:
    """The flat configuration's *control plane* as a pure-data workload:
    bootstrap at the core, every border then every host enrolling at
    fixed staggered times, unique topological hints per system (so
    address assignment is a pure function of the joiner — the property
    that lets each shard's Dif replica assign independently; see
    :mod:`repro.shard.stateful`).

    ``host_spacing`` / ``settle`` / ``policies`` reshape the traffic
    density without touching the plant: the sparse tier
    (:func:`build_sparse_stateful_workload`) stretches them so most
    regions are idle at any instant.
    """
    from ..shard import stateful_workload
    counts = _hosts_per_region_list(regions, hosts_per_region)
    hints: Dict[str, Tuple[int, ...]] = {"core": (1,)}
    enrollments: List[Tuple[str, str, str, float]] = []
    for region in range(regions):
        border, _hosts = _region_names(region, counts[region])
        hints[border] = (2 + region, 0)
        enrollments.append((border, "core", f"shim:{border}--core",
                            STATEFUL_BORDER_START
                            + region * STATEFUL_BORDER_SPACING))
    host_start = (STATEFUL_BORDER_START + regions * STATEFUL_BORDER_SPACING
                  + STATEFUL_HOST_MARGIN)
    index = 0
    for region in range(regions):
        border, hosts = _region_names(region, counts[region])
        for host_index, host in enumerate(hosts):
            hints[host] = (2 + region, 1 + host_index)
            enrollments.append((host, border, f"shim:{host}--{border}",
                                host_start + index * host_spacing))
            index += 1
    until = host_start + index * host_spacing + settle
    return stateful_workload("flat", "core", enrollments, hints,
                             policies=policies, until=until)


def build_sparse_stateful_workload(regions: int,
                                   hosts_per_region) -> Dict[str, Any]:
    """The sparse-traffic stateful plant: same topology and causal
    structure as :func:`build_stateful_workload`, but enrollments are
    spread out and keepalives slowed so that at any simulated instant
    only a couple of regions have work inside the old global-min
    window.  Global-min rounds crawl through such a plant (every region
    is stepped every 2 ms window regardless); per-channel grants let
    the idle regions sit out — this workload is the regression anchor
    for that separation."""
    return build_stateful_workload(
        regions, hosts_per_region,
        host_spacing=STATEFUL_SPARSE_HOST_SPACING,
        settle=STATEFUL_SPARSE_SETTLE,
        policies={"keepalive_interval": STATEFUL_SPARSE_KEEPALIVE})


def _stateful_row(node_stats: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The deterministic columns shared by every stateful row: RIB
    fingerprint over all members (must be invariant across shard
    counts) and the aggregate routing state."""
    import hashlib
    text = "\n".join(repr(row) for row in node_stats)
    return {
        "table_rows": sum(row["table_size"] for row in node_stats),
        "lsas_received": sum(row["lsas_received"] for row in node_stats),
        "rib_sha256": hashlib.sha256(text.encode()).hexdigest()[:16],
    }


def run_stateful_scale(regions: int, hosts_per_region: int, shards: int = 1,
                       seed: int = 1, mode: str = "auto",
                       balance: bool = False, sparse: bool = False,
                       protocol: str = "per-channel",
                       transport: str = "packed") -> Dict[str, Any]:
    """One stateful-tier row: the flat configuration's *control plane*
    (enrollment + RIEP + LSA flooding + keepalives) run unsharded
    (``shards=1``) or region-sharded over worker processes.

    The deterministic columns — enrolled members, total table rows,
    LSAs received, and the combined RIB fingerprint — must be
    bit-invariant across shard counts *and* across protocols;
    ``tests/test_shard_stateful.py`` pins the 2-shard split
    row-identical (float enrollment timestamps included) to the
    unsharded run.  ``sparse`` swaps in the sparse-traffic workload
    (:func:`build_sparse_stateful_workload`); ``protocol`` selects the
    round rule (``region_steps`` is where the protocols separate — see
    :class:`repro.shard.coordinator.ShardRunResult`); ``transport``
    selects the relay wire format (``ring`` moves packed frame batches
    through shared-memory SPSC rings in process mode).
    """
    from ..shard import RegionPlan, run_sharded, run_unsharded_stateful
    spec = build_flood_spec(regions, hosts_per_region)
    build = (build_sparse_stateful_workload if sparse
             else build_stateful_workload)
    workload = build(regions, hosts_per_region)
    until = workload["until"]
    n = len(spec.nodes)
    started = time.perf_counter()
    if shards <= 1:
        reference = run_unsharded_stateful(spec, workload, seed=seed,
                                           until=until)
        wall = time.perf_counter() - started
        row = {
            "config": "flat-stateful" + ("-sparse" if sparse else ""),
            "systems": n,
            "regions": regions,
            "shards": 1,
            "protocol": "serial",
            "transport": "none",
            "enrolled": reference["enrolled"],
            "rounds": 1,
            "grants": 1,
            "region_steps": 1,
            "frames_relayed": 0,
            "relay_batches": 0,
            "relay_bytes": 0,
        }
        row.update(_stateful_row(reference["node_stats"]))
        events = reference["events"]
    else:
        plan = RegionPlan(spec, flood_assignment(regions, hosts_per_region,
                                                 shards, balance=balance))
        result = run_sharded(plan, workload, seed=seed, mode=mode,
                             protocol=protocol, transport=transport,
                             until=until, collect_traces=False)
        wall = time.perf_counter() - started
        row = {
            "config": "flat-stateful" + ("-sparse" if sparse else ""),
            "systems": n,
            "regions": regions,
            "shards": len(plan.regions),
            "protocol": result.protocol,
            "transport": transport,
            "enrolled": sum(s["enrolled"] for s in result.shards),
            "rounds": result.rounds,
            "grants": result.grants,
            "region_steps": result.steps,
            "frames_relayed": result.frames_relayed,
            "relay_batches": result.relay_batches,
            "relay_bytes": result.relay_bytes,
        }
        row.update(_stateful_row(result.node_stats))
        events = result.events
    row.update({
        "wall_s": round(wall, 2),
        "events": events,
        "events_per_s": int(events / wall) if wall > 0 else 0,
        "peak_mem_mb": _peak_mem_mb(),
    })
    return row


def iter_stateful_jobs(tiers: List[str] = ("small", "medium"),
                       shards: int = 2, seed: int = 1,
                       balance: bool = False,
                       protocol: str = "per-channel",
                       transport: str = "packed") -> List[Job]:
    """The stateful sharded tier as data: per tier, the single-engine
    reference row and the ``shards``-way partitioned row (under the
    requested round ``protocol`` and relay ``transport``).  Same
    dispatch caveats as :func:`iter_flood_jobs` (each job is one whole
    sharded run)."""
    jobs = []
    for tier in tiers:
        if tier not in STATEFUL_SIZES:
            raise ValueError(f"unknown stateful tier {tier!r}; "
                             f"known: {', '.join(STATEFUL_SIZES)}")
        regions, hosts = STATEFUL_SIZES[tier]
        for count in dict.fromkeys((1, shards)):
            jobs.append(Job(
                "repro.experiments.e6_scalability:run_stateful_scale",
                kwargs={"regions": regions, "hosts_per_region": hosts,
                        "shards": count, "seed": seed, "balance": balance,
                        "protocol": protocol, "transport": transport},
                group="e6-stateful",
                label=f"e6-stateful flat {tier} x{count}"))
    return jobs


def stateful_trace_digests(regions: int, hosts_per_region: int,
                           shards: int, seed: int = 0) -> List[Dict[str, Any]]:
    """Per-shard trace SHA-256s of a canned stateful plant (job target
    for the golden-fingerprint checks, the stateful analogue of
    :func:`shard_trace_digests`)."""
    from ..shard import RegionPlan, run_sharded
    spec = build_flood_spec(regions, hosts_per_region)
    workload = build_stateful_workload(regions, hosts_per_region)
    plan = RegionPlan(spec, flood_assignment(regions, hosts_per_region,
                                             shards))
    result = run_sharded(plan, workload, seed=seed,
                         until=workload["until"])
    return [{"shard": s["shard"], "sha256": s["trace_sha256"]}
            for s in result.shards]


def run_flood_scale(regions: int, hosts_per_region: int, shards: int = 1,
                    seed: int = 1, mode: str = "auto",
                    balance: bool = False,
                    origins: Optional[int] = None) -> Dict[str, Any]:
    """One sharded-tier row: the flat configuration's flooding fan-out
    (every system originates one LSA-style announcement, flooded to all
    n systems) at frame level, partitioned over ``shards`` region
    engines.

    This is the data path that makes the flat DIF at 20×50 cost minutes
    — modelled without the enrollment control plane so it can be cut at
    DIF boundaries and measured at full scale.  ``shards=1`` is the
    single-engine reference row; delivery counts are invariant across
    shard counts (and the 2-shard split is pinned delivery-row-identical
    to the unsharded run in ``tests/test_shard.py``).

    ``origins`` switches the workload from the quadratic every-node
    storm to :func:`repro.shard.sparse_announce` with that many evenly
    spread origins — the 100k-system tier's regime (see
    :data:`FLOOD_TIER_ORIGINS`).  Deliveries are then
    ``origins * (n - 1)`` instead of ``n * (n - 1)``.
    """
    from ..shard import (RegionPlan, all_nodes_announce, run_sharded,
                         run_unsharded, sparse_announce)
    spec = build_flood_spec(regions, hosts_per_region)
    workload = (all_nodes_announce(spec.nodes) if origins is None
                else sparse_announce(spec.nodes, origins))
    n = 1 + regions * (1 + hosts_per_region)
    started = time.perf_counter()
    if shards <= 1:
        reference = run_unsharded(spec, workload, seed=seed,
                                  collect_rows=False)
        wall = time.perf_counter() - started
        events = reference["events"]
        row = {
            "config": "flat-flood",
            "systems": n,
            "regions": regions,
            "shards": 1,
            "origins": origins if origins is not None else n,
            "deliveries": reference["deliveries"],
            "duplicates": reference["duplicates"],
            "rounds": 1,
            "region_steps": 1,
            "frames_relayed": 0,
        }
    else:
        plan = RegionPlan(spec,
                          flood_assignment(regions, hosts_per_region,
                                           shards, balance=balance))
        result = run_sharded(plan, workload, seed=seed, mode=mode,
                             collect_rows=False, collect_traces=False)
        wall = time.perf_counter() - started
        events = result.events
        row = {
            "config": "flat-flood",
            "systems": n,
            "regions": regions,
            "shards": len(plan.regions),
            "origins": origins if origins is not None else n,
            "deliveries": sum(s["deliveries"] for s in result.shards),
            "duplicates": sum(s["duplicates"] for s in result.shards),
            "rounds": result.rounds,
            "region_steps": result.steps,
            "frames_relayed": result.frames_relayed,
        }
    row.update({
        "wall_s": round(wall, 2),
        "events": events,
        "events_per_s": int(events / wall) if wall > 0 else 0,
        "peak_mem_mb": _peak_mem_mb(),
    })
    return row


def shard_trace_digests(regions: int, hosts_per_region: int,
                        shards: int, seed: int = 0) -> List[Dict[str, Any]]:
    """Rows of per-shard trace SHA-256s for a canned flood plant.

    Job target for the golden-fingerprint checks: sharded traces
    produced inside a pool worker (where the coordinator falls back to
    in-process rounds) must match the digests pinned from a direct run.
    """
    from ..shard import RegionPlan, all_nodes_announce, run_sharded
    spec = build_flood_spec(regions, hosts_per_region)
    plan = RegionPlan(spec, flood_assignment(regions, hosts_per_region,
                                             shards))
    result = run_sharded(plan, all_nodes_announce(spec.nodes), seed=seed)
    return [{"shard": s["shard"], "sha256": s["trace_sha256"]}
            for s in result.shards]


def iter_flood_jobs(tiers: List[str] = ("small", "medium", "large"),
                    shards: int = 2, seed: int = 1,
                    balance: bool = False) -> List[Job]:
    """The sharded tier as data: per tier, the single-engine reference
    row and the ``shards``-way partitioned row.  Each job is one whole
    sharded run — the coordinator spawns its own per-region workers, so
    dispatch these with ``--jobs 1`` (inside a daemonic pool worker the
    coordinator falls back to in-process rounds)."""
    jobs = []
    for tier in tiers:
        if tier not in FLOOD_SIZES:
            raise ValueError(f"unknown flood tier {tier!r}; "
                             f"known: {', '.join(FLOOD_SIZES)}")
        regions, hosts = FLOOD_SIZES[tier]
        origins = FLOOD_TIER_ORIGINS.get(tier)
        # dict.fromkeys: --shards 1 means one reference row, not two
        for count in dict.fromkeys((1, shards)):
            jobs.append(Job(
                "repro.experiments.e6_scalability:run_flood_scale",
                kwargs={"regions": regions, "hosts_per_region": hosts,
                        "shards": count, "seed": seed, "balance": balance,
                        "origins": origins},
                group="e6-shard",
                label=f"e6-shard flat-flood {tier} x{count}"))
    return jobs


def flood_build_smoke(tier: str = "xlarge", seed: int = 1) -> Dict[str, Any]:
    """Build one flood tier's plant and run its *first* announcement to
    complete flooding — the CI smoke for the 100k-system tier.

    A full xlarge flood (8 origins x 100k deliveries each) is a
    minutes-scale bench run; CI only needs to prove the columnar engine
    *builds* a 100k-system plant in bounded memory and pushes one flood
    wave through it.  A single announcement fully floods the
    star-of-stars in ~6 ms simulated (host->border->core->border->host
    propagation plus serialization), so one origin run ``until`` 10 ms
    is exactly the first flood round: every other system hears it.
    """
    from ..shard import attach_flood, sparse_announce
    if tier not in FLOOD_SIZES:
        raise ValueError(f"unknown flood tier {tier!r}; "
                         f"known: {', '.join(FLOOD_SIZES)}")
    regions, hosts = FLOOD_SIZES[tier]
    spec = build_flood_spec(regions, hosts)
    workload = sparse_announce(spec.nodes, 1)
    started = time.perf_counter()
    network = spec.build(seed=seed)
    floods = attach_flood(network, workload)
    build_wall = time.perf_counter() - started
    network.run(until=0.010)
    wall = time.perf_counter() - started
    n = len(spec.nodes)
    deliveries = sum(len(f.deliveries) for f in floods.values())
    return {
        "tier": tier,
        "systems": n,
        "links": len(spec.links),
        "origins": 1,
        "first_wave_deliveries": deliveries,
        "events": network.engine.events_processed,
        "build_s": round(build_wall, 2),
        "wall_s": round(wall, 2),
        "peak_mem_mb": _peak_mem_mb(),
    }


def verify_end_to_end(regions: int = 3, hosts_per_region: int = 4,
                      seed: int = 1) -> Dict[str, Any]:
    """Sanity check: the recursive stack really carries application data
    end to end through the h2h DIF."""
    network, systems, difs = build_recursive(regions, hosts_per_region, seed)
    src = "h0_0"
    dst = f"h{regions - 1}_0"
    server = EchoServer(systems[dst], dif_names=["h2h"])
    network.run(until=network.engine.now + 0.5)
    client = EchoClient(systems[src], dif_name="h2h")
    run_until(network, lambda: client.waiter.done(), timeout=20)
    if not client.ready:
        raise RuntimeError(f"allocation failed: {client.waiter.reason}")
    for _ in range(10):
        client.ping(200)
    run_until(network, lambda: client.replies >= 10, timeout=30)
    return {"delivered": client.replies, "rtts": len(client.rtts)}
