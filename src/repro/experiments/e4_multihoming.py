"""E4 — Figure 4 / §6.3: multihoming as a consequence of two-step routing.

A host holds two attachments to its provider.  Steady request traffic
flows; at a known instant the primary link dies.  Three contenders:

* **RINA** — the host's node address is stable; routing's step one (next
  hop) is untouched, step two (PoA selection) just picks the surviving
  attachment once neighbor-monitoring declares the port dead.  The flow
  never notices beyond a delivery gap ≈ the keepalive dead interval.
* **TCP** — the connection *is* the (address, port) 4-tuple of the dead
  interface; it retransmits into the void, backs off, and aborts.  No
  recovery, ever (§6.3's core indictment).
* **SCTP** — survives by doing transport-layer "degenerate routing":
  per-path error counters must cross ``path_max_retrans`` before failover,
  so the outage is several RTO/heartbeat periods.

Measured: the delivery gap at the receiver around the failure, and whether
the session survived at all.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..apps.echo import EchoClient, EchoServer
from ..baselines import IpFabric
from ..core import run_until
from ..scenarios.canned import e4_scenario
from ..scenarios.faults import FaultContext, make_injector
from ..scenarios.runner import build_rina_stack, build_topology
from ..sim.network import Network
from ..sweeps import Job
from .common import delivery_gap

SEND_PERIOD = 0.05
FAIL_AT = 2.0
TOTAL_MESSAGES = 120


def _two_link_topology(seed: int) -> Network:
    """The baseline stacks reuse the scenario spec's physical plant."""
    network = Network(seed=seed)
    build_topology(e4_scenario().topology, network)
    return network


def run_rina(keepalive_interval: float = 0.2, seed: int = 1) -> Dict[str, Any]:
    """The IPC architecture side: PoA failover below a surviving flow.

    The stack is the declarative spec
    :func:`repro.scenarios.canned.e4_scenario`; the primary-link kill goes
    through the scenario harness's link-flap injector (``duration=None``
    = permanent), and only the measurement logic stays bespoke.
    """
    spec = e4_scenario(keepalive_interval)
    built = build_rina_stack(spec, seed=seed)
    network, systems = built.network, built.systems
    policies = built.layers["net"].policies

    server = EchoServer(systems["provider"])
    network.run(until=network.engine.now + 0.5)
    client = EchoClient(systems["host"])
    run_until(network, lambda: client.waiter.done(), timeout=10)
    if not client.ready:
        raise RuntimeError(f"allocation failed: {client.waiter.reason}")

    delivery_times: List[float] = []
    original = client.message_flow._receiver

    def on_reply(data: bytes) -> None:
        delivery_times.append(network.engine.now)
        original(data)
    client.message_flow.set_message_receiver(on_reply)

    start = network.engine.now
    # the spec's fault schedule is the single source of the failure time
    fail_at = start + spec.faults[0].at
    make_injector(spec.faults[0]).arm(FaultContext(network, built=built),
                                      start)

    sent = [0]

    def pump() -> None:
        if sent[0] < TOTAL_MESSAGES:
            client.ping(200)
            sent[0] += 1
            network.engine.call_later(SEND_PERIOD, pump)
    pump()
    run_until(network, lambda: client.replies >= TOTAL_MESSAGES, timeout=120)
    return {
        "stack": f"rina(ka={keepalive_interval})",
        "delivered": client.replies,
        "survived": client.replies >= TOTAL_MESSAGES,
        "outage_s": delivery_gap(delivery_times, fail_at),
        "detection_budget_s": keepalive_interval * policies.dead_factor,
    }


def run_tcp(seed: int = 1) -> Dict[str, Any]:
    """The TCP side: bound to the failed interface's address."""
    network = _two_link_topology(seed)
    fabric = IpFabric(network, routers=[])
    host, provider = fabric.host("host"), fabric.host("provider")

    delivery_times: List[float] = []
    server_conns = []

    def on_accept(conn) -> None:
        server_conns.append(conn)
        conn.on_data = lambda n: delivery_times.append(network.engine.now)
    provider.tcp.listen(80, on_accept)
    conn = host.tcp.connect(host.addr("if0"), provider.addr("if0"), 80)
    aborted: List[float] = []
    conn.on_aborted = lambda: aborted.append(network.engine.now)
    run_until_established = network.run(until=1.0)

    fail_at = 1.0 + FAIL_AT
    network.engine.call_later(fail_at - network.engine.now,
                              network.links["uplink#a"].fail)
    sent = [0]

    def pump() -> None:
        if sent[0] < TOTAL_MESSAGES and conn.established:
            conn.send(200)
            sent[0] += 1
            network.engine.call_later(SEND_PERIOD, pump)
    pump()
    network.run(until=fail_at + 90)
    delivered = len(delivery_times)
    return {
        "stack": "tcp",
        "delivered": delivered,
        "survived": not aborted and delivered >= TOTAL_MESSAGES,
        "outage_s": float("inf") if aborted or delivered < TOTAL_MESSAGES
        else delivery_gap(delivery_times, fail_at),
        "aborted_at_s": (aborted[0] - fail_at) if aborted else None,
    }


def run_sctp(heartbeat_interval: float = 0.5, path_max_retrans: int = 3,
             seed: int = 1) -> Dict[str, Any]:
    """The SCTP side: transport-level failover after path errors."""
    network = _two_link_topology(seed)
    fabric = IpFabric(network, routers=[])
    host, provider = fabric.host("host"), fabric.host("provider")

    delivery_times: List[float] = []
    accepted = []

    def on_accept(association) -> None:
        association.on_data = lambda n: delivery_times.append(network.engine.now)
        accepted.append(association)
    provider.sctp.listen(7, provider.ip.addresses(), on_accept)
    association = host.sctp.associate(host.ip.addresses(), provider.addr("if0"), 7)
    association._hb_task._period = heartbeat_interval
    association.path_max_retrans = path_max_retrans
    network.run(until=1.0)
    if accepted:
        accepted[0]._hb_task._period = heartbeat_interval

    fail_at = network.engine.now + FAIL_AT
    network.engine.call_later(FAIL_AT, network.links["uplink#a"].fail)
    sent = [0]

    def pump() -> None:
        if sent[0] < TOTAL_MESSAGES:
            association.send_message(200)
            sent[0] += 1
            network.engine.call_later(SEND_PERIOD, pump)
    pump()
    run_until(network,
              lambda: (accepted and accepted[0].messages_delivered >= TOTAL_MESSAGES),
              timeout=120)
    delivered = accepted[0].messages_delivered if accepted else 0
    return {
        "stack": f"sctp(hb={heartbeat_interval},pmr={path_max_retrans})",
        "delivered": delivered,
        "survived": delivered >= TOTAL_MESSAGES,
        "outage_s": delivery_gap(delivery_times, fail_at),
        "failover_after_s": (association.failover_events[0][0] - fail_at)
        if association.failover_events else None,
    }


def run_comparison(seed: int = 1,
                   rina_keepalives: Optional[List[float]] = None
                   ) -> List[Dict[str, Any]]:
    """The E4 table: one row per stack/parameterization."""
    rows = []
    for keepalive in (rina_keepalives or [0.1, 0.2, 0.5]):
        rows.append(run_rina(keepalive_interval=keepalive, seed=seed))
    rows.append(run_tcp(seed=seed))
    rows.append(run_sctp(seed=seed))
    return rows


def iter_jobs(rina_keepalives: Optional[List[float]] = None,
              seed: int = 1) -> List[Job]:
    """The E4 table as data: one job per stack/parameterization, in the
    :func:`run_comparison` row order."""
    jobs = [Job("repro.experiments.e4_multihoming:run_rina",
                kwargs={"keepalive_interval": keepalive, "seed": seed},
                group="e4", label=f"e4 rina keepalive={keepalive}")
            for keepalive in (rina_keepalives or [0.1, 0.2, 0.5])]
    jobs.append(Job("repro.experiments.e4_multihoming:run_tcp",
                    kwargs={"seed": seed}, group="e4", label="e4 tcp"))
    jobs.append(Job("repro.experiments.e4_multihoming:run_sctp",
                    kwargs={"seed": seed}, group="e4", label="e4 sctp"))
    return jobs
