"""E7 — §6.1: "the IPC facility is impervious to attacks from outside".

Two properties are measured, each against the IP baseline:

**Membership is a security boundary.**  An attacker system is *physically
wired* to a provider router in both worlds.

* IP: addresses are public.  The attacker sweeps the address space with
  TCP SYNs: every host answers (SYN-ACK or RST), so every host is
  *discoverable*, and any open service is connectable — without asking
  anyone.
* IPC: the attacker is connected but not enrolled.  It can attempt to
  enroll (rejected by the DIF's authentication policy) and it can inject
  arbitrary PDUs on its attachment (dropped by the unauthenticated-port
  gate — addresses are not even meaningful to it, since they are private
  to the DIF).  Zero members discovered, zero flows opened.

**Access control is part of flow allocation (§5.3).**  Even an *enrolled*
member cannot open a flow to an application whose access policy excludes
it — the destination IPCP checks before any port is handed out.  The IP
analogue (every host may SYN any port; protection requires an external
firewall middlebox) is the paper's "kludge" contrast.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..baselines import IpFabric, ip_str
from ..core import (AllowList, ApplicationName, ChallengeResponse, Dif,
                    DifPolicies, FlowWaiter, NoAuth, Orchestrator, PresharedKey,
                    add_shims, build_dif_over, make_systems, run_until,
                    shim_between)
from ..core.names import DifName
from ..core.pdu import DataPdu, ManagementPdu
from ..core.names import Address
from ..sim.network import Network
from ..sweeps import Job


def _provider_topology(seed: int = 1) -> Network:
    """provider core with three member hosts and one attacker port."""
    network = Network(seed=seed)
    for name in ("core", "s1", "s2", "s3", "attacker"):
        network.add_node(name)
    for name in ("s1", "s2", "s3", "attacker"):
        network.connect(name, "core", delay=0.002)
    return network


# ----------------------------------------------------------------------
# IPC side
# ----------------------------------------------------------------------
def _auth_policy(kind: str):
    if kind == "none":
        return NoAuth()
    if kind == "psk":
        return PresharedKey("providers-secret")
    if kind == "challenge":
        return ChallengeResponse("providers-secret")
    raise ValueError(f"unknown auth policy {kind!r}")


def run_rina_outsider(auth: str = "challenge", probes: int = 50,
                      seed: int = 1) -> Dict[str, Any]:
    """The unenrolled attacker against a DIF with the given auth policy."""
    network = _provider_topology(seed)
    systems = make_systems(network)
    add_shims(systems, network)
    dif = Dif("provider", DifPolicies(auth=_auth_policy(auth),
                                      keepalive_interval=2.0))
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, dif, systems, adjacencies=[
        ("s1", "core", shim_between(network, "s1", "core")),
        ("s2", "core", shim_between(network, "s2", "core")),
        ("s3", "core", shim_between(network, "s3", "core"))],
        bootstrap="core")
    orchestrator.run(timeout=60)
    # a protected application on s1
    systems["s1"].register_app(ApplicationName("payroll"), lambda flow: None)
    network.run(until=network.engine.now + 0.5)

    # the attacker: wired to core, creates its own IPCP for the DIF and
    # tries to (1) enroll with a guessed credential, (2) inject PDUs.
    attacker = systems["attacker"]
    core_shim = shim_between(network, "attacker", "core")
    # attacker must publish into its shim so it can allocate a lower flow
    wrong_dif = Dif("provider", DifPolicies(auth=PresharedKey("wrong-guess")))
    attacker.create_ipcp(wrong_dif)
    attacker.publish_ipcp("provider", core_shim)
    # core exposes its IPCP name on the attacker-facing shim: realistic —
    # the wire is physically there, enrollment is the only protocol offered
    systems["core"].publish_ipcp("provider", core_shim)

    outcomes: List[str] = []
    attacker.enroll("provider", dif.name.ipcp_name("core"), core_shim,
                    done=lambda ok, reason: outcomes.append(
                        "enrolled" if ok else reason))
    run_until(network, lambda: outcomes, timeout=30)
    enrolled = outcomes and outcomes[0] == "enrolled"

    # PDU injection: raw data PDUs sprayed at guessed internal addresses
    injected_before = network.tracer.counter_value("security.unauthenticated-pdu")
    attacker_ipcp = attacker.ipcp("provider")
    lower = attacker.provider(core_shim)
    flow = lower.allocate_flow(attacker_ipcp.name,
                               dif.name.ipcp_name("core"))
    run_until(network, lambda: flow.allocated or flow.state == "failed",
              timeout=10)
    injections = 0
    if flow.allocated:
        for guess in range(1, probes + 1):
            pdu = DataPdu(Address(99), Address(guess), 1, 1, 0, b"attack", 6)
            flow.send(pdu, pdu.wire_size())
            injections += 1
    network.run(until=network.engine.now + 2.0)
    dropped = (network.tracer.counter_value("security.unauthenticated-pdu")
               - injected_before)
    # a flow-allocation attempt to the protected app (must fail: the
    # attacker holds no address in the facility)
    rogue = attacker.allocate_flow(ApplicationName("rogue-app"),
                                   ApplicationName("payroll"),
                                   dif_name="provider")
    rogue_waiter = FlowWaiter(rogue)
    run_until(network, rogue_waiter.done, timeout=15)
    # what the attacker can see of the facility's interior
    attacker_view = (attacker_ipcp.routing.lsdb_size() if enrolled else 0)
    return {
        "world": f"rina({auth})",
        "attacker_enrolled": bool(enrolled),
        "enroll_denials": dif.enrollments_denied,
        "pdus_injected": injections,
        "pdus_blocked_at_gate": dropped,
        "members_discovered": attacker_view,
        "service_reached": bool(rogue_waiter.ok),
        "rogue_flow_failure": rogue_waiter.reason,
    }


def run_rina_insider_acl(seed: int = 1) -> Dict[str, Any]:
    """An enrolled member blocked by destination access control (§5.3)."""
    network = _provider_topology(seed)
    systems = make_systems(network)
    add_shims(systems, network)
    allowed_client = ApplicationName("hr-frontend")
    policies = DifPolicies(access=AllowList([allowed_client]),
                           keepalive_interval=2.0)
    dif = Dif("provider", policies)
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, dif, systems, adjacencies=[
        ("s1", "core", shim_between(network, "s1", "core")),
        ("s2", "core", shim_between(network, "s2", "core")),
        ("attacker", "core", shim_between(network, "attacker", "core"))],
        bootstrap="core")
    orchestrator.run(timeout=60)
    systems["s1"].register_app(ApplicationName("payroll"), lambda flow: None)
    network.run(until=network.engine.now + 0.5)

    denied = systems["attacker"].allocate_flow(
        ApplicationName("rogue-app"), ApplicationName("payroll"))
    denied_waiter = FlowWaiter(denied)
    granted = systems["s2"].allocate_flow(
        allowed_client, ApplicationName("payroll"))
    granted_waiter = FlowWaiter(granted)
    run_until(network, lambda: denied_waiter.done() and granted_waiter.done(),
              timeout=20)
    return {
        "world": "rina(insider-acl)",
        "rogue_flow_granted": denied_waiter.ok,
        "rogue_failure": denied_waiter.reason,
        "allowed_flow_granted": granted_waiter.ok,
        "denials_logged": len(network.tracer.events("flow-denied")),
    }


# ----------------------------------------------------------------------
# IP side
# ----------------------------------------------------------------------
def run_ip_scan(seed: int = 1, address_probes: int = 64) -> Dict[str, Any]:
    """The attacker sweeps the public address space with TCP SYNs."""
    network = _provider_topology(seed)
    fabric = IpFabric(network, routers=["core"])
    servers = {name: fabric.host(name) for name in ("s1", "s2", "s3")}
    attacker = fabric.host("attacker")
    # one open service, like the RINA side
    servers["s1"].tcp.listen(8080, lambda conn: None)

    discovered: set = set()
    connected: List[str] = []
    base = min(addr for host in servers.values() for addr in host.ip.addresses())
    for offset in range(address_probes):
        target = base + offset
        conn = attacker.tcp.connect(attacker.addr(), target, 8080)

        def on_conn(c=conn, t=target) -> None:
            connected.append(ip_str(t))
            discovered.add(t)
        conn.on_connected = on_conn
    network.run(until=10.0)
    # RSTs also reveal liveness: count aborted connections that got an RST
    # (our TCP aborts on RST receipt, distinct from silent timeout)
    live_hosts = {addr for host in servers.values()
                  for addr in host.ip.addresses() if addr != 0}
    reachable = sum(1 for addr in live_hosts
                    if fabric.host("attacker").ip._lookup(addr) is not None)
    return {
        "world": "ip",
        "attacker_enrolled": True,   # nothing to enroll in: wire = access
        "addresses_routable": reachable,
        "services_connected": len(connected),
        "members_discovered": len(live_hosts),
        "service_reached": bool(connected),
    }


def run_comparison(seed: int = 1) -> List[Dict[str, Any]]:
    """The E7 table."""
    rows = [run_rina_outsider(auth, seed=seed)
            for auth in ("challenge", "psk", "none")]
    rows.append(run_rina_insider_acl(seed=seed))
    rows.append(run_ip_scan(seed=seed))
    return rows


def iter_jobs(seed: int = 1) -> List[Job]:
    """The E7 table as data: the three outsider auth policies, the
    insider ACL row, and the IP scan baseline."""
    jobs = [Job("repro.experiments.e7_security:run_rina_outsider",
                kwargs={"auth": auth, "seed": seed},
                group="e7", label=f"e7 outsider auth={auth}")
            for auth in ("challenge", "psk", "none")]
    jobs.append(Job("repro.experiments.e7_security:run_rina_insider_acl",
                    kwargs={"seed": seed}, group="e7", label="e7 insider"))
    jobs.append(Job("repro.experiments.e7_security:run_ip_scan",
                    kwargs={"seed": seed}, group="e7", label="e7 ip scan"))
    return jobs
