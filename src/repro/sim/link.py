"""Simulated physical links.

A :class:`Link` joins exactly two :class:`LinkEnd` objects.  Each direction
has a FIFO transmit queue, a serialization rate (bits/s), a propagation
delay, and a loss model.  Payloads are opaque Python objects accompanied by
an explicit wire size in bytes — the simulator never serializes for real.

Loss models are strategy objects so experiments can swap a fixed loss rate
for a bursty Gilbert–Elliott process or a signal-strength-driven wireless
model without touching the link code (mechanism vs policy, as the paper
prescribes for every component).
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from .engine import Engine
from .trace import Tracer

ReceiveCallback = Callable[[Any, int], None]


class LossModel:
    """Decides per-frame whether the medium corrupts/drops the frame.

    ``lossless`` marks models that never drop *and never draw from the
    RNG*: links skip the per-frame ``should_drop`` call (and never
    materialize their lazy RNG) for such models.
    """

    __slots__ = ()

    lossless = False

    def should_drop(self, rng: random.Random, now: float) -> bool:
        """Return True to drop the frame currently being delivered."""
        raise NotImplementedError


class NoLoss(LossModel):
    """A perfect medium."""

    __slots__ = ()

    lossless = True

    def should_drop(self, rng: random.Random, now: float) -> bool:
        return False


#: Shared stateless default — one instance for every lossless link.
_NO_LOSS = NoLoss()


class UniformLoss(LossModel):
    """Independent per-frame loss with fixed probability."""

    __slots__ = ("probability",)

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0,1], got {probability}")
        self.probability = probability

    def should_drop(self, rng: random.Random, now: float) -> bool:
        return rng.random() < self.probability


class GilbertElliott(LossModel):
    """Two-state bursty loss (good/bad channel), the classic wireless model.

    Parameters are per-frame transition probabilities and per-state loss
    rates.  Defaults give ~1% average loss with occasional deep fades.
    """

    __slots__ = ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad",
                 "_bad")

    def __init__(self, p_good_to_bad: float = 0.005, p_bad_to_good: float = 0.2,
                 loss_good: float = 0.001, loss_bad: float = 0.5) -> None:
        for name, p in (("p_good_to_bad", p_good_to_bad),
                        ("p_bad_to_good", p_bad_to_good),
                        ("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {p}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._bad = False

    def should_drop(self, rng: random.Random, now: float) -> bool:
        if self._bad:
            if rng.random() < self.p_bad_to_good:
                self._bad = False
        else:
            if rng.random() < self.p_good_to_bad:
                self._bad = True
        rate = self.loss_bad if self._bad else self.loss_good
        return rng.random() < rate


class SignalLoss(LossModel):
    """Loss governed by an externally set signal strength in [0, 1].

    The mobility experiments move a host by lowering signal on the old
    attachment and raising it on the new one — the paper's "mobility is
    dynamic multihoming with controlled link failures" (§6.4).

    Loss is 0 at or above ``good_threshold`` and ramps to 1 at or below
    ``dead_threshold``.
    """

    __slots__ = ("good_threshold", "dead_threshold", "signal")

    def __init__(self, signal: float = 1.0, good_threshold: float = 0.7,
                 dead_threshold: float = 0.2) -> None:
        if not dead_threshold < good_threshold:
            raise ValueError("dead_threshold must be below good_threshold")
        self.good_threshold = good_threshold
        self.dead_threshold = dead_threshold
        self.signal = signal

    def loss_probability(self) -> float:
        """Current loss probability implied by the signal strength."""
        if self.signal >= self.good_threshold:
            return 0.0
        if self.signal <= self.dead_threshold:
            return 1.0
        span = self.good_threshold - self.dead_threshold
        return (self.good_threshold - self.signal) / span

    def should_drop(self, rng: random.Random, now: float) -> bool:
        return rng.random() < self.loss_probability()


class LinkEnd:
    """One attachment point of a link.

    A stack element registers ``on_receive(payload, size_bytes)`` and calls
    :meth:`send` to transmit toward the peer end.
    """

    __slots__ = ("_link", "_index", "name", "_receiver")

    def __init__(self, link: "Link", index: int, name: str) -> None:
        self._link = link
        self._index = index
        self.name = name
        self._receiver: Optional[ReceiveCallback] = None

    @property
    def link(self) -> "Link":
        """The link this end belongs to."""
        return self._link

    @property
    def peer(self) -> "LinkEnd":
        """The opposite end of the link."""
        return self._link.ends[1 - self._index]

    def attach(self, receiver: ReceiveCallback) -> None:
        """Register the callback invoked for each delivered frame."""
        self._receiver = receiver

    def send(self, payload: Any, size_bytes: int) -> bool:
        """Enqueue a frame toward the peer; returns False if tail-dropped."""
        return self._link.transmit(self._index, payload, size_bytes)

    def deliver(self, payload: Any, size_bytes: int) -> None:
        """Hand a frame up the attached stack (no-op when nothing attached)."""
        if self._receiver is not None:
            self._receiver(payload, size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LinkEnd {self.name}>"


class Link:
    """A full-duplex point-to-point link between two systems.

    Parameters
    ----------
    engine:
        The simulation engine providing the clock and timers.
    name:
        Human-readable identifier used in traces.
    capacity_bps:
        Serialization rate of each direction, bits per second.
    delay:
        One-way propagation delay, seconds.
    loss:
        A :class:`LossModel` shared by both directions.
    queue_limit:
        Maximum frames queued per direction awaiting serialization.
    codec:
        Optional wire codec (an object with ``encode``/``decode``, e.g.
        the :mod:`repro.core.codec` module).  When set, the payload is
        encoded to pure data at serialization end — the moment the
        frame is "on the wire" — and decoded at delivery, so the link
        carries exactly what a real wire could.  ``sim`` stays
        stack-agnostic: the codec is injected by the layer above.
    rng / rng_factory:
        The per-link PRNG feeding the loss model.  ``rng_factory`` defers
        construction until the first frame actually needs a loss draw —
        a lossless link never materializes its PRNG, which matters at
        100k-link scale (a ``random.Random`` is ~2.5 KB of Mersenne
        state).  An explicit ``rng`` wins over the factory.
    """

    __slots__ = ("_engine", "name", "capacity_bps", "delay", "loss",
                 "queue_limit", "_rng", "_rng_factory", "_tracer", "_codec",
                 "ends", "_queues", "_busy", "_up", "_observers",
                 "frames_sent", "frames_dropped_queue", "frames_dropped_loss",
                 "frames_delivered", "bytes_delivered", "_tx_label",
                 "_rx_label")

    def __init__(self, engine: Engine, name: str, capacity_bps: float = 1e8,
                 delay: float = 0.001, loss: Optional[LossModel] = None,
                 queue_limit: int = 256, rng: Optional[random.Random] = None,
                 tracer: Optional[Tracer] = None, codec: Optional[Any] = None,
                 rng_factory: Optional[Callable[[], random.Random]] = None
                 ) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._engine = engine
        self.name = name
        self.capacity_bps = float(capacity_bps)
        self.delay = float(delay)
        self.loss = loss if loss is not None else _NO_LOSS
        self.queue_limit = queue_limit
        self._rng = rng
        self._rng_factory = rng_factory
        self._tracer = tracer
        self._codec = codec
        self.ends: Tuple[LinkEnd, LinkEnd] = (
            LinkEnd(self, 0, f"{name}[0]"),
            LinkEnd(self, 1, f"{name}[1]"),
        )
        # per-direction state: queue of (payload, size) and busy flag.
        # deques: transmit queues are pure FIFOs and the O(n) list.pop(0)
        # dominated the hot path at thousand-system scale.
        self._queues: Tuple[Deque[Tuple[Any, int]], Deque[Tuple[Any, int]]] = (
            deque(), deque())
        self._busy = [False, False]
        self._up = True
        # observers notified with (link, up) on fail/repair — used by stacks
        # that model carrier detection (interface down when the link dies)
        self._observers: List[Callable[["Link", bool], None]] = []
        # statistics
        self.frames_sent = [0, 0]
        self.frames_dropped_queue = [0, 0]
        self.frames_dropped_loss = [0, 0]
        self.frames_delivered = [0, 0]
        self.bytes_delivered = [0, 0]
        # event labels, precomputed: an f-string per scheduled event is
        # measurable at scale
        self._tx_label = f"{name}.tx"
        self._rx_label = f"{name}.rx"

    # ------------------------------------------------------------------
    @property
    def up(self) -> bool:
        """False while the link is administratively failed."""
        return self._up

    def observe(self, callback: Callable[["Link", bool], None]) -> None:
        """Register for fail/repair notifications (carrier detection)."""
        self._observers.append(callback)

    def fail(self) -> None:
        """Take the link down: queued and future frames are discarded."""
        if not self._up:
            return
        self._up = False
        for direction in (0, 1):
            self._queues[direction].clear()
        for callback in list(self._observers):
            callback(self, False)

    def repair(self) -> None:
        """Bring the link back up."""
        if self._up:
            return
        self._up = True
        for callback in list(self._observers):
            callback(self, True)

    def serialization_delay(self, size_bytes: int) -> float:
        """Time to clock ``size_bytes`` onto the wire at this capacity."""
        return size_bytes * 8.0 / self.capacity_bps

    # ------------------------------------------------------------------
    def transmit(self, from_index: int, payload: Any, size_bytes: int) -> bool:
        """Queue a frame in the given direction; returns False on tail drop."""
        if size_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {size_bytes}")
        if not self._up:
            self.frames_dropped_queue[from_index] += 1
            self._trace_count("link.drop.down")
            return False
        queue = self._queues[from_index]
        if len(queue) >= self.queue_limit:
            self.frames_dropped_queue[from_index] += 1
            self._trace_count("link.drop.queue")
            return False
        queue.append((payload, size_bytes))
        self.frames_sent[from_index] += 1
        if not self._busy[from_index]:
            self._serve(from_index)
        return True

    def _serve(self, direction: int) -> None:
        queue = self._queues[direction]
        if not queue or not self._up:
            self._busy[direction] = False
            return
        self._busy[direction] = True
        payload, size = queue.popleft()
        tx_time = self.serialization_delay(size)
        self._engine.call_later(
            tx_time, self._finish_serialization, direction, payload, size,
            label=self._tx_label)

    def _finish_serialization(self, direction: int, payload: Any, size: int) -> None:
        # The frame is on the wire; schedule delivery after propagation,
        # then immediately serve the next queued frame.
        if self._up:
            loss = self.loss
            if loss.lossless:
                # fast path: no RNG draw, and the lazy PRNG never exists
                self._schedule_delivery(direction, payload, size)
            else:
                rng = self._rng
                if rng is None:
                    factory = self._rng_factory
                    rng = factory() if factory is not None else random.Random(0)
                    self._rng = rng
                if loss.should_drop(rng, self._engine.now):
                    self.frames_dropped_loss[direction] += 1
                    self._trace_count("link.drop.loss")
                else:
                    self._schedule_delivery(direction, payload, size)
        self._serve(direction)

    def _schedule_delivery(self, direction: int, payload: Any, size: int) -> None:
        """Queue the on-the-wire frame for delivery after propagation.

        This is the serialization end — the single seam where a live
        payload becomes wire data.  With a codec installed the payload
        crosses as its encoded form; subclasses that cut a link at a
        simulation boundary (the shard subsystem's half-links) override
        this seam to capture the encoded frame instead of scheduling
        local delivery.  The loss decision, queueing, and serialization
        above it stay shared either way.
        """
        if self._codec is not None:
            payload = self._codec.encode(payload)
        self._engine.call_later(
            self.delay, self._deliver, direction, payload, size,
            label=self._rx_label)

    def _deliver(self, direction: int, payload: Any, size: int) -> None:
        if not self._up:
            return
        if self._codec is not None:
            payload = self._codec.decode(payload)
        self.frames_delivered[direction] += 1
        self.bytes_delivered[direction] += size
        self._trace_count("link.delivered")
        self.ends[1 - direction].deliver(payload, size)

    def _trace_count(self, name: str) -> None:
        if self._tracer is not None:
            self._tracer.count(name)

    # ------------------------------------------------------------------
    def utilization(self, elapsed: float, direction: int = 0) -> float:
        """Fraction of ``elapsed`` the direction spent serializing delivered
        bytes (an a-posteriori estimate used by the utilization experiment)."""
        if elapsed <= 0:
            return math.nan
        busy = self.bytes_delivered[direction] * 8.0 / self.capacity_bps
        return busy / elapsed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self._up else "DOWN"
        return f"<Link {self.name} {self.capacity_bps/1e6:.1f}Mbps {state}>"


class WirelessLink(Link):
    """A link whose loss follows an adjustable signal strength.

    Convenience wrapper: constructs a :class:`SignalLoss` model and exposes
    :attr:`signal` directly.  Used by Fig 3 (wireless DIFs) and Fig 5
    (mobility) experiments.
    """

    __slots__ = ("_signal_loss",)

    def __init__(self, engine: Engine, name: str, capacity_bps: float = 2e7,
                 delay: float = 0.004, signal: float = 1.0,
                 queue_limit: int = 128, rng: Optional[random.Random] = None,
                 tracer: Optional[Tracer] = None,
                 codec: Optional[Any] = None,
                 rng_factory: Optional[Callable[[], random.Random]] = None
                 ) -> None:
        self._signal_loss = SignalLoss(signal=signal)
        super().__init__(engine, name, capacity_bps=capacity_bps, delay=delay,
                         loss=self._signal_loss, queue_limit=queue_limit,
                         rng=rng, tracer=tracer, codec=codec,
                         rng_factory=rng_factory)

    @property
    def signal(self) -> float:
        """Current signal strength in [0, 1]."""
        return self._signal_loss.signal

    @signal.setter
    def signal(self, value: float) -> None:
        self._signal_loss.signal = max(0.0, min(1.0, value))
