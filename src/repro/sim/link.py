"""Simulated physical links.

A :class:`Link` joins exactly two :class:`LinkEnd` objects.  Each direction
has a FIFO transmit queue, a serialization rate (bits/s), a propagation
delay, and a loss model.  Payloads are opaque Python objects accompanied by
an explicit wire size in bytes — the simulator never serializes for real.

Loss models are strategy objects so experiments can swap a fixed loss rate
for a bursty Gilbert–Elliott process or a signal-strength-driven wireless
model without touching the link code (mechanism vs policy, as the paper
prescribes for every component).
"""

from __future__ import annotations

import hashlib
import math
import random
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .engine import Engine
from .trace import Tracer

ReceiveCallback = Callable[[Any, int], None]


class LossModel:
    """Decides per-frame whether the medium corrupts/drops the frame.

    ``lossless`` marks models that never drop *and never draw from the
    RNG*: links skip the per-frame ``should_drop`` call (and never
    materialize their lazy RNG) for such models.
    """

    __slots__ = ()

    lossless = False

    def should_drop(self, rng: random.Random, now: float) -> bool:
        """Return True to drop the frame currently being delivered."""
        raise NotImplementedError


class NoLoss(LossModel):
    """A perfect medium."""

    __slots__ = ()

    lossless = True

    def should_drop(self, rng: random.Random, now: float) -> bool:
        return False


#: Shared stateless default — one instance for every lossless link.
_NO_LOSS = NoLoss()


class UniformLoss(LossModel):
    """Independent per-frame loss with fixed probability."""

    __slots__ = ("probability",)

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0,1], got {probability}")
        self.probability = probability

    def should_drop(self, rng: random.Random, now: float) -> bool:
        return rng.random() < self.probability


class GilbertElliott(LossModel):
    """Two-state bursty loss (good/bad channel), the classic wireless model.

    Parameters are per-frame transition probabilities and per-state loss
    rates.  Defaults give ~1% average loss with occasional deep fades.
    """

    __slots__ = ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad",
                 "_bad")

    def __init__(self, p_good_to_bad: float = 0.005, p_bad_to_good: float = 0.2,
                 loss_good: float = 0.001, loss_bad: float = 0.5) -> None:
        for name, p in (("p_good_to_bad", p_good_to_bad),
                        ("p_bad_to_good", p_bad_to_good),
                        ("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {p}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._bad = False

    def should_drop(self, rng: random.Random, now: float) -> bool:
        if self._bad:
            if rng.random() < self.p_bad_to_good:
                self._bad = False
        else:
            if rng.random() < self.p_good_to_bad:
                self._bad = True
        rate = self.loss_bad if self._bad else self.loss_good
        return rng.random() < rate


class SignalLoss(LossModel):
    """Loss governed by an externally set signal strength in [0, 1].

    The mobility experiments move a host by lowering signal on the old
    attachment and raising it on the new one — the paper's "mobility is
    dynamic multihoming with controlled link failures" (§6.4).

    Loss is 0 at or above ``good_threshold`` and ramps to 1 at or below
    ``dead_threshold``.
    """

    __slots__ = ("good_threshold", "dead_threshold", "signal")

    def __init__(self, signal: float = 1.0, good_threshold: float = 0.7,
                 dead_threshold: float = 0.2) -> None:
        if not dead_threshold < good_threshold:
            raise ValueError("dead_threshold must be below good_threshold")
        self.good_threshold = good_threshold
        self.dead_threshold = dead_threshold
        self.signal = signal

    def loss_probability(self) -> float:
        """Current loss probability implied by the signal strength."""
        if self.signal >= self.good_threshold:
            return 0.0
        if self.signal <= self.dead_threshold:
            return 1.0
        span = self.good_threshold - self.dead_threshold
        return (self.good_threshold - self.signal) / span

    def should_drop(self, rng: random.Random, now: float) -> bool:
        return rng.random() < self.loss_probability()


# ----------------------------------------------------------------------
# Composable link conditions: jitter, shaping, corruption, reordering.
#
# Like the loss models above, each condition is a strategy object; the
# link only supplies mechanism (where in the frame path each applies)
# and the deterministic per-purpose RNG streams.  A link with
# ``conditions=None`` executes byte-for-byte the same event sequence it
# always has — the golden-trace contract.
# ----------------------------------------------------------------------
class CorruptedFrame:
    """What the far end receives when the medium damaged a frame in flight.

    ``bytes`` payloads are damaged literally (random byte XORs), so a
    checksum such as :mod:`repro.core.sdu_protection`'s CRC32 catches
    them; every other payload is a live Python object the simulator
    cannot bit-flip, so it is delivered wrapped in this sentinel
    instead.  Receiving stacks treat the sentinel as a failed integrity
    check: count the frame and drop it, never hand the payload up.
    """

    __slots__ = ("payload",)

    def __init__(self, payload: Any) -> None:
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CorruptedFrame {self.payload!r}>"


class JitterModel:
    """Per-frame extra propagation delay, sampled at serialization end.

    With ``preserve_order`` (the default) deliveries are clamped to the
    latest delivery already scheduled in that direction, so jitter
    stretches gaps but never reorders — variable queueing on a FIFO
    path.  ``preserve_order=False`` lets large samples overtake small
    ones: jitter then doubles as a reordering process.
    """

    __slots__ = ("preserve_order",)

    def __init__(self, preserve_order: bool = True) -> None:
        self.preserve_order = bool(preserve_order)

    def sample(self, rng: random.Random) -> float:
        """A non-negative, finite delay increment in seconds."""
        raise NotImplementedError


class UniformJitter(JitterModel):
    """Uniform jitter in ``[0, amplitude]`` seconds."""

    __slots__ = ("amplitude",)

    def __init__(self, amplitude: float, preserve_order: bool = True) -> None:
        if not (math.isfinite(amplitude) and amplitude >= 0.0):
            raise ValueError(f"jitter amplitude must be finite and >= 0, "
                             f"got {amplitude}")
        super().__init__(preserve_order)
        self.amplitude = float(amplitude)

    def sample(self, rng: random.Random) -> float:
        return rng.random() * self.amplitude


class NormalJitter(JitterModel):
    """Gaussian jitter clamped into ``[0, cap]`` seconds.

    The clamp is what makes the model usable on a simulated wire: a
    gauss sample is unbounded on both sides, and a negative increment
    would deliver a frame before it finished propagating.  ``cap``
    defaults to ``mean + 4*stddev``.
    """

    __slots__ = ("mean", "stddev", "cap")

    def __init__(self, mean: float, stddev: float,
                 cap: Optional[float] = None,
                 preserve_order: bool = True) -> None:
        if not (math.isfinite(mean) and mean >= 0.0):
            raise ValueError(f"jitter mean must be finite and >= 0, got {mean}")
        if not (math.isfinite(stddev) and stddev >= 0.0):
            raise ValueError(f"jitter stddev must be finite and >= 0, "
                             f"got {stddev}")
        if cap is None:
            cap = mean + 4.0 * stddev
        if not (math.isfinite(cap) and cap >= 0.0):
            raise ValueError(f"jitter cap must be finite and >= 0, got {cap}")
        super().__init__(preserve_order)
        self.mean = float(mean)
        self.stddev = float(stddev)
        self.cap = float(cap)

    def sample(self, rng: random.Random) -> float:
        value = rng.gauss(self.mean, self.stddev)
        if value < 0.0:
            return 0.0
        if value > self.cap:
            return self.cap
        return value


class BandwidthShaper:
    """A token bucket throttling each direction to ``rate_bps``.

    Tokens are bytes, refilled at ``rate_bps / 8`` per second and capped
    at ``burst_bytes``.  A frame whose size exceeds the available tokens
    waits (before serialization, so queue order is preserved) exactly
    until the deficit refills — over any window the wire carries at most
    ``burst_bytes + rate * window`` plus one in-flight frame.  State is
    per direction; the model is deterministic (no RNG).
    """

    __slots__ = ("rate_bps", "burst_bytes", "_tokens", "_stamp")

    def __init__(self, rate_bps: float,
                 burst_bytes: Optional[float] = None) -> None:
        if not (math.isfinite(rate_bps) and rate_bps > 0):
            raise ValueError(f"shaper rate must be finite and positive, "
                             f"got {rate_bps}")
        if burst_bytes is None:
            # default: 10 ms worth of rate, at least one MTU
            burst_bytes = max(1500.0, rate_bps * 0.01 / 8.0)
        if not (math.isfinite(burst_bytes) and burst_bytes >= 1.0):
            raise ValueError(f"shaper burst must be finite and >= 1 byte, "
                             f"got {burst_bytes}")
        self.rate_bps = float(rate_bps)
        self.burst_bytes = float(burst_bytes)
        self._tokens = [self.burst_bytes, self.burst_bytes]
        self._stamp = [0.0, 0.0]

    def reserve(self, direction: int, size_bytes: int, now: float) -> float:
        """Spend ``size_bytes`` of tokens; returns the wait in seconds
        before the frame may start serializing (0 when the bucket has
        enough)."""
        rate = self.rate_bps / 8.0
        tokens = min(self.burst_bytes,
                     self._tokens[direction]
                     + (now - self._stamp[direction]) * rate)
        if tokens >= size_bytes:
            self._tokens[direction] = tokens - size_bytes
            self._stamp[direction] = now
            return 0.0
        wait = (size_bytes - tokens) / rate
        self._tokens[direction] = 0.0
        self._stamp[direction] = now + wait
        return wait


class CorruptionModel:
    """Independent per-frame payload corruption with fixed probability.

    A corrupted ``bytes`` payload gets 1..``max_flips`` random bytes
    XORed with a non-zero mask (every flip really changes the byte, so
    a CRC sees it); any other payload is wrapped in
    :class:`CorruptedFrame`.  The frame still *arrives* — detection and
    the drop happen in the receiving stack, which is the whole point:
    corruption exercises SDU protection, not the loss path.
    """

    __slots__ = ("probability", "max_flips")

    def __init__(self, probability: float, max_flips: int = 3) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"corruption probability must be in [0,1], "
                             f"got {probability}")
        if max_flips < 1:
            raise ValueError(f"max_flips must be >= 1, got {max_flips}")
        self.probability = float(probability)
        self.max_flips = int(max_flips)

    def should_corrupt(self, rng: random.Random) -> bool:
        return rng.random() < self.probability

    def corrupt(self, rng: random.Random, payload: Any) -> Any:
        if isinstance(payload, (bytes, bytearray)) and len(payload) > 0:
            data = bytearray(payload)
            flips = 1 + rng.randrange(self.max_flips)
            for _ in range(flips):
                data[rng.randrange(len(data))] ^= 1 + rng.randrange(255)
            return bytes(data)
        return CorruptedFrame(payload)


class ReorderModel:
    """Bounded-displacement reordering of in-flight frames.

    With probability ``probability`` a frame entering the wire is parked
    while up to ``depth`` later frames overtake it, then released (also
    released after ``max_hold`` seconds, so a lull cannot strand it, and
    immediately if the model is removed mid-run).  At most one frame per
    direction is parked at a time, which gives the invariant EFCP's
    sequencing tests pin: no frame's delivery position differs from its
    send position by more than ``depth``.
    """

    __slots__ = ("probability", "depth", "max_hold")

    def __init__(self, probability: float, depth: int = 3,
                 max_hold: float = 0.05) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"reorder probability must be in [0,1], "
                             f"got {probability}")
        if depth < 1:
            raise ValueError(f"reorder depth must be >= 1, got {depth}")
        if not (math.isfinite(max_hold) and max_hold >= 0.0):
            raise ValueError(f"max_hold must be finite and >= 0, "
                             f"got {max_hold}")
        self.probability = float(probability)
        self.depth = int(depth)
        self.max_hold = float(max_hold)

    def should_displace(self, rng: random.Random) -> bool:
        return rng.random() < self.probability


class _HeldFrame:
    """One in-flight frame parked by a :class:`ReorderModel`."""

    __slots__ = ("payload", "size", "remaining", "delay", "released")

    def __init__(self, payload: Any, size: int, remaining: int,
                 delay: float) -> None:
        self.payload = payload
        self.size = size
        self.remaining = remaining
        self.delay = delay
        self.released = False


class LinkConditions:
    """The composable impairment bundle one link carries.

    Any subset of the four slots may be set; ``None`` slots cost
    nothing on the frame path.  Bundles are treated as immutable by the
    link — injectors swap whole :class:`LinkConditions` objects (via
    :meth:`replace`) rather than mutating one in place, so saving and
    restoring a link's conditions is a plain reference copy.
    """

    __slots__ = ("jitter", "shaper", "corruption", "reorder")

    def __init__(self, jitter: Optional[JitterModel] = None,
                 shaper: Optional[BandwidthShaper] = None,
                 corruption: Optional[CorruptionModel] = None,
                 reorder: Optional[ReorderModel] = None) -> None:
        for value, kind, label in ((jitter, JitterModel, "jitter"),
                                   (shaper, BandwidthShaper, "shaper"),
                                   (corruption, CorruptionModel, "corruption"),
                                   (reorder, ReorderModel, "reorder")):
            if value is not None and not isinstance(value, kind):
                raise TypeError(f"{label} must be a {kind.__name__} or None, "
                                f"got {type(value).__name__}")
        self.jitter = jitter
        self.shaper = shaper
        self.corruption = corruption
        self.reorder = reorder

    def fresh(self) -> "LinkConditions":
        """A copy safe to install on another link.

        Stateless models (jitter, corruption, reorder policy) are
        shared; the token-bucket shaper carries per-link bucket state
        and is re-instantiated.  :meth:`~repro.sim.network.Network.connect`
        installs ``conditions.fresh()`` so one bundle can parameterize a
        whole builder-family topology without cross-link coupling.
        """
        shaper = (BandwidthShaper(self.shaper.rate_bps,
                                  self.shaper.burst_bytes)
                  if self.shaper is not None else None)
        return LinkConditions(self.jitter, shaper, self.corruption,
                              self.reorder)

    def replace(self, **changes: Any) -> "LinkConditions":
        """A new bundle with the named slots replaced."""
        fields = {"jitter": self.jitter, "shaper": self.shaper,
                  "corruption": self.corruption, "reorder": self.reorder}
        for key in changes:
            if key not in fields:
                raise TypeError(f"unknown condition slot {key!r}")
        fields.update(changes)
        return LinkConditions(**fields)

    @classmethod
    def from_dict(cls, value: Dict[str, Any]) -> Optional["LinkConditions"]:
        """Build a bundle from the JSON-safe spec form.

        Grammar (every key optional / None):

        * ``jitter``: ``{"model": "uniform", "amplitude": s}`` or
          ``{"model": "normal", "mean": s, "stddev": s, "cap": s}``,
          either with ``"preserve_order": bool``;
        * ``shaper``: ``{"rate_bps": f, "burst_bytes": f}``;
        * ``corruption``: ``{"probability": p, "max_flips": n}``;
        * ``reorder``: ``{"probability": p, "depth": n, "max_hold": s}``.

        Returns None when every slot is absent — no bundle at all.
        """
        unknown = set(value) - {"jitter", "shaper", "corruption", "reorder"}
        if unknown:
            raise ValueError(f"unknown condition keys {sorted(unknown)}")
        jitter_spec = value.get("jitter")
        jitter: Optional[JitterModel] = None
        if jitter_spec is not None:
            spec = dict(jitter_spec)
            model = spec.pop("model", "uniform")
            if model == "uniform":
                jitter = UniformJitter(**spec)
            elif model == "normal":
                jitter = NormalJitter(**spec)
            else:
                raise ValueError(f"unknown jitter model {model!r}")
        shaper_spec = value.get("shaper")
        shaper = (BandwidthShaper(**shaper_spec)
                  if shaper_spec is not None else None)
        corruption_spec = value.get("corruption")
        corruption = (CorruptionModel(**corruption_spec)
                      if corruption_spec is not None else None)
        reorder_spec = value.get("reorder")
        reorder = (ReorderModel(**reorder_spec)
                   if reorder_spec is not None else None)
        if (jitter is None and shaper is None and corruption is None
                and reorder is None):
            return None
        return cls(jitter=jitter, shaper=shaper, corruption=corruption,
                   reorder=reorder)

    def to_dict(self) -> Dict[str, Any]:
        """The bundle back in :meth:`from_dict`'s JSON-safe spec form.

        The inverse that makes condition-bearing links spec-capturable
        (:meth:`repro.shard.plan.NetworkSpec.from_network`): every model
        is a pure function of its constructor parameters plus a named
        RNG stream, and the shaper's bucket state is per-link (rebuilt
        by :meth:`fresh` on install), so the grammar dict loses
        nothing.  ``LinkConditions.from_dict(c.to_dict())`` is
        behaviorally identical to ``c`` on a fresh link.
        """
        spec: Dict[str, Any] = {}
        if isinstance(self.jitter, UniformJitter):
            spec["jitter"] = {"model": "uniform",
                              "amplitude": self.jitter.amplitude,
                              "preserve_order": self.jitter.preserve_order}
        elif isinstance(self.jitter, NormalJitter):
            spec["jitter"] = {"model": "normal", "mean": self.jitter.mean,
                              "stddev": self.jitter.stddev,
                              "cap": self.jitter.cap,
                              "preserve_order": self.jitter.preserve_order}
        elif self.jitter is not None:
            raise ValueError(f"jitter model "
                             f"{type(self.jitter).__name__} has no "
                             f"spec form")
        if self.shaper is not None:
            spec["shaper"] = {"rate_bps": self.shaper.rate_bps,
                              "burst_bytes": self.shaper.burst_bytes}
        if self.corruption is not None:
            spec["corruption"] = {"probability": self.corruption.probability,
                                  "max_flips": self.corruption.max_flips}
        if self.reorder is not None:
            spec["reorder"] = {"probability": self.reorder.probability,
                               "depth": self.reorder.depth,
                               "max_hold": self.reorder.max_hold}
        return spec

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        slots = [name for name in self.__slots__
                 if getattr(self, name) is not None]
        return f"<LinkConditions {'+'.join(slots) or 'empty'}>"


class LinkEnd:
    """One attachment point of a link.

    A stack element registers ``on_receive(payload, size_bytes)`` and calls
    :meth:`send` to transmit toward the peer end.
    """

    __slots__ = ("_link", "_index", "name", "_receiver")

    def __init__(self, link: "Link", index: int, name: str) -> None:
        self._link = link
        self._index = index
        self.name = name
        self._receiver: Optional[ReceiveCallback] = None

    @property
    def link(self) -> "Link":
        """The link this end belongs to."""
        return self._link

    @property
    def peer(self) -> "LinkEnd":
        """The opposite end of the link."""
        return self._link.ends[1 - self._index]

    def attach(self, receiver: ReceiveCallback) -> None:
        """Register the callback invoked for each delivered frame."""
        self._receiver = receiver

    def send(self, payload: Any, size_bytes: int) -> bool:
        """Enqueue a frame toward the peer; returns False if tail-dropped."""
        return self._link.transmit(self._index, payload, size_bytes)

    def deliver(self, payload: Any, size_bytes: int) -> None:
        """Hand a frame up the attached stack (no-op when nothing attached)."""
        if self._receiver is not None:
            self._receiver(payload, size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LinkEnd {self.name}>"


class Link:
    """A full-duplex point-to-point link between two systems.

    Parameters
    ----------
    engine:
        The simulation engine providing the clock and timers.
    name:
        Human-readable identifier used in traces.
    capacity_bps:
        Serialization rate of each direction, bits per second.
    delay:
        One-way propagation delay, seconds.
    loss:
        A :class:`LossModel` shared by both directions.
    queue_limit:
        Maximum frames queued per direction awaiting serialization.
    codec:
        Optional wire codec (an object with ``encode``/``decode``, e.g.
        the :mod:`repro.core.codec` module).  When set, the payload is
        encoded to pure data at serialization end — the moment the
        frame is "on the wire" — and decoded at delivery, so the link
        carries exactly what a real wire could.  ``sim`` stays
        stack-agnostic: the codec is injected by the layer above.
    rng / rng_factory:
        The per-link PRNG feeding the loss model.  ``rng_factory`` defers
        construction until the first frame actually needs a loss draw —
        a lossless link never materializes its PRNG, which matters at
        100k-link scale (a ``random.Random`` is ~2.5 KB of Mersenne
        state).  An explicit ``rng`` wins over the factory.  A factory
        may additionally accept one positional stream-suffix argument
        (``"jitter"``, ``"corrupt"``, ``"reorder"``): condition models
        draw from those separately named streams, so installing a
        condition never perturbs the loss stream (or any other link's
        streams).  The bare ``factory()`` call keeps feeding the loss
        model exactly as before.
    conditions:
        Optional :class:`LinkConditions` bundle (jitter, shaping,
        corruption, reordering), also assignable at runtime via the
        :attr:`conditions` property — that is how the scenario fault
        injectors turn conditions on and off mid-run.
    """

    __slots__ = ("_engine", "name", "capacity_bps", "delay", "loss",
                 "queue_limit", "_rng", "_rng_factory", "_tracer", "_codec",
                 "ends", "_queues", "_busy", "_up", "_observers",
                 "frames_sent", "frames_dropped_queue", "frames_dropped_loss",
                 "frames_delivered", "bytes_delivered", "frames_corrupted",
                 "_conditions", "_cond_rngs", "_reorder_held",
                 "_last_delivery", "_tx_label", "_rx_label")

    def __init__(self, engine: Engine, name: str, capacity_bps: float = 1e8,
                 delay: float = 0.001, loss: Optional[LossModel] = None,
                 queue_limit: int = 256, rng: Optional[random.Random] = None,
                 tracer: Optional[Tracer] = None, codec: Optional[Any] = None,
                 rng_factory: Optional[Callable[..., random.Random]] = None,
                 conditions: Optional[LinkConditions] = None
                 ) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._engine = engine
        self.name = name
        self.capacity_bps = float(capacity_bps)
        self.delay = float(delay)
        self.loss = loss if loss is not None else _NO_LOSS
        self.queue_limit = queue_limit
        self._rng = rng
        self._rng_factory = rng_factory
        self._tracer = tracer
        self._codec = codec
        self.ends: Tuple[LinkEnd, LinkEnd] = (
            LinkEnd(self, 0, f"{name}[0]"),
            LinkEnd(self, 1, f"{name}[1]"),
        )
        # per-direction state: queue of (payload, size) and busy flag.
        # deques: transmit queues are pure FIFOs and the O(n) list.pop(0)
        # dominated the hot path at thousand-system scale.
        self._queues: Tuple[Deque[Tuple[Any, int]], Deque[Tuple[Any, int]]] = (
            deque(), deque())
        self._busy = [False, False]
        self._up = True
        # observers notified with (link, up) on fail/repair — used by stacks
        # that model carrier detection (interface down when the link dies)
        self._observers: List[Callable[["Link", bool], None]] = []
        # statistics
        self.frames_sent = [0, 0]
        self.frames_dropped_queue = [0, 0]
        self.frames_dropped_loss = [0, 0]
        self.frames_delivered = [0, 0]
        self.bytes_delivered = [0, 0]
        self.frames_corrupted = [0, 0]
        # condition state, lazy: a clean link carries four None slots
        self._conditions: Optional[LinkConditions] = None
        self._cond_rngs: Optional[Dict[str, random.Random]] = None
        self._reorder_held: Optional[Tuple[List[_HeldFrame],
                                           List[_HeldFrame]]] = None
        self._last_delivery: Optional[List[float]] = None
        # event labels, precomputed: an f-string per scheduled event is
        # measurable at scale
        self._tx_label = f"{name}.tx"
        self._rx_label = f"{name}.rx"
        if conditions is not None:
            self.conditions = conditions

    # ------------------------------------------------------------------
    @property
    def up(self) -> bool:
        """False while the link is administratively failed."""
        return self._up

    @property
    def conditions(self) -> Optional[LinkConditions]:
        """The impairment bundle in effect, or None for a clean link."""
        return self._conditions

    @conditions.setter
    def conditions(self, value: Optional[LinkConditions]) -> None:
        if value is not None and not isinstance(value, LinkConditions):
            raise TypeError(f"conditions must be LinkConditions or None, "
                            f"got {type(value).__name__}")
        self._conditions = value
        if value is not None:
            if value.reorder is not None and self._reorder_held is None:
                self._reorder_held = ([], [])
            if value.jitter is not None and self._last_delivery is None:
                self._last_delivery = [0.0, 0.0]
        if (self._reorder_held is not None
                and (value is None or value.reorder is None)):
            # removing the reorder model releases any parked frame, in
            # order — its time on the wire is already spent, not re-drawn
            for direction in (0, 1):
                for entry in list(self._reorder_held[direction]):
                    self._release_held(direction, entry)

    def _condition_rng(self, purpose: str) -> random.Random:
        """The lazily built, per-purpose deterministic PRNG.

        Each purpose (``jitter``/``corrupt``/``reorder``) gets its own
        named stream via the link's ``rng_factory`` — independent of the
        loss stream and of every other link — so installing a condition
        mid-run cannot perturb any pre-existing draw sequence.  Links
        built without a factory derive a stable seed from
        ``"<link name>:<purpose>"`` instead.
        """
        rngs = self._cond_rngs
        if rngs is None:
            rngs = self._cond_rngs = {}
        rng = rngs.get(purpose)
        if rng is None:
            factory = self._rng_factory
            if factory is not None:
                rng = factory(purpose)
            else:
                digest = hashlib.sha256(
                    f"{self.name}:{purpose}".encode()).digest()
                rng = random.Random(int.from_bytes(digest[:8], "big"))
            rngs[purpose] = rng
        return rng

    def observe(self, callback: Callable[["Link", bool], None]) -> None:
        """Register for fail/repair notifications (carrier detection)."""
        self._observers.append(callback)

    def fail(self) -> None:
        """Take the link down: queued and future frames are discarded."""
        if not self._up:
            return
        self._up = False
        for direction in (0, 1):
            self._queues[direction].clear()
        held = self._reorder_held
        if held is not None:
            # frames parked by the reorder model die with the link, like
            # any other in-flight frame; the timeout event then no-ops
            for direction in (0, 1):
                for entry in held[direction]:
                    entry.released = True
                held[direction].clear()
        for callback in list(self._observers):
            callback(self, False)

    def repair(self) -> None:
        """Bring the link back up."""
        if self._up:
            return
        self._up = True
        for callback in list(self._observers):
            callback(self, True)

    def serialization_delay(self, size_bytes: int) -> float:
        """Time to clock ``size_bytes`` onto the wire at this capacity."""
        return size_bytes * 8.0 / self.capacity_bps

    # ------------------------------------------------------------------
    def transmit(self, from_index: int, payload: Any, size_bytes: int) -> bool:
        """Queue a frame in the given direction; returns False on tail drop."""
        if size_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {size_bytes}")
        if not self._up:
            self.frames_dropped_queue[from_index] += 1
            self._trace_count("link.drop.down")
            return False
        queue = self._queues[from_index]
        if len(queue) >= self.queue_limit:
            self.frames_dropped_queue[from_index] += 1
            self._trace_count("link.drop.queue")
            return False
        queue.append((payload, size_bytes))
        self.frames_sent[from_index] += 1
        if not self._busy[from_index]:
            self._serve(from_index)
        return True

    def _serve(self, direction: int) -> None:
        queue = self._queues[direction]
        if not queue or not self._up:
            self._busy[direction] = False
            return
        self._busy[direction] = True
        payload, size = queue.popleft()
        tx_time = self.serialization_delay(size)
        conditions = self._conditions
        if conditions is not None and conditions.shaper is not None:
            # the token-bucket wait precedes serialization, so shaping
            # keeps FIFO order and holds the direction busy meanwhile
            tx_time += conditions.shaper.reserve(direction, size,
                                                 self._engine.now)
        self._engine.call_later(
            tx_time, self._finish_serialization, direction, payload, size,
            label=self._tx_label)

    def _finish_serialization(self, direction: int, payload: Any, size: int) -> None:
        # The frame is on the wire; schedule delivery after propagation,
        # then immediately serve the next queued frame.
        if self._up:
            loss = self.loss
            if loss.lossless:
                # fast path: no RNG draw, and the lazy PRNG never exists
                self._schedule_delivery(direction, payload, size)
            else:
                rng = self._rng
                if rng is None:
                    factory = self._rng_factory
                    rng = factory() if factory is not None else random.Random(0)
                    self._rng = rng
                if loss.should_drop(rng, self._engine.now):
                    self.frames_dropped_loss[direction] += 1
                    self._trace_count("link.drop.loss")
                else:
                    self._schedule_delivery(direction, payload, size)
        self._serve(direction)

    def _schedule_delivery(self, direction: int, payload: Any, size: int) -> None:
        """Queue the on-the-wire frame for delivery after propagation.

        This is the serialization end — the single seam where a live
        payload becomes wire data.  With a codec installed the payload
        crosses as its encoded form; subclasses that cut a link at a
        simulation boundary (the shard subsystem's half-links) override
        this seam to capture the encoded frame instead of scheduling
        local delivery.  The loss decision, queueing, and serialization
        above it stay shared either way.

        Conditions apply here, to the wire form, in a fixed order —
        corruption, then jitter, then reordering — each drawing from its
        own named RNG stream (see :meth:`_condition_rng`).
        """
        conditions = self._conditions
        if conditions is None:
            if self._codec is not None:
                payload = self._codec.encode(payload)
            self._engine.call_later(
                self.delay, self._deliver, direction, payload, size,
                label=self._rx_label)
            return
        if self._codec is not None:
            payload = self._codec.encode(payload)
        corruption = conditions.corruption
        if corruption is not None:
            rng = self._condition_rng("corrupt")
            if corruption.should_corrupt(rng):
                payload = corruption.corrupt(rng, payload)
                self.frames_corrupted[direction] += 1
                self._trace_count("link.corrupted")
        delay = self.delay
        jitter = conditions.jitter
        if jitter is not None:
            delay += jitter.sample(self._condition_rng("jitter"))
        reorder = conditions.reorder
        held = self._reorder_held
        if (reorder is not None and not held[direction]
                and reorder.should_displace(self._condition_rng("reorder"))):
            # park this frame; it re-enters the wire once `depth` later
            # frames have overtaken it (or at the max_hold fallback,
            # measured from the moment it was parked)
            entry = _HeldFrame(payload, size, reorder.depth, delay)
            held[direction].append(entry)
            self._engine.call_later(
                reorder.max_hold, self._release_held, direction,
                entry, label=self._rx_label)
            return
        self._schedule_conditioned(direction, payload, size, delay, jitter)
        if held is not None and held[direction]:
            entry = held[direction][0]
            entry.remaining -= 1
            if entry.remaining <= 0:
                self._release_held(direction, entry)

    def _schedule_conditioned(self, direction: int, payload: Any, size: int,
                              delay: float,
                              jitter: Optional[JitterModel]) -> None:
        engine = self._engine
        when = engine.now + delay
        if jitter is not None and jitter.preserve_order:
            # clamp to the latest delivery already scheduled in this
            # direction: jitter stretches gaps, never reorders (engine
            # ties break by scheduling order, so equality is enough)
            last = self._last_delivery
            if when < last[direction]:
                when = last[direction]
            last[direction] = when
        engine.call_at(when, self._deliver, direction, payload, size,
                       label=self._rx_label)

    def _release_held(self, direction: int, entry: _HeldFrame) -> None:
        if entry.released:
            return
        entry.released = True
        held = self._reorder_held
        if held is not None:
            try:
                held[direction].remove(entry)
            except ValueError:
                pass
        if not self._up:
            return
        # deliberately displaced: skip the preserve_order clamp
        self._schedule_conditioned(direction, entry.payload, entry.size,
                                   entry.delay, None)

    def _deliver(self, direction: int, payload: Any, size: int) -> None:
        if not self._up:
            return
        if self._codec is not None and not isinstance(payload,
                                                      CorruptedFrame):
            payload = self._codec.decode(payload)
        self.frames_delivered[direction] += 1
        self.bytes_delivered[direction] += size
        self._trace_count("link.delivered")
        self.ends[1 - direction].deliver(payload, size)

    def _trace_count(self, name: str) -> None:
        if self._tracer is not None:
            self._tracer.count(name)

    # ------------------------------------------------------------------
    def utilization(self, elapsed: float, direction: int = 0) -> float:
        """Fraction of ``elapsed`` the direction spent serializing delivered
        bytes (an a-posteriori estimate used by the utilization experiment)."""
        if elapsed <= 0:
            return math.nan
        busy = self.bytes_delivered[direction] * 8.0 / self.capacity_bps
        return busy / elapsed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self._up else "DOWN"
        return f"<Link {self.name} {self.capacity_bps/1e6:.1f}Mbps {state}>"


class WirelessLink(Link):
    """A link whose loss follows an adjustable signal strength.

    Convenience wrapper: constructs a :class:`SignalLoss` model and exposes
    :attr:`signal` directly.  Used by Fig 3 (wireless DIFs) and Fig 5
    (mobility) experiments.
    """

    __slots__ = ("_signal_loss",)

    def __init__(self, engine: Engine, name: str, capacity_bps: float = 2e7,
                 delay: float = 0.004, signal: float = 1.0,
                 queue_limit: int = 128, rng: Optional[random.Random] = None,
                 tracer: Optional[Tracer] = None,
                 codec: Optional[Any] = None,
                 rng_factory: Optional[Callable[..., random.Random]] = None,
                 conditions: Optional[LinkConditions] = None
                 ) -> None:
        self._signal_loss = SignalLoss(signal=signal)
        super().__init__(engine, name, capacity_bps=capacity_bps, delay=delay,
                         loss=self._signal_loss, queue_limit=queue_limit,
                         rng=rng, tracer=tracer, codec=codec,
                         rng_factory=rng_factory, conditions=conditions)

    @property
    def signal(self) -> float:
        """Current signal strength in [0, 1]."""
        return self._signal_loss.signal

    @signal.setter
    def signal(self, value: float) -> None:
        self._signal_loss.signal = max(0.0, min(1.0, value))
