"""Metrics and tracing for experiments.

Three small primitives cover everything the benchmark harness reports:

* :class:`Counter` — monotonically increasing named counts.
* :class:`TimeSeries` — (time, value) samples, with summary statistics.
* :class:`Tracer` — a bag of counters/series plus an optional event log,
  shared by a whole simulation.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def incr(self, amount: int = 1) -> None:
        """Increase the counter; negative amounts are rejected."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class TimeSeries:
    """(time, value) samples with summary statistics."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def add(self, time: float, value: float) -> None:
        """Append one sample."""
        self.samples.append((time, float(value)))

    @property
    def values(self) -> List[float]:
        """Just the sampled values, in order."""
        return [v for _, v in self.samples]

    def count(self) -> int:
        """Number of samples."""
        return len(self.samples)

    def mean(self) -> float:
        """Arithmetic mean of the values (NaN when empty)."""
        if not self.samples:
            return math.nan
        return sum(self.values) / len(self.samples)

    def minimum(self) -> float:
        """Smallest value (NaN when empty)."""
        return min(self.values) if self.samples else math.nan

    def maximum(self) -> float:
        """Largest value (NaN when empty)."""
        return max(self.values) if self.samples else math.nan

    def stddev(self) -> float:
        """Population standard deviation (NaN when empty)."""
        if not self.samples:
            return math.nan
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / len(self.samples))

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile of the values, ``pct`` in [0, 100]."""
        if not self.samples:
            return math.nan
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1,
                          int(math.ceil(pct / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        """Dict of count/mean/min/max/p50/p95/p99 for reporting tables."""
        return {
            "count": float(self.count()),
            "mean": self.mean(),
            "min": self.minimum(),
            "max": self.maximum(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class Tracer:
    """Collection point for all measurements in one simulation run.

    Components grab counters/series by name; the experiment harness reads
    them afterwards.  An optional bounded event log captures qualitative
    traces (handoffs, enrollments, failovers) for assertions in tests.
    """

    def __init__(self, log_limit: int = 100_000) -> None:
        self._counters: Dict[str, Counter] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._log: List[Tuple[float, str, Dict[str, Any]]] = []
        self._log_limit = log_limit

    # -- counters ------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def count(self, name: str, amount: int = 1) -> None:
        """Shorthand for ``tracer.counter(name).incr(amount)``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        counter.incr(amount)

    def counter_value(self, name: str) -> int:
        """Value of ``name`` (0 if never touched)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def counters(self) -> Dict[str, int]:
        """Snapshot of all counters as a plain dict."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    # -- time series ---------------------------------------------------
    def series(self, name: str) -> TimeSeries:
        """Get or create the time series called ``name``."""
        ts = self._series.get(name)
        if ts is None:
            ts = TimeSeries(name)
            self._series[name] = ts
        return ts

    def sample(self, name: str, time: float, value: float) -> None:
        """Shorthand for ``tracer.series(name).add(time, value)``."""
        self.series(name).add(time, value)

    def series_names(self) -> List[str]:
        """All series created so far."""
        return sorted(self._series)

    # -- event log -----------------------------------------------------
    def log(self, time: float, kind: str, **fields: Any) -> None:
        """Record a qualitative event (bounded; oldest kept)."""
        if len(self._log) < self._log_limit:
            self._log.append((time, kind, fields))

    def events(self, kind: Optional[str] = None) -> List[Tuple[float, str, Dict[str, Any]]]:
        """All logged events, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._log)
        return [entry for entry in self._log if entry[1] == kind]
