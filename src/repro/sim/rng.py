"""Named, seeded random-number streams.

Experiments need independent randomness per concern (link loss, workload
arrivals, attacker behaviour...) that stays stable when unrelated code adds
or removes random draws.  :class:`RandomStreams` derives one
:class:`random.Random` per stream name from a master seed, so adding a new
stream never perturbs existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent named PRNG streams derived from one seed."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed all streams derive from."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the PRNG for ``name``, creating it deterministically on
        first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child :class:`RandomStreams` (e.g. per experiment trial)."""
        digest = hashlib.sha256(f"{self._seed}/{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
