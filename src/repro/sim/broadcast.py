"""A shared broadcast medium: one half-duplex channel, many attachments.

Point-to-point links model wires; wireless cells and legacy LANs are
*shared media*: every transmission occupies the one channel and is heard
by every other attachment.  The :class:`BroadcastMedium` models exactly
that — a single service queue (transmissions serialize on the channel),
per-receiver loss, and delivery to all attachments but the sender.

The multi-access shim DIF (:class:`repro.core.shim.BroadcastShimIpcp`)
turns one of these into a rank-0 IPC facility with more than two members.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from .engine import Engine
from .link import LossModel, NoLoss
from .trace import Tracer

ReceiveCallback = Callable[[Any, int], None]


class BroadcastEndpoint:
    """One attachment to a shared medium."""

    def __init__(self, medium: "BroadcastMedium", index: int, name: str) -> None:
        self._medium = medium
        self.index = index
        self.name = name
        self._receiver: Optional[ReceiveCallback] = None
        self.up = True

    def attach(self, receiver: ReceiveCallback) -> None:
        """Register the callback invoked for every heard frame."""
        self._receiver = receiver

    def send(self, payload: Any, size_bytes: int) -> bool:
        """Transmit onto the shared channel; False when queue-dropped."""
        return self._medium.transmit(self.index, payload, size_bytes)

    def deliver(self, payload: Any, size_bytes: int) -> None:
        """Hand a heard frame up the stack."""
        if self._receiver is not None and self.up:
            self._receiver(payload, size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BroadcastEndpoint {self.name}#{self.index}>"


class BroadcastMedium:
    """A half-duplex shared channel.

    All transmissions serialize through one queue at ``capacity_bps`` (the
    channel is busy for the frame's air time); each delivery applies the
    loss model independently per receiver, as radio reception does.
    """

    def __init__(self, engine: Engine, name: str, capacity_bps: float = 1e7,
                 delay: float = 0.002, loss: Optional[LossModel] = None,
                 queue_limit: int = 256, rng: Optional[random.Random] = None,
                 tracer: Optional[Tracer] = None) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        self._engine = engine
        self.name = name
        self.capacity_bps = float(capacity_bps)
        self.delay = float(delay)
        self.loss = loss if loss is not None else NoLoss()
        self.queue_limit = queue_limit
        self._rng = rng if rng is not None else random.Random(0)
        self._tracer = tracer
        self.endpoints: List[BroadcastEndpoint] = []
        self._queue: Deque[tuple] = deque()   # (sender index, payload, size)
        self._busy = False
        self._up = True
        self.frames_sent = 0
        self.frames_dropped_queue = 0
        self.deliveries = 0
        self.deliveries_lost = 0

    # ------------------------------------------------------------------
    def attach_endpoint(self, name: Optional[str] = None) -> BroadcastEndpoint:
        """Add one attachment to the medium."""
        index = len(self.endpoints)
        endpoint = BroadcastEndpoint(self, index,
                                     name or f"{self.name}[{index}]")
        self.endpoints.append(endpoint)
        return endpoint

    @property
    def up(self) -> bool:
        """False while the whole medium is failed (jammed)."""
        return self._up

    def fail(self) -> None:
        """Jam the medium."""
        self._up = False
        self._queue.clear()

    def repair(self) -> None:
        """Restore the medium."""
        self._up = True

    # ------------------------------------------------------------------
    def transmit(self, sender: int, payload: Any, size_bytes: int) -> bool:
        """Queue a frame for the shared channel."""
        if size_bytes <= 0:
            raise ValueError("frame size must be positive")
        if not self._up:
            self.frames_dropped_queue += 1
            return False
        if len(self._queue) >= self.queue_limit:
            self.frames_dropped_queue += 1
            if self._tracer is not None:
                self._tracer.count("medium.drop.queue")
            return False
        self._queue.append((sender, payload, size_bytes))
        self.frames_sent += 1
        if not self._busy:
            self._serve()
        return True

    def _serve(self) -> None:
        if not self._queue or not self._up:
            self._busy = False
            return
        self._busy = True
        sender, payload, size = self._queue.popleft()
        air_time = size * 8.0 / self.capacity_bps
        self._engine.call_later(air_time, self._finish, sender, payload, size,
                                label=f"{self.name}.air")

    def _finish(self, sender: int, payload: Any, size: int) -> None:
        if self._up:
            for endpoint in self.endpoints:
                if endpoint.index == sender or not endpoint.up:
                    continue
                if self.loss.should_drop(self._rng, self._engine.now):
                    self.deliveries_lost += 1
                    continue
                self.deliveries += 1
                self._engine.call_later(self.delay, endpoint.deliver,
                                        payload, size,
                                        label=f"{self.name}.rx")
        self._serve()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<BroadcastMedium {self.name} "
                f"{len(self.endpoints)} endpoints>")
