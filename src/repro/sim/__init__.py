"""Deterministic discrete-event simulation substrate.

This package replaces the physical testbed the paper's authors left to
future work: links with capacity/delay/loss (including signal-driven
wireless), nodes with interfaces, topology builders, seeded randomness, and
a tracer for experiment metrics.
"""

from .broadcast import BroadcastEndpoint, BroadcastMedium
from .engine import Engine, EngineClock, Event, PeriodicTask, SimulationError, Timer
from .link import (GilbertElliott, Link, LinkEnd, LossModel, NoLoss, SignalLoss,
                   UniformLoss, WirelessLink)
from .network import Network
from .node import Interface, Node
from .rng import RandomStreams
from .trace import Counter, TimeSeries, Tracer

__all__ = [
    "Engine", "EngineClock", "Event", "PeriodicTask", "SimulationError", "Timer",
    "Link", "LinkEnd", "LossModel", "NoLoss", "UniformLoss", "GilbertElliott",
    "SignalLoss", "WirelessLink",
    "Network", "Node", "Interface", "RandomStreams",
    "Counter", "TimeSeries", "Tracer",
    "BroadcastMedium", "BroadcastEndpoint",
]
