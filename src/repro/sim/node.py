"""Physical systems (hosts and routers) in the simulated network.

A :class:`Node` is a named chassis with numbered interfaces; each interface
is one end of a :class:`~repro.sim.link.Link`.  What runs *on* the node —
a stack of IPC processes, or the baseline TCP/IP stack — is layered on top
by `repro.core.system` / `repro.baselines`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from .engine import Engine
from .link import Link, LinkEnd


class Interface:
    """A named attachment of a node to a link."""

    __slots__ = ("node", "name", "end")

    def __init__(self, node: "Node", name: str, end: LinkEnd) -> None:
        self.node = node
        self.name = name
        self.end = end

    @property
    def link(self) -> Link:
        """The link this interface is plugged into."""
        return self.end.link

    @property
    def peer_interface_name(self) -> str:
        """Name of the link end on the far side (for diagnostics)."""
        return self.end.peer.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Interface {self.node.name}.{self.name} on {self.link.name}>"


class Node:
    """A host or router chassis."""

    __slots__ = ("engine", "name", "_interfaces", "_ifindex")

    def __init__(self, engine: Engine, name: str) -> None:
        self.engine = engine
        self.name = name
        self._interfaces: Dict[str, Interface] = {}
        self._ifindex = 0

    def add_interface(self, end: LinkEnd, name: Optional[str] = None) -> Interface:
        """Plug a link end into this node, returning the new interface."""
        if name is None:
            name = f"if{self._ifindex}"
        if name in self._interfaces:
            raise ValueError(f"{self.name} already has interface {name!r}")
        self._ifindex += 1
        interface = Interface(self, name, end)
        self._interfaces[name] = interface
        return interface

    def interface(self, name: str) -> Interface:
        """Look up an interface by name (KeyError if absent)."""
        return self._interfaces[name]

    def interfaces(self) -> Iterator[Interface]:
        """Iterate over interfaces in creation order."""
        return iter(self._interfaces.values())

    def interface_count(self) -> int:
        """Number of interfaces plugged in."""
        return len(self._interfaces)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.name} ifs={list(self._interfaces)}>"
