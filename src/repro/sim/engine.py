"""Deterministic discrete-event simulation engine.

Everything in this reproduction — the IPC architecture under test and the
TCP/IP-style baseline — runs on this engine, never on real sockets.  The
engine keeps a simulated clock (float seconds), a binary heap of distinct
pending timestamps, and a per-timestamp batch of events.  Determinism is
guaranteed by breaking timestamp ties with a monotonically increasing
sequence number (batch append order), so two runs with the same seed and
the same call order produce identical traces.

Typical use::

    engine = Engine()
    engine.call_at(1.5, lambda: print("hello at t=1.5"))
    engine.run(until=10.0)
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Engine.call_at` / :meth:`Engine.call_later`
    and can be cancelled.  A cancelled event stays in its timestamp batch but
    is skipped when reached (lazy deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "label",
                 "_expired", "_on_cancel")

    def __init__(self, time: float, seq: int, callback: Callable[..., None],
                 args: Tuple[Any, ...], label: str = "",
                 on_cancel: Optional[Callable[["Event"], None]] = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label
        self._expired = False      # popped from the heap (executed or skipped)
        self._on_cancel = on_cancel

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        if self.cancelled or self._expired:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel(self)

    @property
    def active(self) -> bool:
        """True if the event has not been cancelled."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {self.label!r} {state}>"


class Engine:
    """A priority-queue discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock (seconds).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        # Same-timestamp batching: the heap holds each *distinct* pending
        # timestamp once; the events for a timestamp live in a list keyed
        # by that exact float.  A burst of N simultaneous deliveries costs
        # one heappush plus N list appends instead of N heap sifts, and
        # within a batch append order IS seq order (the seq counter is
        # monotonic across scheduling calls), so execution order is
        # byte-identical to the old (time, seq) tuple heap.
        self._heap: List[float] = []
        self._batches: Dict[float, List[Event]] = {}
        # consumed prefix of a partially drained batch (only the batch at
        # the minimum timestamp can be mid-drain when run() returns early
        # on stop()/max_events, so this holds at most one meaningful entry)
        self._batch_pos: Dict[float, int] = {}
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._last_event_time = self._now
        self._max_events: Optional[int] = None
        self._live = 0   # non-cancelled events currently queued

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def last_event_time(self) -> float:
        """Timestamp of the most recently executed event (the start time
        before anything has run).

        Unlike :attr:`now` this never moves on an empty advance: a
        ``run(until=...)`` that parks the clock past the last event
        leaves it untouched.  That makes it the *causal* end of a run —
        a function of the events alone — where the parked clock is an
        artifact of whichever horizon the caller chose.  The shard
        traces render this value so per-shard fingerprints are
        invariant across coordinator round protocols, whose grant
        horizons park engines at different (causally irrelevant)
        instants.
        """
        return self._last_event_time

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still in the queue.

        O(1): a live-event counter is maintained on schedule/cancel/pop
        instead of scanning the heap (which grows with lazy deletions).
        """
        return self._live

    def _note_cancel(self, _event: Event) -> None:
        self._live -= 1

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest live event, or None when the queue is
        drained.

        Cancelled batch heads are skipped on the way (they are dead
        weight the run loop would skip anyway), and fully-cancelled
        batches are dropped, so the peek is amortized O(1).  Used by the
        shard coordinator to fast-forward synchronization rounds over
        quiet stretches of simulated time.
        """
        heap = self._heap
        batches = self._batches
        batch_pos = self._batch_pos
        while heap:
            when = heap[0]
            batch = batches[when]
            pos = batch_pos.pop(when, 0)
            length = len(batch)
            while pos < length and batch[pos].cancelled:
                batch[pos]._expired = True
                pos += 1
            if pos < length:
                if pos:
                    batch_pos[when] = pos
                return when
            del batches[when]
            heapq.heappop(heap)
        return None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, when: float, callback: Callable[..., None],
                *args: Any, label: str = "") -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``.

        Raises :class:`SimulationError` if ``when`` is in the past.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when:.6f}, clock is at t={self._now:.6f}")
        event = Event(when, next(self._seq), callback, args, label=label,
                      on_cancel=self._note_cancel)
        batch = self._batches.get(when)
        if batch is None:
            self._batches[when] = [event]
            heapq.heappush(self._heap, when)
        else:
            batch.append(event)
        self._live += 1
        return event

    def call_later(self, delay: float, callback: Callable[..., None],
                   *args: Any, label: str = "") -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds.

        Raises :class:`SimulationError` for negative delays.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        # inlined call_at: this is the hottest scheduling entry point
        when = self._now + delay
        event = Event(when, next(self._seq), callback, args, label=label,
                      on_cancel=self._note_cancel)
        batch = self._batches.get(when)
        if batch is None:
            self._batches[when] = [event]
            heapq.heappush(self._heap, when)
        else:
            batch.append(event)
        self._live += 1
        return event

    def call_soon(self, callback: Callable[..., None], *args: Any,
                  label: str = "") -> Event:
        """Schedule ``callback(*args)`` at the current time, after events
        already queued for this instant."""
        return self.call_at(self._now, callback, *args, label=label)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``
        events have been processed.

        Returns the simulated time at which the run stopped.  When an event
        horizon ``until`` is given and events remain beyond it, the clock is
        advanced exactly to ``until``.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        budget = max_events
        heap = self._heap
        batches = self._batches
        batch_pos = self._batch_pos
        heappop = heapq.heappop
        try:
            while heap:
                if self._stopped:
                    break
                when = heap[0]
                if until is not None and when > until:
                    self._now = until
                    break
                # drain the batch at the minimum timestamp in append (= seq)
                # order; callbacks may append same-time events to the live
                # list, which land after the cursor with higher seqs, so
                # len(batch) is re-read every iteration
                batch = batches[when]
                pos = batch_pos.pop(when, 0)
                interrupted = False
                while pos < len(batch):
                    event = batch[pos]
                    if event.cancelled:
                        event._expired = True
                        pos += 1
                        continue
                    if budget is not None and budget <= 0:
                        interrupted = True
                        break
                    pos += 1
                    event._expired = True
                    self._live -= 1
                    self._now = when
                    self._last_event_time = when
                    self._events_processed += 1
                    if budget is not None:
                        budget -= 1
                    event.callback(*event.args)
                    if self._stopped:
                        interrupted = True
                        break
                if interrupted and pos < len(batch):
                    # stop()/budget left live events at this timestamp:
                    # remember the consumed prefix for the next run()
                    batch_pos[when] = pos
                    break
                del batches[when]
                heappop(heap)
            else:
                # queue drained
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Stop a run in progress after the current event completes."""
        self._stopped = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine t={self._now:.6f} pending={self._live}>"


class Timer:
    """A restartable one-shot timer bound to an :class:`Engine`.

    Protocol machinery (EFCP retransmission, enrollment timeouts, SCTP
    heartbeats...) uses this instead of raw events so restart/cancel logic
    lives in one place.
    """

    def __init__(self, engine: Engine, callback: Callable[[], None],
                 label: str = "") -> None:
        self._engine = engine
        self._callback = callback
        self._label = label
        self._event: Optional[Event] = None

    @property
    def running(self) -> bool:
        """True while the timer is armed."""
        return self._event is not None and self._event.active

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._engine.call_later(delay, self._fire, label=self._label)

    def cancel(self) -> None:
        """Disarm the timer if armed; harmless otherwise."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTask:
    """Repeatedly invoke a callback at a fixed period until stopped."""

    def __init__(self, engine: Engine, period: float,
                 callback: Callable[[], None], label: str = "",
                 jitter_fn: Optional[Callable[[], float]] = None) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period!r}")
        self._engine = engine
        self._period = period
        self._callback = callback
        self._label = label
        self._jitter_fn = jitter_fn
        self._event: Optional[Event] = None
        self._stopped = True

    @property
    def running(self) -> bool:
        """True while the periodic task is scheduled."""
        return not self._stopped

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin firing; first invocation after ``initial_delay`` (default:
        one period)."""
        self._stopped = False
        delay = self._period if initial_delay is None else initial_delay
        self._schedule(delay)

    def stop(self) -> None:
        """Cease firing; safe to call repeatedly."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule(self, delay: float) -> None:
        if self._stopped:
            return
        self._event = self._engine.call_later(delay, self._tick, label=self._label)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._callback()
        jitter = self._jitter_fn() if self._jitter_fn is not None else 0.0
        self._schedule(max(1e-9, self._period + jitter))


class EngineClock:
    """A read-only view of an engine's clock, handed to components that must
    not be able to schedule events."""

    def __init__(self, engine: Engine) -> None:
        self._engine = engine

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._engine.now
