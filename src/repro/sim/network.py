"""Topology construction for experiments.

:class:`Network` owns the engine, tracer, RNG streams, nodes, and links of
one simulation, and offers builders for the topology families used across
the benchmark suite: chains, stars, trees, grids, and random Waxman-style
graphs (via networkx).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from .engine import Engine
from .link import Link, LinkConditions, LossModel, WirelessLink
from .node import Interface, Node
from .rng import RandomStreams
from .trace import Tracer


class Network:
    """One simulated network: engine + tracer + nodes + links.

    ``codec`` (optional, an ``encode``/``decode`` pair such as the
    :mod:`repro.core.codec` module) is handed to every link
    :meth:`connect` creates: payloads then cross each link in their
    pure-data wire form — the wire-faithful mode the codec tests use to
    prove encoding is behavior-invisible.  ``sim`` itself never imports
    a codec; the stack above injects one.
    """

    def __init__(self, seed: int = 0, codec: Optional[object] = None) -> None:
        self.engine = Engine()
        self.tracer = Tracer()
        self.codec = codec
        self.streams = RandomStreams(seed)
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[str, Link] = {}
        self._link_seq = itertools.count()
        # link-end → owning node name, maintained by connect(); spares
        # endpoints_of() the O(nodes × interfaces) scan at scale
        self._end_owner: Dict[int, str] = {}
        # ends deliberately left unattached (shard boundary half-links);
        # graph() skips these, while a merely *forgotten* attachment
        # still fails loudly
        self._ghost_ends: set = set()

    # ------------------------------------------------------------------
    def add_node(self, name: str) -> Node:
        """Create a node; names must be unique within the network."""
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        node = Node(self.engine, name)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        """Look up a node by name (KeyError if absent)."""
        return self.nodes[name]

    def connect(self, a: str, b: str, capacity_bps: float = 1e8,
                delay: float = 0.001, loss: Optional[LossModel] = None,
                queue_limit: int = 256, wireless: bool = False,
                name: Optional[str] = None,
                conditions: Optional[LinkConditions] = None) -> Link:
        """Create a link between nodes ``a`` and ``b`` and plug it in.

        With ``wireless=True`` a :class:`WirelessLink` (signal-driven loss)
        is built instead; ``loss`` is then ignored.  ``conditions`` is an
        optional :class:`~repro.sim.link.LinkConditions` impairment
        bundle (jitter/shaping/corruption/reordering).
        """
        # validate endpoints before any side effect (stream creation)
        self.node(a)
        self.node(b)
        if name is None:
            name = f"{a}--{b}#{next(self._link_seq)}"
        if name in self.links:
            raise ValueError(f"duplicate link name {name!r}")
        # The per-link loss PRNG is derived by name, so deferring its
        # construction to the first loss draw changes nothing — and a
        # lossless link never pays the ~2.5 KB Mersenne state at all.
        # A suffix names an auxiliary per-link stream ("jitter",
        # "corrupt", "reorder"): condition models draw from their own
        # streams, so the bare loss stream — and every other link's —
        # is never perturbed by installing a condition.
        def rng_factory(suffix: str = "",
                        _base: str = f"link:{name}") -> "random.Random":
            return self.streams.stream(f"{_base}:{suffix}" if suffix
                                       else _base)
        if conditions is not None:
            # one bundle may parameterize many links (builder families):
            # give each link its own copy of any stateful model
            conditions = conditions.fresh()
        if wireless:
            link: Link = WirelessLink(self.engine, name, capacity_bps=capacity_bps,
                                      delay=delay, queue_limit=queue_limit,
                                      rng_factory=rng_factory, tracer=self.tracer,
                                      codec=self.codec, conditions=conditions)
        else:
            link = Link(self.engine, name, capacity_bps=capacity_bps, delay=delay,
                        loss=loss, queue_limit=queue_limit,
                        rng_factory=rng_factory,
                        tracer=self.tracer, codec=self.codec,
                        conditions=conditions)
        return self.attach_link(link, a, b)

    def attach_link(self, link: Link, a: Optional[str],
                    b: Optional[str] = None) -> Link:
        """Register an externally constructed link (e.g. a custom
        :class:`Link` subclass): end 0 attaches to node ``a``, end 1 to
        ``b``; either may be ``None`` (but not both).  :meth:`connect`
        delegates here, so link registration bookkeeping lives in one
        place.

        The shard subsystem uses the one-sided forms for boundary
        half-links whose far end lives in another region's simulation —
        ``a=None`` when the local node owns the original link's *b*
        side, so frame direction indices (and anything keyed on them,
        like shim flow-id parity) match the unsharded link exactly.
        :meth:`graph` skips such links (their ghost end belongs to no
        local node), while :meth:`endpoints_of` on one raises KeyError.
        """
        if link.name in self.links:
            raise ValueError(f"duplicate link name {link.name!r}")
        if a is None and b is None:
            raise ValueError(f"link {link.name!r}: at least one end must "
                             f"attach to a node")
        self.links[link.name] = link
        for index, owner in ((0, a), (1, b)):
            if owner is not None:
                self.nodes[owner].add_interface(link.ends[index])
                self._end_owner[id(link.ends[index])] = owner
            else:
                self._ghost_ends.add(id(link.ends[index]))
        return link

    def endpoints_of(self, link: Link) -> Tuple[str, str]:
        """Node names at the two ends of ``link``."""
        return (self._owner_of(link.ends[0]), self._owner_of(link.ends[1]))

    def link_between(self, a: str, b: str) -> Link:
        """First link joining ``a`` and ``b`` (either order).

        The canonical ``a--b#seq`` name is tried first (cheap); links with
        custom names are found by their actual attachment points.
        """
        for name, link in self.links.items():
            base = name.split("#")[0]
            if base in (f"{a}--{b}", f"{b}--{a}"):
                return link
        for link in self.links.values():
            if set(self.endpoints_of(link)) == {a, b}:
                return link
        raise KeyError(f"no link between {a!r} and {b!r}")

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run the underlying engine."""
        return self.engine.run(until=until, max_events=max_events)

    # ------------------------------------------------------------------
    # Topology builders.  Each returns the list of node names created.
    # ------------------------------------------------------------------
    def build_chain(self, count: int, prefix: str = "n",
                    **link_kwargs: object) -> List[str]:
        """n0 - n1 - ... - n(count-1)."""
        if count < 1:
            raise ValueError("chain needs at least one node")
        names = [f"{prefix}{i}" for i in range(count)]
        for name in names:
            self.add_node(name)
        for left, right in zip(names, names[1:]):
            self.connect(left, right, **link_kwargs)
        return names

    def build_star(self, leaves: int, hub: str = "hub", prefix: str = "leaf",
                   **link_kwargs: object) -> Tuple[str, List[str]]:
        """A hub with ``leaves`` spokes; returns (hub, leaf names)."""
        self.add_node(hub)
        names = []
        for i in range(leaves):
            name = f"{prefix}{i}"
            self.add_node(name)
            self.connect(hub, name, **link_kwargs)
            names.append(name)
        return hub, names

    def build_tree(self, depth: int, arity: int, prefix: str = "t",
                   **link_kwargs: object) -> List[str]:
        """Complete ``arity``-ary tree of the given depth (root at depth 0).

        Node names encode their tree path: ``t``, ``t.0``, ``t.0.1`` ...
        """
        if depth < 0 or arity < 1:
            raise ValueError("depth must be >=0 and arity >=1")
        root = prefix
        self.add_node(root)
        names = [root]
        frontier = [root]
        for _ in range(depth):
            next_frontier = []
            for parent in frontier:
                for child_index in range(arity):
                    child = f"{parent}.{child_index}"
                    self.add_node(child)
                    self.connect(parent, child, **link_kwargs)
                    names.append(child)
                    next_frontier.append(child)
            frontier = next_frontier
        return names

    def build_grid(self, rows: int, cols: int, prefix: str = "g",
                   **link_kwargs: object) -> List[List[str]]:
        """rows × cols grid; returns the matrix of node names."""
        if rows < 1 or cols < 1:
            raise ValueError("grid needs positive dimensions")
        matrix = [[f"{prefix}{r}_{c}" for c in range(cols)] for r in range(rows)]
        for row in matrix:
            for name in row:
                self.add_node(name)
        for r in range(rows):
            for c in range(cols):
                if c + 1 < cols:
                    self.connect(matrix[r][c], matrix[r][c + 1], **link_kwargs)
                if r + 1 < rows:
                    self.connect(matrix[r][c], matrix[r + 1][c], **link_kwargs)
        return matrix

    def build_ring_of_stars(self, regions: int, hosts_per_region: int,
                            prefix: str = "s",
                            **link_kwargs: object) -> List[str]:
        """``regions`` hubs joined in a ring, each with its own star of
        ``hosts_per_region`` leaves — the E6 scale-tier plant shape
        (regional access stars over a redundant backbone ring).

        Returns hubs first (``s0..s{k-1}``), then leaves
        (``s{r}_h{i}``).  A ring of one region degenerates to a star; two
        regions get a single backbone link (no parallel ring edge).
        """
        if regions < 1 or hosts_per_region < 0:
            raise ValueError("ring_of_stars needs >=1 region and >=0 hosts")
        hubs = [f"{prefix}{r}" for r in range(regions)]
        for hub in hubs:
            self.add_node(hub)
        if regions == 2:
            self.connect(hubs[0], hubs[1], **link_kwargs)
        elif regions > 2:
            for index, hub in enumerate(hubs):
                self.connect(hub, hubs[(index + 1) % regions], **link_kwargs)
        leaves = []
        for r, hub in enumerate(hubs):
            for i in range(hosts_per_region):
                leaf = f"{prefix}{r}_h{i}"
                self.add_node(leaf)
                self.connect(hub, leaf, **link_kwargs)
                leaves.append(leaf)
        return hubs + leaves

    def build_random(self, count: int, edge_factor: float = 2.0,
                     prefix: str = "r", **link_kwargs: object) -> List[str]:
        """Connected random graph with ~``edge_factor * count`` edges.

        Built from a random spanning tree plus extra random edges — a cheap
        stand-in for Waxman/ISP graphs that guarantees connectivity.
        """
        if count < 1:
            raise ValueError("need at least one node")
        rng = self.streams.stream("topology")
        names = [f"{prefix}{i}" for i in range(count)]
        for name in names:
            self.add_node(name)
        # random spanning tree (random attachment)
        edges = set()
        for i in range(1, count):
            j = rng.randrange(i)
            edges.add((min(i, j), max(i, j)))
        target = max(count - 1, int(edge_factor * count))
        attempts = 0
        while len(edges) < target and attempts < 50 * count:
            attempts += 1
            i, j = rng.randrange(count), rng.randrange(count)
            if i != j:
                edges.add((min(i, j), max(i, j)))
        for i, j in sorted(edges):
            self.connect(names[i], names[j], **link_kwargs)
        return names

    # ------------------------------------------------------------------
    def graph(self) -> "nx.Graph":
        """The physical topology as a networkx graph (nodes by name).

        Links with a *deliberately* unattached end (shard boundary
        half-links registered via :meth:`attach_link` with ``b=None``)
        are skipped — the local graph only contains edges both of whose
        ends are here.  A merely forgotten attachment still raises, as
        before.
        """
        g = nx.Graph()
        g.add_nodes_from(self.nodes)
        for link in self.links.values():
            if any(id(end) in self._ghost_ends for end in link.ends):
                continue
            g.add_edge(self._owner_of(link.ends[0]),
                       self._owner_of(link.ends[1]), link=link)
        return g

    def _owner_of(self, end) -> str:
        owner = self._end_owner.get(id(end))
        if owner is not None:
            return owner
        # fallback for ends attached outside connect()/attach_link()
        for node in self.nodes.values():
            for interface in node.interfaces():
                if interface.end is end:
                    return node.name
        raise KeyError("link end not attached to any node")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Network nodes={len(self.nodes)} links={len(self.links)}>"
