"""PDU formats of the IPC architecture.

One DIF moves exactly three kinds of protocol data units:

* :class:`DataPdu` — EFCP data transfer (the DTP half of EFCP): carries one
  SDU (or fragment) between connection endpoints.
* :class:`ControlPdu` — EFCP transfer control (the DTCP half): acks and
  flow-control credit, decoupled from data as the paper's "different
  timescales" separation requires.
* :class:`ManagementPdu` — RIEP messages for the management task set
  (enrollment, directory, routing, flow allocation).

All PDUs carry DIF-internal ``src_addr``/``dst_addr`` — addresses never
appear above or below this layer boundary.  When an (N)-PDU travels through
an (N-1)-DIF it rides as an opaque SDU; its :meth:`wire_size` becomes the
(N-1) payload size, so per-layer header overhead accumulates realistically.
"""

from __future__ import annotations

from typing import Any, Optional

from .names import Address
from .riep import RiepMessage

#: Header overhead in bytes, per PDU kind (address pair, CEP-ids, sequence
#: numbers, flags).  Chosen to match a compact binary encoding.
DATA_HEADER_BYTES = 20
CONTROL_HEADER_BYTES = 20
MGMT_HEADER_BYTES = 24


class Pdu:
    """Base class: everything the RMT needs to relay a PDU."""

    __slots__ = ("src_addr", "dst_addr", "ttl", "priority")

    def __init__(self, src_addr: Optional[Address], dst_addr: Optional[Address],
                 ttl: int = 64, priority: int = 8) -> None:
        self.src_addr = src_addr
        self.dst_addr = dst_addr
        self.ttl = ttl
        self.priority = priority

    def wire_size(self) -> int:
        """Size of this PDU on the wire, in bytes."""
        raise NotImplementedError

    def encode(self) -> tuple:
        """The pure-data wire form (see :mod:`repro.core.codec`): a
        tagged tuple tree of scalars, safe to pickle across a process
        boundary and canonical enough to fingerprint."""
        from .codec import encode
        return encode(self)

    @staticmethod
    def decode(data: tuple) -> "Pdu":
        """Rebuild a PDU from its wire form (addresses re-interned,
        size caches restored)."""
        from .codec import decode
        pdu = decode(data)
        if not isinstance(pdu, Pdu):
            raise TypeError(f"wire data decodes to {type(pdu).__name__}, "
                            f"not a PDU")
        return pdu


class DataPdu(Pdu):
    """A DTP PDU: one SDU between EFCP connection endpoints.

    ``drf`` (data run flag) marks the first PDU of a run, letting the
    receiver synchronize its expected sequence number on a new connection.
    """

    __slots__ = ("src_cep", "dst_cep", "seq", "payload", "payload_size", "drf")

    def __init__(self, src_addr: Address, dst_addr: Address, src_cep: int,
                 dst_cep: int, seq: int, payload: Any, payload_size: int,
                 drf: bool = False, ttl: int = 64, priority: int = 8) -> None:
        super().__init__(src_addr, dst_addr, ttl=ttl, priority=priority)
        if payload_size < 0:
            raise ValueError("payload size must be non-negative")
        self.src_cep = src_cep
        self.dst_cep = dst_cep
        self.seq = seq
        self.payload = payload
        self.payload_size = payload_size
        self.drf = drf

    def wire_size(self) -> int:
        return DATA_HEADER_BYTES + self.payload_size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<DataPdu {self.src_addr}->{self.dst_addr} cep={self.dst_cep} "
                f"seq={self.seq} {self.payload_size}B>")


#: ControlPdu kinds.
ACK = "ack"
NACK = "nack"
CREDIT = "credit"
KEEPALIVE = "keepalive"


class ControlPdu(Pdu):
    """A DTCP PDU: acknowledgement / credit update / keepalive.

    ``ack_seq`` is cumulative (next expected sequence number); ``sack`` is an
    optional tuple of selectively acknowledged sequence numbers beyond the
    cumulative point; ``credit`` is the right edge of the send window the
    receiver grants.
    """

    __slots__ = ("kind", "src_cep", "dst_cep", "ack_seq", "credit", "sack")

    def __init__(self, src_addr: Address, dst_addr: Address, kind: str,
                 src_cep: int, dst_cep: int, ack_seq: int = 0,
                 credit: int = 0, sack: tuple = (), ttl: int = 64,
                 priority: int = 0) -> None:
        if kind not in (ACK, NACK, CREDIT, KEEPALIVE):
            raise ValueError(f"unknown control PDU kind {kind!r}")
        super().__init__(src_addr, dst_addr, ttl=ttl, priority=priority)
        self.kind = kind
        self.src_cep = src_cep
        self.dst_cep = dst_cep
        self.ack_seq = ack_seq
        self.credit = credit
        self.sack = tuple(sack)

    def wire_size(self) -> int:
        return CONTROL_HEADER_BYTES + 4 * len(self.sack)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ControlPdu {self.kind} {self.src_addr}->{self.dst_addr} "
                f"ack={self.ack_seq} credit={self.credit}>")


class ManagementPdu(Pdu):
    """A RIEP message in flight.

    ``dst_addr`` of ``None`` means hop-scoped: the PDU is consumed by the
    adjacent IPCP on the (N-1) port it arrived on, which is how enrollment
    talks to a neighbor before any address exists (§5.2).
    """

    __slots__ = ("message",)

    def __init__(self, src_addr: Optional[Address], dst_addr: Optional[Address],
                 message: Any, ttl: int = 64, priority: int = 1) -> None:
        super().__init__(src_addr, dst_addr, ttl=ttl, priority=priority)
        self.message = message

    def wire_size(self) -> int:
        message = self.message
        if isinstance(message, RiepMessage):
            return MGMT_HEADER_BYTES + message.estimate_size()
        estimate = getattr(message, "estimate_size", None)
        body = estimate() if callable(estimate) else 64
        return MGMT_HEADER_BYTES + body

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MgmtPdu {self.src_addr}->{self.dst_addr} {self.message!r}>"
