"""Routing within a DIF (§5.3, Fig 4).

Routing is a management task of the DIF, run *over the graph of its member
IPC processes*: each member floods a link-state advertisement (LSA) listing
its adjacencies (the neighbors it holds (N-1) flows to), every member keeps
the resulting link-state database, and shortest-path next hops feed the
RMT's forwarding function.

Crucially — and this is the paper's two-step model — routing only decides
the **next-hop node address** (step one).  Which (N-1) flow / point of
attachment carries the PDU to that next hop is the RMT path-selection
policy's business (step two).  Multihoming and mobility fall out of keeping
those steps distinct.

LSAs travel as hop-scoped RIEP ``M_WRITE`` messages on the object
``/routing/lsa`` and are re-flooded with sequence-number dedup, so the
**scope of a routing update is bounded by the DIF's scope** — the property
experiments E5/E6 quantify.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..sim.engine import Engine, Timer
from .addressing import aggregate_forwarding_table
from .names import Address
from .riep import M_WRITE, RiepMessage

LSA_OBJ = "/routing/lsa"

#: Tie-break: neighbor cost used when none is specified.
DEFAULT_COST = 1.0


class Lsa:
    """One origin's view of its adjacencies."""

    __slots__ = ("origin", "seq", "neighbors")

    def __init__(self, origin: Address, seq: int,
                 neighbors: Dict[Address, float]) -> None:
        self.origin = origin
        self.seq = seq
        self.neighbors = dict(neighbors)

    def to_value(self) -> dict:
        """JSON-like encoding carried in the RIEP message."""
        return {
            "origin": self.origin.parts,
            "seq": self.seq,
            "neighbors": [(addr.parts, cost)
                          for addr, cost in sorted(self.neighbors.items())],
        }

    @classmethod
    def from_value(cls, value: dict) -> "Lsa":
        """Decode the RIEP payload."""
        origin = Address(*value["origin"])
        neighbors = {Address(*parts): float(cost)
                     for parts, cost in value["neighbors"]}
        return cls(origin, int(value["seq"]), neighbors)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Lsa {self.origin} seq={self.seq} nbrs={len(self.neighbors)}>"


class LinkStateRouting:
    """The routing task of one IPC process.

    Parameters
    ----------
    engine:
        Simulation engine for the SPF hold-down timer.
    local_addr_fn:
        Returns this IPCP's current address (None before enrollment).
    flood_fn:
        ``flood_fn(message, exclude_neighbor)`` sends a hop-scoped RIEP
        message to every adjacent member except ``exclude_neighbor``.
    on_table_change:
        Invoked after each SPF run with the new next-hop table.
    spf_delay:
        Hold-down between an LSDB change and the SPF run (batches floods).
    """

    def __init__(self, engine: Engine,
                 local_addr_fn: Callable[[], Optional[Address]],
                 flood_fn: Callable[[RiepMessage, Optional[Address]], int],
                 on_table_change: Optional[Callable[[Dict[Address, Address]], None]] = None,
                 spf_delay: float = 0.02) -> None:
        self._engine = engine
        self._local_addr_fn = local_addr_fn
        self._flood = flood_fn
        self._on_table_change = on_table_change
        self._spf_delay = spf_delay
        self._lsdb: Dict[Address, Lsa] = {}
        self._own_seq = 0
        self._adjacencies: Dict[Address, float] = {}
        self._next_hop: Dict[Address, Address] = {}
        self._spf_timer = Timer(engine, self._run_spf, label="routing.spf")
        # counters for the scalability/mobility experiments
        self.lsas_originated = 0
        self.lsas_received = 0
        self.lsas_refloded = 0
        self.spf_runs = 0

    # ------------------------------------------------------------------
    # Adjacency management (called by the IPCP's neighbor monitoring)
    # ------------------------------------------------------------------
    def neighbor_up(self, neighbor: Address, cost: float = DEFAULT_COST) -> None:
        """Record a new usable adjacency and advertise it."""
        if self._adjacencies.get(neighbor) == cost:
            return
        self._adjacencies[neighbor] = cost
        self._originate()

    def neighbor_down(self, neighbor: Address) -> None:
        """Withdraw an adjacency (flow lost or member departed)."""
        if neighbor not in self._adjacencies:
            return
        del self._adjacencies[neighbor]
        self._originate()

    def reset(self) -> None:
        """Forget every learned LSA, adjacency, and route (crash).

        ``_own_seq`` deliberately survives: if the member re-enrolls and is
        handed a recycled address, its fresh LSAs must outrank the stale
        ones other members still hold for that address.
        """
        self._lsdb.clear()
        self._adjacencies.clear()
        self._next_hop.clear()
        self._spf_timer.cancel()

    def adjacencies(self) -> Dict[Address, float]:
        """Current local adjacency set (copy)."""
        return dict(self._adjacencies)

    def _originate(self) -> None:
        local = self._local_addr_fn()
        if local is None:
            return
        self._own_seq += 1
        lsa = Lsa(local, self._own_seq, self._adjacencies)
        self._lsdb[local] = lsa
        self.lsas_originated += 1
        message = RiepMessage(M_WRITE, obj=LSA_OBJ, value=lsa.to_value())
        self._flood(message, None)
        self._schedule_spf()

    def refresh(self) -> None:
        """Anti-entropy re-origination (same adjacencies, bumped seq)."""
        if self._adjacencies or self._own_seq:
            self._originate()

    # ------------------------------------------------------------------
    # Flooding
    # ------------------------------------------------------------------
    def handle_lsa(self, message: RiepMessage, from_neighbor: Address) -> None:
        """Process a received ``M_WRITE /routing/lsa`` message."""
        lsa = Lsa.from_value(message.value)
        self.lsas_received += 1
        current = self._lsdb.get(lsa.origin)
        if current is not None and current.seq >= lsa.seq:
            return  # stale or duplicate: flooding stops here
        self._lsdb[lsa.origin] = lsa
        self.lsas_refloded += 1
        self._flood(message, from_neighbor)
        self._schedule_spf()

    def sync_lsdb(self) -> List[dict]:
        """Snapshot of the LSDB for bulk transfer to a newly enrolled member."""
        return [lsa.to_value() for _origin, lsa in sorted(self._lsdb.items())]

    def load_lsdb(self, values: Sequence[dict]) -> None:
        """Install a bulk LSDB snapshot (enrollment fast-sync)."""
        changed = False
        for value in values:
            lsa = Lsa.from_value(value)
            current = self._lsdb.get(lsa.origin)
            if current is None or current.seq < lsa.seq:
                self._lsdb[lsa.origin] = lsa
                changed = True
        if changed:
            self._schedule_spf()

    # ------------------------------------------------------------------
    # Shortest paths
    # ------------------------------------------------------------------
    def _schedule_spf(self) -> None:
        if not self._spf_timer.running:
            self._spf_timer.start(self._spf_delay)

    def _run_spf(self) -> None:
        local = self._local_addr_fn()
        if local is None:
            return
        self.spf_runs += 1
        graph = self._two_way_graph()
        self._next_hop = self._dijkstra(local, graph)
        if self._on_table_change is not None:
            self._on_table_change(dict(self._next_hop))

    def _two_way_graph(self) -> Dict[Address, Dict[Address, float]]:
        """Edges confirmed by both endpoints' LSAs (standard two-way check).

        The local node's live adjacency set overrides its stored LSA so a
        just-changed neighbor is usable before the LSA round-trips.
        """
        local = self._local_addr_fn()
        claims: Dict[Address, Dict[Address, float]] = {
            origin: dict(lsa.neighbors) for origin, lsa in self._lsdb.items()}
        if local is not None:
            claims[local] = dict(self._adjacencies)
        graph: Dict[Address, Dict[Address, float]] = {}
        for a, neighbors in claims.items():
            for b, cost in neighbors.items():
                back = claims.get(b, {})
                if a in back:
                    graph.setdefault(a, {})[b] = max(cost, back[a])
        return graph

    def _dijkstra(self, source: Address,
                  graph: Dict[Address, Dict[Address, float]]) -> Dict[Address, Address]:
        import heapq
        dist: Dict[Address, float] = {source: 0.0}
        first_hop: Dict[Address, Optional[Address]] = {source: None}
        heap: List[Tuple[float, Tuple[int, ...], Address]] = [
            (0.0, source.parts, source)]
        visited: Set[Address] = set()
        while heap:
            d, _tie, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for neighbor, cost in graph.get(node, {}).items():
                nd = d + cost
                if neighbor not in dist or nd < dist[neighbor] - 1e-12:
                    dist[neighbor] = nd
                    first_hop[neighbor] = neighbor if node == source else first_hop[node]
                    heapq.heappush(heap, (nd, neighbor.parts, neighbor))
        table = {}
        for dst, hop in first_hop.items():
            if dst != source and hop is not None:
                table[dst] = hop
        return table

    # ------------------------------------------------------------------
    # Introspection / metrics
    # ------------------------------------------------------------------
    def next_hop(self, destination: Address) -> Optional[Address]:
        """Step one of two-step routing: destination → next-hop address."""
        return self._next_hop.get(destination)

    def table(self) -> Dict[Address, Address]:
        """The full next-hop table (copy)."""
        return dict(self._next_hop)

    def table_size(self) -> int:
        """Number of destination entries — the E6/A1 metric."""
        return len(self._next_hop)

    def aggregated_table_size(self) -> int:
        """Entries after topological prefix aggregation (A1 metric)."""
        return len(aggregate_forwarding_table(self._next_hop))

    def reachable(self) -> Set[Address]:
        """Destinations the current table can reach."""
        return set(self._next_hop)

    def lsdb_size(self) -> int:
        """Number of LSAs held."""
        return len(self._lsdb)

    def force_spf(self) -> None:
        """Run SPF immediately (tests and convergence measurements)."""
        self._spf_timer.cancel()
        self._run_spf()
