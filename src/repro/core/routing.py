"""Routing within a DIF (§5.3, Fig 4).

Routing is a management task of the DIF, run *over the graph of its member
IPC processes*: each member floods a link-state advertisement (LSA) listing
its adjacencies (the neighbors it holds (N-1) flows to), every member keeps
the resulting link-state database, and shortest-path next hops feed the
RMT's forwarding function.

Crucially — and this is the paper's two-step model — routing only decides
the **next-hop node address** (step one).  Which (N-1) flow / point of
attachment carries the PDU to that next hop is the RMT path-selection
policy's business (step two).  Multihoming and mobility fall out of keeping
those steps distinct.

LSAs travel as hop-scoped RIEP ``M_WRITE`` messages on the object
``/routing/lsa`` and are re-flooded with sequence-number dedup, so the
**scope of a routing update is bounded by the DIF's scope** — the property
experiments E5/E6 quantify.

Scaling (the E6 1,000-system tier) forced the routing task incremental:

* the two-way-confirmed graph is **memoized** and patched edge-by-edge as
  LSAs arrive, instead of being rebuilt from the whole LSDB before every
  SPF run;
* an accepted LSA that does not change its origin's advertised neighbor
  set (a pure sequence-number refresh) is stored and re-flooded but does
  **not** mark the SPF dirty — the hold-down timer still fires on the same
  schedule (the event stream is part of the determinism contract), the
  Dijkstra is simply skipped;
* optionally (``partial_spf``), a dirty-region check against the previous
  run's distances proves many edge changes irrelevant — an added edge that
  strictly improves no path, or a removed edge that was strictly off every
  shortest path, cannot alter the table, so the Dijkstra is skipped.  The
  check is conservative about ties (an equal-cost edge is always treated
  as relevant) so the table stays byte-identical to a full recompute.
"""

from __future__ import annotations

import math
from array import array
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..sim.engine import Engine, Timer
from .addressing import aggregate_forwarding_table
from .names import Address
from .riep import M_WRITE, RiepMessage

LSA_OBJ = "/routing/lsa"

#: Tie-break: neighbor cost used when none is specified.
DEFAULT_COST = 1.0


class Lsa:
    """One origin's view of its adjacencies."""

    __slots__ = ("origin", "seq", "neighbors", "_value_cache")

    def __init__(self, origin: Address, seq: int,
                 neighbors: Dict[Address, float]) -> None:
        self.origin = origin
        self.seq = seq
        self.neighbors = dict(neighbors)
        self._value_cache: Optional[dict] = None

    def to_value(self) -> dict:
        """JSON-like encoding carried in the RIEP message.

        Cached (an LSA is immutable once stored): enrollment fast-sync
        re-encodes the whole LSDB for every joining member, which at
        thousand-member scale was quadratic dict construction.
        """
        if self._value_cache is None:
            self._value_cache = {
                "origin": self.origin.parts,
                "seq": self.seq,
                "neighbors": [(addr.parts, cost)
                              for addr, cost in sorted(self.neighbors.items())],
            }
        return self._value_cache

    @classmethod
    def from_value(cls, value: dict) -> "Lsa":
        """Decode the RIEP payload."""
        origin = Address(*value["origin"])
        neighbors = {Address(*parts): float(cost)
                     for parts, cost in value["neighbors"]}
        lsa = cls(origin, int(value["seq"]), neighbors)
        lsa._value_cache = value
        return lsa

    def encode(self) -> tuple:
        """Pure-data wire form (tagged tuple of scalars)."""
        from .codec import encode
        return encode(self)

    @staticmethod
    def decode(data: tuple) -> "Lsa":
        """Rebuild an LSA from its wire form (addresses re-interned;
        the value cache is recomputed lazily from identical data)."""
        from .codec import decode
        lsa = decode(data)
        if not isinstance(lsa, Lsa):
            raise TypeError(f"wire data decodes to {type(lsa).__name__}, "
                            f"not an Lsa")
        return lsa

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Lsa {self.origin} seq={self.seq} nbrs={len(self.neighbors)}>"


class LsdbTable:
    """Columnar link-state database.

    Origins are interned to dense row ids; the stored sequence number per
    origin — the only column the flooding dedup hot path reads — lives in
    one contiguous int64 array, while the decoded LSA payloads (variable-
    size neighbor maps) sit in a parallel list.  ``handle_lsa`` can then
    reject the common case (a duplicate or stale flood copy) on an array
    read without touching the payload object at all.
    """

    __slots__ = ("_row_of", "_origins", "seqs", "_lsas")

    def __init__(self) -> None:
        self._row_of: Dict[Address, int] = {}
        self._origins: List[Address] = []      # row id -> origin
        self.seqs = array("q")                 # row id -> stored seq
        self._lsas: List[Lsa] = []             # row id -> payload

    def seq_of(self, origin: Address) -> Optional[int]:
        """Stored sequence number for ``origin`` (None when absent) —
        the dedup fast path."""
        row = self._row_of.get(origin)
        return None if row is None else self.seqs[row]

    def get(self, origin: Address) -> Optional[Lsa]:
        """The stored LSA for ``origin``, or None."""
        row = self._row_of.get(origin)
        return None if row is None else self._lsas[row]

    def put(self, lsa: Lsa) -> None:
        """Install/replace the LSA for its origin."""
        row = self._row_of.get(lsa.origin)
        if row is None:
            self._row_of[lsa.origin] = len(self._origins)
            self._origins.append(lsa.origin)
            self.seqs.append(lsa.seq)
            self._lsas.append(lsa)
        else:
            self.seqs[row] = lsa.seq
            self._lsas[row] = lsa

    def values_sorted(self) -> List[Lsa]:
        """LSAs in origin order (bulk-transfer snapshots)."""
        order = sorted(self._row_of.items())
        return [self._lsas[row] for _origin, row in order]

    def clear(self) -> None:
        self._row_of.clear()
        del self._origins[:]
        del self.seqs[:]
        del self._lsas[:]

    def __len__(self) -> int:
        return len(self._row_of)


class LinkStateRouting:
    """The routing task of one IPC process.

    Parameters
    ----------
    engine:
        Simulation engine for the SPF hold-down timer.
    local_addr_fn:
        Returns this IPCP's current address (None before enrollment).
    flood_fn:
        ``flood_fn(message, exclude_neighbor)`` sends a hop-scoped RIEP
        message to every adjacent member except ``exclude_neighbor``.
    on_table_change:
        Invoked after each SPF run that recomputed the table.
    spf_delay:
        Hold-down between an LSDB change and the SPF run (batches floods).
    partial_spf:
        Enable the dirty-region skip: when every edge change since the
        last run is provably irrelevant to the shortest-path tree, the
        Dijkstra is elided.  Exact — disable only for A/B measurement.
    """

    __slots__ = ("_engine", "_local_addr_fn", "_flood", "_on_table_change",
                 "_spf_delay", "_partial_spf", "_lsdb", "_own_seq",
                 "_adjacencies", "_next_hop", "_spf_timer", "_claims",
                 "_graph", "_dirty_edge_costs", "_dirty", "_spf_pending",
                 "_dist", "_spf_source", "lsas_originated", "lsas_received",
                 "lsas_reflooded", "spf_runs", "spf_skipped",
                 "spf_partial_skips")

    def __init__(self, engine: Engine,
                 local_addr_fn: Callable[[], Optional[Address]],
                 flood_fn: Callable[[RiepMessage, Optional[Address]], int],
                 on_table_change: Optional[Callable[[Dict[Address, Address]], None]] = None,
                 spf_delay: float = 0.02, partial_spf: bool = True) -> None:
        self._engine = engine
        self._local_addr_fn = local_addr_fn
        self._flood = flood_fn
        self._on_table_change = on_table_change
        self._spf_delay = spf_delay
        self._partial_spf = partial_spf
        self._lsdb = LsdbTable()
        self._own_seq = 0
        self._adjacencies: Dict[Address, float] = {}
        self._next_hop: Dict[Address, Address] = {}
        self._spf_timer = Timer(engine, self._run_spf, label="routing.spf")
        # memoized two-way graph, patched incrementally as claims change
        self._claims: Dict[Address, Dict[Address, float]] = {}
        self._graph: Dict[Address, Dict[Address, float]] = {}
        # edge → cost at the time of the last SPF run (None: absent then);
        # only edges touched since that run appear here
        self._dirty_edge_costs: Dict[Tuple[Address, Address], Optional[float]] = {}
        self._dirty = False            # any claim change since the last run
        self._spf_pending = False      # hold-down fired; recompute on query
        self._dist: Dict[Address, float] = {}   # last run's distances
        self._spf_source: Optional[Address] = None
        # counters for the scalability/mobility experiments
        self.lsas_originated = 0
        self.lsas_received = 0
        self.lsas_reflooded = 0
        self.spf_runs = 0
        self.spf_skipped = 0           # hold-down fired, nothing dirty
        self.spf_partial_skips = 0     # dirty edges proved irrelevant

    # ------------------------------------------------------------------
    # Adjacency management (called by the IPCP's neighbor monitoring)
    # ------------------------------------------------------------------
    def neighbor_up(self, neighbor: Address, cost: float = DEFAULT_COST) -> None:
        """Record a new usable adjacency and advertise it."""
        if self._adjacencies.get(neighbor) == cost:
            return
        self._adjacencies[neighbor] = cost
        self._sync_local_claim()
        self._originate()

    def neighbor_down(self, neighbor: Address) -> None:
        """Withdraw an adjacency (flow lost or member departed)."""
        if neighbor not in self._adjacencies:
            return
        del self._adjacencies[neighbor]
        self._sync_local_claim()
        self._originate()

    def reset(self) -> None:
        """Forget every learned LSA, adjacency, and route (crash).

        ``_own_seq`` deliberately survives: if the member re-enrolls and is
        handed a recycled address, its fresh LSAs must outrank the stale
        ones other members still hold for that address.
        """
        self._lsdb.clear()
        self._adjacencies.clear()
        self._next_hop.clear()
        self._claims.clear()
        self._graph.clear()
        self._dirty_edge_costs.clear()
        self._dist = {}
        self._spf_source = None
        self._dirty = True
        self._spf_pending = False
        self._spf_timer.cancel()

    def adjacencies(self) -> Dict[Address, float]:
        """Current local adjacency set (copy)."""
        return dict(self._adjacencies)

    def _originate(self) -> None:
        local = self._local_addr_fn()
        if local is None:
            return
        self._own_seq += 1
        lsa = Lsa(local, self._own_seq, self._adjacencies)
        self._lsdb.put(lsa)
        self._sync_local_claim()
        self.lsas_originated += 1
        message = RiepMessage(M_WRITE, obj=LSA_OBJ, value=lsa.to_value())
        self._flood(message, None)
        self._schedule_spf()

    def refresh(self) -> None:
        """Anti-entropy re-origination (same adjacencies, bumped seq)."""
        if self._adjacencies or self._own_seq:
            self._originate()

    # ------------------------------------------------------------------
    # Flooding
    # ------------------------------------------------------------------
    def handle_lsa(self, message: RiepMessage, from_neighbor: Address) -> None:
        """Process a received ``M_WRITE /routing/lsa`` message."""
        self.lsas_received += 1
        # dedup on (origin, seq) before decoding the neighbor list: most
        # floods arrive several times and only the first copy is fresh —
        # one read of the columnar seq array settles those
        value = message.value
        origin = Address(*value["origin"])
        current_seq = self._lsdb.seq_of(origin)
        if current_seq is not None and current_seq >= int(value["seq"]):
            return  # stale or duplicate: flooding stops here
        lsa = Lsa.from_value(value)
        self._lsdb.put(lsa)
        self.lsas_reflooded += 1
        self._flood(message, from_neighbor)
        # patch the memoized graph; a pure seq refresh (identical neighbor
        # set) leaves it clean, so the coming SPF fire will skip Dijkstra
        if lsa.origin != self._local_addr_fn():
            self._set_claim(lsa.origin, lsa.neighbors)
        self._schedule_spf()

    def sync_lsdb(self) -> List[dict]:
        """Snapshot of the LSDB for bulk transfer to a newly enrolled member."""
        return [lsa.to_value() for lsa in self._lsdb.values_sorted()]

    def load_lsdb(self, values: Sequence[dict]) -> None:
        """Install a bulk LSDB snapshot (enrollment fast-sync)."""
        changed = False
        local = self._local_addr_fn()
        for value in values:
            lsa = Lsa.from_value(value)
            current_seq = self._lsdb.seq_of(lsa.origin)
            if current_seq is None or current_seq < lsa.seq:
                self._lsdb.put(lsa)
                if lsa.origin != local:
                    self._set_claim(lsa.origin, lsa.neighbors)
                changed = True
        if changed:
            self._schedule_spf()

    # ------------------------------------------------------------------
    # Shortest paths
    # ------------------------------------------------------------------
    def _schedule_spf(self) -> None:
        if not self._spf_timer.running:
            self._spf_timer.start(self._spf_delay)

    def _run_spf(self) -> None:
        """Hold-down timer fired: the table may now be recomputed.

        The recomputation itself is deferred to the first table query
        (``next_hop``/``table``/...): during stack construction and flood
        storms members see LSA bursts but forward no routed traffic, so
        eagerly recomputing per member per burst is pure waste — the E6
        build at 1,000 systems runs thousands of Dijkstras nobody reads.
        Determinism is unaffected (same seed → same query points), and
        the engine's event stream is untouched because the timer schedule
        is unchanged.

        Deliberate semantic choice: a deferred recompute runs over the
        graph *as of the query*, so it may fold in LSAs that arrived
        after this fire and whose own hold-down has not yet expired.
        Forwarding therefore uses link-state that is monotonically
        fresher than the eager schedule would have — never staler — and
        the hold-down keeps batching the *cost*.  If an experiment ever
        needs fire-time snapshots (eager semantics), recompute here
        instead of setting the flag.
        """
        self._spf_pending = True

    def _ensure_table(self) -> None:
        if self._spf_pending:
            self._spf_pending = False
            self._compute_spf()

    def _compute_spf(self) -> None:
        local = self._local_addr_fn()
        if local is None:
            return
        if self._spf_source is not None and self._spf_source != local:
            # address changed without a reset: the old address is no
            # longer locally overridden — fall back to its stored LSA
            previous = self._lsdb.get(self._spf_source)
            self._set_claim(self._spf_source,
                            previous.neighbors if previous else {})
        self._sync_local_claim()
        if not self._dirty and self._spf_source == local:
            self.spf_skipped += 1
            return
        dirty_edges = self._dirty_edge_costs
        self._dirty_edge_costs = {}
        self._dirty = False
        if (self._partial_spf and self._spf_source == local
                and self._edges_irrelevant(dirty_edges)):
            self.spf_partial_skips += 1
            return
        self.spf_runs += 1
        self._spf_source = local
        self._next_hop, self._dist = self._dijkstra(local, self._graph)
        if self._on_table_change is not None:
            self._on_table_change(dict(self._next_hop))

    # -- memoized two-way graph ----------------------------------------
    def _sync_local_claim(self) -> None:
        """The local node's live adjacency set overrides its stored LSA so
        a just-changed neighbor is usable before the LSA round-trips."""
        local = self._local_addr_fn()
        if local is not None and self._claims.get(local) != self._adjacencies:
            self._set_claim(local, self._adjacencies)

    def _set_claim(self, origin: Address,
                   neighbors: Dict[Address, float]) -> None:
        """Install one origin's claimed adjacency set and patch every
        two-way edge it touches (standard two-way check: an edge exists
        only when both endpoints claim each other; cost = max of claims)."""
        old = self._claims.get(origin)
        if old == neighbors:
            return
        if old is None:
            old = {}
        # only pairs whose claimed cost actually moved can change an edge
        touched = [peer for peer in set(old) | set(neighbors)
                   if old.get(peer) != neighbors.get(peer)]
        if neighbors:
            self._claims[origin] = dict(neighbors)
        else:
            self._claims.pop(origin, None)
        for peer in touched:
            self._refresh_edge(origin, peer)
        self._dirty = True

    def _refresh_edge(self, a: Address, b: Address) -> None:
        claims = self._claims
        row_a = claims.get(a)
        row_b = claims.get(b)
        ab = None if row_a is None else row_a.get(b)
        ba = None if row_b is None else row_b.get(a)
        new = max(ab, ba) if ab is not None and ba is not None else None
        row = self._graph.get(a)
        cur = None if row is None else row.get(b)
        if new == cur:
            return
        key = (a, b) if a < b else (b, a)
        # remember the cost as of the last SPF run (first change wins)
        self._dirty_edge_costs.setdefault(key, cur)
        if new is None:
            del row[b]
            if not row:
                del self._graph[a]
            back = self._graph[b]
            del back[a]
            if not back:
                del self._graph[b]
        else:
            self._graph.setdefault(a, {})[b] = new
            self._graph.setdefault(b, {})[a] = new

    def _edges_irrelevant(self,
                          dirty: Dict[Tuple[Address, Address],
                                      Optional[float]]) -> bool:
        """True when every edge change since the last run provably leaves
        the shortest-path tree alone (checked against the last run's
        distances; conservative about equal-cost ties)."""
        dist = self._dist
        inf = math.inf
        eps = 1e-12
        for (a, b), old_cost in dirty.items():
            new_cost = self._graph.get(a, {}).get(b)
            if new_cost == old_cost:
                continue  # changed and changed back between runs
            da = dist.get(a, inf)
            db = dist.get(b, inf)
            if math.isinf(da) and math.isinf(db):
                continue  # joins two nodes outside the old reachable set
            for cost in (old_cost, new_cost):
                if cost is None:
                    continue
                if da + cost <= db + eps or db + cost <= da + eps:
                    return False  # on (or now shorter than) a shortest path
        return True

    def _dijkstra(self, source: Address,
                  graph: Dict[Address, Dict[Address, float]]
                  ) -> Tuple[Dict[Address, Address], Dict[Address, float]]:
        from heapq import heappop, heappush
        dist: Dict[Address, float] = {source: 0.0}
        first_hop: Dict[Address, Optional[Address]] = {source: None}
        heap: List[Tuple[float, Tuple[int, ...], Address]] = [
            (0.0, source.parts, source)]
        visited: Set[Address] = set()
        dist_get = dist.get
        graph_get = graph.get
        while heap:
            d, _tie, node = heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            row = graph_get(node)
            if not row:
                continue
            hop_via = first_hop[node]
            from_source = node == source
            for neighbor, cost in row.items():
                nd = d + cost
                cur = dist_get(neighbor)
                if cur is None or nd < cur - 1e-12:
                    dist[neighbor] = nd
                    first_hop[neighbor] = neighbor if from_source else hop_via
                    heappush(heap, (nd, neighbor.parts, neighbor))
        table = {}
        for dst, hop in first_hop.items():
            if dst != source and hop is not None:
                table[dst] = hop
        return table, dist

    # ------------------------------------------------------------------
    # Introspection / metrics
    # ------------------------------------------------------------------
    def next_hop(self, destination: Address) -> Optional[Address]:
        """Step one of two-step routing: destination → next-hop address."""
        self._ensure_table()
        return self._next_hop.get(destination)

    def table(self) -> Dict[Address, Address]:
        """The full next-hop table (copy)."""
        self._ensure_table()
        return dict(self._next_hop)

    def table_size(self) -> int:
        """Number of destination entries — the E6/A1 metric."""
        self._ensure_table()
        return len(self._next_hop)

    def aggregated_table_size(self) -> int:
        """Entries after topological prefix aggregation (A1 metric)."""
        self._ensure_table()
        return len(aggregate_forwarding_table(self._next_hop))

    def reachable(self) -> Set[Address]:
        """Destinations the current table can reach."""
        self._ensure_table()
        return set(self._next_hop)

    def lsdb_size(self) -> int:
        """Number of LSAs held."""
        return len(self._lsdb)

    def force_spf(self) -> None:
        """Run SPF immediately (tests and convergence measurements)."""
        self._spf_timer.cancel()
        self._spf_pending = True
        self._ensure_table()
