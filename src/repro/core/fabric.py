"""Fabric: composing systems, shims, and DIF stacks over a topology.

Everything in the architecture is asynchronous — lower flows allocate via
callbacks, enrollment is a message exchange, directories flood — so
building a multi-level stack is a *sequence* of dependent steps.  The
:class:`Orchestrator` runs such steps inside the simulation: each step
starts when the previous one completed, with optional settle time for
floods and SPF runs to quiesce.

:func:`build_dif_over` wires the common case used throughout the
experiments: one DIF whose members sit on a set of systems, with a given
adjacency graph, each adjacency riding a named lower facility (a shim or
another DIF).  Bootstrap member first, then BFS enrollment, then the extra
adjacencies — exactly the §5.1/§5.2 procedure.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim.engine import Engine
from ..sim.network import Network
from .dif import Dif
from .directory import InterDifDirectory
from .names import ApplicationName
from .system import System


class FabricError(RuntimeError):
    """Raised when stack construction fails (enrollment denied, timeout...)."""


def run_until(network: Network, predicate: Callable[[], bool],
              timeout: float = 30.0, step: float = 0.05) -> bool:
    """Advance the simulation until ``predicate()`` holds or ``timeout``
    simulated seconds elapse.  Returns whether the predicate held."""
    deadline = network.engine.now + timeout
    while network.engine.now < deadline:
        if predicate():
            return True
        network.run(until=min(deadline, network.engine.now + step))
    return predicate()


class Orchestrator:
    """Sequential step runner living inside the simulation.

    Constructed over a :class:`Network` (the usual case) or a bare
    :class:`Engine` — the live-traffic gateway drives an engine with no
    network around it.  :meth:`run` (which blocks by stepping the
    simulation itself) needs the network; :meth:`start` works on either,
    leaving the event loop in the caller's hands.
    """

    __slots__ = ("_network", "_engine", "_steps", "failures", "_done")

    def __init__(self, network: "Network | Engine") -> None:
        if isinstance(network, Engine):
            self._network: Optional[Network] = None
            self._engine: Engine = network
        else:
            self._network = network
            self._engine = network.engine
        self._steps: List[Tuple[str, Callable[[Callable[[bool, str], None]], None]]] = []
        self.failures: List[str] = []
        self._done = False

    # ------------------------------------------------------------------
    # Step vocabulary
    # ------------------------------------------------------------------
    def add_step(self, label: str,
                 fn: Callable[[Callable[[bool, str], None]], None]) -> None:
        """Append a raw step: ``fn`` must call its argument when finished."""
        self._steps.append((label, fn))

    def enroll(self, system: System, dif_name: str, member_app: ApplicationName,
               lower_dif: str, region_hint: Optional[Sequence[int]] = None) -> None:
        """Step: enroll ``system``'s IPCP into ``dif_name`` (§5.2)."""
        label = f"enroll {system.name} in {dif_name} via {lower_dif}"

        def step(done: Callable[[bool, str], None]) -> None:
            system.enroll(dif_name, member_app, lower_dif, region_hint, done)
        self.add_step(label, step)

    def connect(self, system: System, dif_name: str,
                member_app: ApplicationName, lower_dif: str) -> None:
        """Step: extra adjacency from an enrolled member to another."""
        label = f"connect {system.name} to {member_app} in {dif_name}"

        def step(done: Callable[[bool, str], None]) -> None:
            system.connect_neighbor(dif_name, member_app, lower_dif, done)
        self.add_step(label, step)

    def settle(self, duration: float) -> None:
        """Step: let floods/SPF quiesce for ``duration`` simulated seconds."""
        def step(done: Callable[[bool, str], None]) -> None:
            self._engine.call_later(duration, done, True, "settled")
        self.add_step(f"settle {duration}s", step)

    def call(self, label: str, fn: Callable[[], None]) -> None:
        """Step: run a synchronous action."""
        def step(done: Callable[[bool, str], None]) -> None:
            fn()
            done(True, "called")
        self.add_step(label, step)

    # ------------------------------------------------------------------
    def start(self) -> Callable[[], bool]:
        """Begin executing the queued steps inside the engine.

        Returns an is-done predicate; completed-step failures accumulate
        in :attr:`failures`.  :meth:`run` wraps this with the blocking
        :func:`run_until` loop — external event loops (the gateway's
        async driver) call ``start()`` and poll the predicate themselves.
        """
        self._done = False
        self.failures = []
        steps = list(self._steps)
        self._steps = []

        def run_next(index: int) -> None:
            if index >= len(steps):
                self._done = True
                return
            label, fn = steps[index]

            def done(ok: bool, reason: str) -> None:
                if not ok:
                    self.failures.append(f"{label}: {reason}")
                run_next(index + 1)
            fn(done)

        self._engine.call_soon(run_next, 0, label="fabric.start")
        return lambda: self._done

    def check(self, finished: bool, strict: bool = True) -> bool:
        """Shared post-run verdict: raise on timeout (or, with
        ``strict``, on any step failure); else report success."""
        if not finished:
            raise FabricError(f"orchestration timed out; completed steps ok, "
                              f"failures so far: {self.failures}")
        if strict and self.failures:
            raise FabricError("; ".join(self.failures))
        return not self.failures

    def run(self, timeout: float = 120.0, strict: bool = True) -> bool:
        """Execute all steps inside the simulation.

        Returns True when every step reported success.  With ``strict`` a
        failed step raises :class:`FabricError` immediately.
        """
        if self._network is None:
            raise FabricError("run() needs a Network; engine-only "
                              "orchestrators use start() with an external "
                              "event loop")
        is_done = self.start()
        finished = run_until(self._network, is_done, timeout=timeout)
        return self.check(finished, strict=strict)


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def make_systems(network: Network,
                 names: Optional[Iterable[str]] = None,
                 idd: Optional[InterDifDirectory] = None) -> Dict[str, System]:
    """Create a :class:`System` per node (default: all nodes), sharing one
    inter-DIF directory and the network's tracer."""
    idd = idd if idd is not None else InterDifDirectory()
    systems = {}
    for name in (names if names is not None else network.nodes):
        systems[name] = System(network.node(name), idd=idd,
                               tracer=network.tracer)
    return systems


def shim_name_for(link_name: str) -> str:
    """Canonical shim DIF name for a physical link."""
    return f"shim:{link_name}"


def add_shims(systems: Dict[str, System], network: Network) -> None:
    """Create the rank-0 shim facility on both ends of every link whose
    endpoints both have systems."""
    for node_name, system in systems.items():
        for interface in network.node(node_name).interfaces():
            system.add_shim(interface, shim_name_for(interface.link.name))


def shim_between(network: Network, a: str, b: str) -> str:
    """Shim DIF name of the (first) link between systems ``a`` and ``b``."""
    return shim_name_for(network.link_between(a, b).name)


def build_dif_over(orchestrator: Orchestrator, dif: Dif,
                   systems: Dict[str, System],
                   adjacencies: Sequence[Tuple[str, str, str]],
                   bootstrap: Optional[str] = None,
                   region_hints: Optional[Dict[str, Sequence[int]]] = None,
                   settle: float = 0.5) -> None:
    """Queue the steps creating one DIF across ``systems``.

    Parameters
    ----------
    adjacencies:
        Triples ``(system_a, system_b, lower_dif_name)`` — the (N-1)
        facility each adjacency rides on.
    bootstrap:
        The initial member (§5.1); defaults to the first adjacency's
        first endpoint.
    region_hints:
        Optional per-system region paths for topological addressing.
    """
    if not adjacencies:
        raise FabricError("a DIF needs at least one adjacency")
    region_hints = region_hints or {}
    members = []
    for a, b, _lower in adjacencies:
        for name in (a, b):
            if name not in members:
                members.append(name)
    if bootstrap is None:
        bootstrap = members[0]
    if bootstrap not in members:
        raise FabricError(f"bootstrap {bootstrap!r} not in adjacency graph")

    # every member gets an IPCP, published into the lower facilities its
    # adjacencies use, so peers can allocate enrollment flows to it.
    lowers_of: Dict[str, List[str]] = {name: [] for name in members}
    for a, b, lower in adjacencies:
        for name in (a, b):
            if lower not in lowers_of[name]:
                lowers_of[name].append(lower)

    def create_all() -> None:
        for name in members:
            system = systems[name]
            system.create_ipcp(dif)
            for lower in lowers_of[name]:
                system.publish_ipcp(str(dif.name), lower)
        systems[bootstrap].ipcp(str(dif.name)).bootstrap(
            region_hints.get(bootstrap))

    orchestrator.call(f"create {dif.name} ipcps", create_all)

    # BFS from the bootstrap member over the adjacency graph: each new
    # member enrolls via an already enrolled neighbor; every remaining edge
    # (including parallel edges between the same pair — extra points of
    # attachment) becomes an adjacency handshake.
    neighbor_edges: Dict[str, List[Tuple[str, str, int]]] = {n: [] for n in members}
    for index, (a, b, lower) in enumerate(adjacencies):
        neighbor_edges[a].append((b, lower, index))
        neighbor_edges[b].append((a, lower, index))

    enrolled = {bootstrap}
    used_edges = set()
    frontier = deque([bootstrap])
    while frontier:
        current = frontier.popleft()
        for peer, lower, index in neighbor_edges[current]:
            if peer in enrolled:
                continue
            member_app = dif.name.ipcp_name(current)
            orchestrator.enroll(systems[peer], str(dif.name), member_app,
                                lower, region_hints.get(peer))
            used_edges.add(index)
            enrolled.add(peer)
            frontier.append(peer)
    # remaining adjacencies (between enrolled members, or parallel paths)
    for index, (a, b, lower) in enumerate(adjacencies):
        if index in used_edges:
            continue
        member_app = dif.name.ipcp_name(b)
        orchestrator.connect(systems[a], str(dif.name), member_app, lower)
    if settle > 0:
        orchestrator.settle(settle)
