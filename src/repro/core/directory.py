"""Directories: application name → location, at two levels.

Within a DIF (§5.3): the flow allocator must map a destination application
name to the address of the member IPCP where that application is
registered.  Each member floods its local registrations (with per-origin
sequence numbers, exactly like LSAs), so every member can answer lookups
locally — and, unlike DNS, the answer *never leaves the IPC facility*: the
requesting application is told a port id, not an address.

Across DIFs: an application may be reachable through several DIFs.  The
:class:`InterDifDirectory` records which DIFs serve which application
names.  In a full deployment this is itself a distributed application (the
paper's "e-mall" catalog, §6.7); here it is a shared in-process registry —
an out-of-band substitution documented in DESIGN.md that preserves the
architectural property under test: applications name applications, never
addresses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from .names import Address, ApplicationName, DifName
from .riep import M_WRITE, RiepMessage

DIRECTORY_OBJ = "/directory/registrations"


class DifDirectory:
    """The name→address directory replicated inside one DIF member."""

    __slots__ = ("_local_addr_fn", "_flood", "_own_seq", "_local_names",
                 "_remote", "updates_received", "updates_reflooded")

    def __init__(self, local_addr_fn: Callable[[], Optional[Address]],
                 flood_fn: Callable[[RiepMessage, Optional[Address]], int]) -> None:
        self._local_addr_fn = local_addr_fn
        self._flood = flood_fn
        self._own_seq = 0
        self._local_names: Set[ApplicationName] = set()
        # origin address -> (seq, set of names registered there)
        self._remote: Dict[Address, Tuple[int, Set[ApplicationName]]] = {}
        self.updates_received = 0
        self.updates_reflooded = 0

    # ------------------------------------------------------------------
    # Local registrations
    # ------------------------------------------------------------------
    def register(self, name: ApplicationName) -> None:
        """Register an application at this member and advertise it."""
        if name in self._local_names:
            return
        self._local_names.add(name)
        self._advertise()

    def unregister(self, name: ApplicationName) -> None:
        """Remove a local registration and advertise the change."""
        if name not in self._local_names:
            return
        self._local_names.discard(name)
        self._advertise()

    def local_names(self) -> Set[ApplicationName]:
        """Applications registered at this member (copy)."""
        return set(self._local_names)

    def _advertise(self) -> None:
        local = self._local_addr_fn()
        if local is None:
            return
        self._own_seq += 1
        message = RiepMessage(M_WRITE, obj=DIRECTORY_OBJ, value=self._own_value())
        self._flood(message, None)

    def _own_value(self) -> dict:
        local = self._local_addr_fn()
        assert local is not None
        return {
            "origin": local.parts,
            "seq": self._own_seq,
            "names": sorted(str(n) for n in self._local_names),
        }

    def announce_all(self) -> None:
        """Re-advertise local registrations (after enrollment completes)."""
        if self._local_names:
            self._advertise()

    # ------------------------------------------------------------------
    # Dissemination
    # ------------------------------------------------------------------
    def handle_update(self, message: RiepMessage,
                      from_neighbor: Optional[Address]) -> None:
        """Process a flooded directory update."""
        value = message.value
        origin = Address(*value["origin"])
        seq = int(value["seq"])
        self.updates_received += 1
        local = self._local_addr_fn()
        if local is not None and origin == local:
            return
        current = self._remote.get(origin)
        if current is not None and current[0] >= seq:
            return
        names = {ApplicationName.parse(text) for text in value["names"]}
        self._remote[origin] = (seq, names)
        self.updates_reflooded += 1
        self._flood(message, from_neighbor)

    def sync_snapshot(self) -> List[dict]:
        """All known registration records (for enrollment fast-sync)."""
        records = []
        local = self._local_addr_fn()
        if local is not None and self._local_names:
            records.append(self._own_value())
        for origin, (seq, names) in sorted(self._remote.items()):
            records.append({"origin": origin.parts, "seq": seq,
                            "names": sorted(str(n) for n in names)})
        return records

    def load_snapshot(self, records: List[dict]) -> None:
        """Install a bulk snapshot received at enrollment."""
        for value in records:
            origin = Address(*value["origin"])
            seq = int(value["seq"])
            current = self._remote.get(origin)
            if current is None or current[0] < seq:
                names = {ApplicationName.parse(t) for t in value["names"]}
                self._remote[origin] = (seq, names)

    def forget_origin(self, origin: Address) -> None:
        """Drop registrations learned from a departed member."""
        self._remote.pop(origin, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, name: ApplicationName) -> Optional[Address]:
        """Address of the member where ``name`` is registered (or None)."""
        if name in self._local_names:
            return self._local_addr_fn()
        for origin, (_seq, names) in sorted(self._remote.items()):
            if name in names:
                return origin
        return None

    def known_names(self) -> Set[ApplicationName]:
        """Every application name registered anywhere in the DIF."""
        known = set(self._local_names)
        for _seq, names in self._remote.values():
            known |= names
        return known

    def size(self) -> int:
        """Total registration records held (a RIB-size metric)."""
        return len(self._local_names) + sum(
            len(names) for _seq, names in self._remote.values())


class InterDifDirectory:
    """Which DIFs can reach which application names.

    One instance is shared by all systems of a simulation.  ``register``
    is called by the system where an application binds to a DIF;
    ``candidates`` is what an IPC manager consults to choose the DIF for an
    outgoing flow request.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[ApplicationName, Set[DifName]] = {}

    def register(self, name: ApplicationName, dif: DifName) -> None:
        """Record that ``name`` is reachable via ``dif``."""
        self._entries.setdefault(name, set()).add(dif)

    def unregister(self, name: ApplicationName, dif: DifName) -> None:
        """Remove a reachability record."""
        difs = self._entries.get(name)
        if difs is not None:
            difs.discard(dif)
            if not difs:
                del self._entries[name]

    def candidates(self, name: ApplicationName) -> List[DifName]:
        """DIFs that advertise ``name``, sorted for determinism."""
        return sorted(self._entries.get(name, ()), key=str)

    def size(self) -> int:
        """Number of (name → DIF set) entries."""
        return len(self._entries)
