"""The DIF: configuration, policy bundle, and membership authority.

A Distributed IPC Facility is "a coordinated set of functions" (§3.1) whose
*mechanisms* are identical at every rank and whose *policies* are tuned to
the facility's scope.  :class:`DifPolicies` is that tuning surface — every
knob the experiments sweep lives here.

The :class:`Dif` object itself plays the role of the facility's shared
configuration and address-assignment authority.  In a physical deployment
this state is replicated among members by management protocols; holding it
in one Python object is a simulation simplification that does not bypass
any protocol under test — enrollment, flooding, routing, and flow
allocation still happen message-by-message over the simulated wires.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple, TYPE_CHECKING

from .addressing import AddressingPolicy, FlatAddressing
from .auth import AllowAll, AuthPolicy, FlowAccessPolicy, NoAuth
from .efcp import EfcpTable
from .names import Address, ApplicationName, DifName
from .qos import BEST_EFFORT, DEFAULT_CUBES, QosCube
from .rmt import PATH_SELECTORS, SCHEDULERS, PathSelector, Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .ipcp import Ipcp


class DifError(RuntimeError):
    """Raised for DIF-level configuration/membership failures."""


class DifPolicies:
    """Every policy choice of one DIF, with defaults for a mid-range scope.

    Attributes
    ----------
    addressing:
        How enrollment assigns addresses (flat vs topological, ablation A1).
    auth:
        Enrollment authentication (security range, experiment E7).
    access:
        Destination-side flow access control (§5.3).
    qos_cubes:
        The service classes this facility offers.
    efcp_overrides:
        Keyword overrides applied to every EFCP policy derived from a cube
        (e.g. ``{"rto_initial": 0.05}`` for a narrow-scope wireless DIF).
    efcp_cube_overrides:
        Per-cube-name overrides layered on top of ``efcp_overrides``
        (e.g. ``{"bulk": {"congestion": "aimd"}}``).
    scheduler / scheduler_kwargs:
        RMT multiplexing discipline per (N-1) port (ablation A3).
    path_selector:
        Step-two PoA selection among ports to the same next hop (Fig 4).
    keepalive_interval / dead_factor:
        Neighbor liveness: a port is dead after ``dead_factor`` silent
        intervals.  Narrow-scope DIFs use short intervals — exactly the
        "policies tuned to the range" argument of §4.
    spf_delay:
        Routing hold-down between LSDB change and SPF.
    mgmt_timeout:
        RIEP request timeout (enrollment, flow allocation).
    allocate_retries / allocate_retry_delay:
        Flow-allocation retries while directory dissemination converges.
    lower_flow_cube:
        QoS requested from (N-1) DIFs for this DIF's adjacencies.
    max_members:
        Membership bound ("management policies that constrain the
        membership size of each IPC facility", §6.5); None = unbounded.
    refresh_interval:
        Anti-entropy period: each member periodically re-floods its LSA and
        directory record (sequence numbers bumped) so state lost to a lossy
        medium converges anyway; None disables.
    enroll_attempts:
        Retries for each enrollment request message before giving up.
    flood_attempts / flood_ack_timeout:
        Hop-by-hop reliable flooding (the OSPF-LSAck mechanism): each
        flooded update is acknowledged by the adjacent member and resent up
        to ``flood_attempts`` times at ``flood_ack_timeout`` spacing.
    pace_ports:
        Whether RMT ports are paced at the lower flow's nominal rate
        (required for scheduler policies to have effect).
    admission_capacity_bps:
        Guaranteed-bandwidth admission control (§3.1's "allocate resources
        required to meet the desired properties", IntServ-style): each
        member admits flows with an ``avg_bandwidth`` demand only while the
        sum of admitted demands stays within this budget.  None disables
        admission control (pure best-effort sharing).
    """

    __slots__ = ("addressing", "auth", "access", "qos_cubes",
                 "efcp_overrides", "efcp_cube_overrides", "scheduler",
                 "scheduler_kwargs", "path_selector", "keepalive_interval",
                 "dead_factor", "spf_delay", "mgmt_timeout",
                 "allocate_retries", "allocate_retry_delay",
                 "lower_flow_cube", "max_members", "refresh_interval",
                 "enroll_attempts", "flood_attempts", "flood_ack_timeout",
                 "pace_ports", "admission_capacity_bps")

    def __init__(self,
                 addressing: Optional[AddressingPolicy] = None,
                 auth: Optional[AuthPolicy] = None,
                 access: Optional[FlowAccessPolicy] = None,
                 qos_cubes: Optional[Dict[str, QosCube]] = None,
                 efcp_overrides: Optional[Dict[str, Any]] = None,
                 efcp_cube_overrides: Optional[Dict[str, Dict[str, Any]]] = None,
                 scheduler: str = "fifo",
                 scheduler_kwargs: Optional[Dict[str, Any]] = None,
                 path_selector: str = "first-alive",
                 keepalive_interval: float = 1.0,
                 dead_factor: float = 3.0,
                 spf_delay: float = 0.02,
                 mgmt_timeout: float = 5.0,
                 allocate_retries: int = 5,
                 allocate_retry_delay: float = 0.25,
                 lower_flow_cube: Optional[QosCube] = None,
                 max_members: Optional[int] = None,
                 refresh_interval: Optional[float] = 10.0,
                 enroll_attempts: int = 3,
                 flood_attempts: int = 4,
                 flood_ack_timeout: float = 0.4,
                 pace_ports: bool = True,
                 admission_capacity_bps: Optional[float] = None) -> None:
        if scheduler not in SCHEDULERS:
            raise DifError(f"unknown scheduler policy {scheduler!r}")
        if path_selector not in PATH_SELECTORS:
            raise DifError(f"unknown path selector policy {path_selector!r}")
        if keepalive_interval <= 0 or dead_factor < 1:
            raise DifError("keepalive_interval must be >0 and dead_factor >=1")
        self.addressing = addressing or FlatAddressing()
        self.auth = auth or NoAuth()
        self.access = access or AllowAll()
        self.qos_cubes = dict(qos_cubes) if qos_cubes is not None else dict(DEFAULT_CUBES)
        self.efcp_overrides = dict(efcp_overrides or {})
        self.efcp_cube_overrides = {
            name: dict(overrides)
            for name, overrides in (efcp_cube_overrides or {}).items()}
        self.scheduler = scheduler
        self.scheduler_kwargs = dict(scheduler_kwargs or {})
        self.path_selector = path_selector
        self.keepalive_interval = keepalive_interval
        self.dead_factor = dead_factor
        self.spf_delay = spf_delay
        self.mgmt_timeout = mgmt_timeout
        self.allocate_retries = allocate_retries
        self.allocate_retry_delay = allocate_retry_delay
        self.lower_flow_cube = lower_flow_cube or BEST_EFFORT
        self.max_members = max_members
        self.refresh_interval = refresh_interval
        self.enroll_attempts = max(1, enroll_attempts)
        self.flood_attempts = max(1, flood_attempts)
        self.flood_ack_timeout = flood_ack_timeout
        self.pace_ports = pace_ports
        if admission_capacity_bps is not None and admission_capacity_bps <= 0:
            raise DifError("admission capacity must be positive or None")
        self.admission_capacity_bps = admission_capacity_bps

    def efcp_overrides_for(self, cube_name: str) -> Dict[str, Any]:
        """Merged EFCP overrides for one QoS cube."""
        merged = dict(self.efcp_overrides)
        merged.update(self.efcp_cube_overrides.get(cube_name, {}))
        return merged

    def make_scheduler(self) -> Scheduler:
        """Instantiate one RMT port scheduler per current policy."""
        return SCHEDULERS[self.scheduler](**self.scheduler_kwargs)

    def make_path_selector(self) -> PathSelector:
        """Instantiate the PoA selection policy."""
        return PATH_SELECTORS[self.path_selector]()


class Dif:
    """One distributed IPC facility.

    ``rank`` is the facility's position in the stack (shims are rank 0);
    ``scope`` is simply its current membership (§4: "a scope (the
    collection of IPC processes that make up the IPC facility)").
    """

    __slots__ = ("name", "policies", "rank", "_members", "efcp_table",
                 "enrollments_accepted", "enrollments_denied")

    def __init__(self, name: str, policies: Optional[DifPolicies] = None,
                 rank: int = 1) -> None:
        self.name = DifName(name)
        self.policies = policies or DifPolicies()
        self.rank = rank
        self._members: Dict[Address, "Ipcp"] = {}
        # one columnar store for every EFCP connection scalar in this
        # facility — members allocate rows, connections are flyweight views
        self.efcp_table = EfcpTable()
        self.enrollments_accepted = 0
        self.enrollments_denied = 0

    # ------------------------------------------------------------------
    # Membership / addressing authority
    # ------------------------------------------------------------------
    def assign_address(self, region_hint: Optional[Sequence[int]] = None) -> Address:
        """Allocate a fresh member address, enforcing the membership bound."""
        if (self.policies.max_members is not None
                and len(self._members) >= self.policies.max_members):
            raise DifError(f"{self.name} is full "
                           f"({self.policies.max_members} members)")
        return self.policies.addressing.assign(region_hint)

    def register_member(self, address: Address, ipcp: "Ipcp") -> None:
        """Record a member holding ``address``."""
        if address in self._members:
            raise DifError(f"address {address} already held in {self.name}")
        self._members[address] = ipcp

    def remove_member(self, address: Address) -> None:
        """Forget a departed member and recycle its address."""
        if self._members.pop(address, None) is not None:
            self.policies.addressing.release(address)

    def members(self) -> Dict[Address, "Ipcp"]:
        """Address → IPCP map (copy)."""
        return dict(self._members)

    def member_count(self) -> int:
        """Current scope size."""
        return len(self._members)

    def member_by_name(self, name: ApplicationName) -> Optional["Ipcp"]:
        """Find a member IPCP by its application name."""
        for ipcp in self._members.values():
            if ipcp.name == name:
                return ipcp
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Dif {self.name} rank={self.rank} members={len(self._members)}>"
