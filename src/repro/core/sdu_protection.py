"""SDU protection: integrity and lifetime checks at the DIF boundary.

When an SDU crosses into a DIF it can be wrapped with a CRC and a hop
budget; on exit the wrapper is checked and stripped.  The simulator's links
drop rather than corrupt frames, so the CRC path is exercised by tests and
by fault-injection experiments that flip bytes deliberately.
"""

from __future__ import annotations

import zlib
from typing import Optional, Tuple

#: Wrapper overhead: CRC32 (4 bytes) + lifetime (1 byte).
PROTECTION_OVERHEAD_BYTES = 5


class SduProtectionError(ValueError):
    """Raised when an SDU fails its integrity or lifetime check."""


class SduProtection:
    """CRC32 + hop-budget protection policy.

    ``max_hops`` bounds how many times :meth:`decrement_hops` may be applied
    before the SDU is declared expired — the degenerate "TTL" mechanism.
    """

    def __init__(self, max_hops: int = 64, use_crc: bool = True) -> None:
        if not 1 <= max_hops <= 255:
            raise ValueError("max_hops must be in [1, 255]")
        self.max_hops = max_hops
        self.use_crc = use_crc

    def protect(self, data: bytes) -> bytes:
        """Wrap ``data`` with lifetime byte and CRC32 trailer."""
        hops = self.max_hops.to_bytes(1, "big")
        body = hops + data
        if self.use_crc:
            crc = zlib.crc32(body).to_bytes(4, "big")
        else:
            crc = b"\x00\x00\x00\x00"
        return body + crc

    def unprotect(self, wrapped: bytes) -> bytes:
        """Verify and strip the wrapper; raises :class:`SduProtectionError`."""
        if len(wrapped) < PROTECTION_OVERHEAD_BYTES:
            raise SduProtectionError("SDU shorter than protection overhead")
        body, crc = wrapped[:-4], wrapped[-4:]
        if self.use_crc and zlib.crc32(body).to_bytes(4, "big") != crc:
            raise SduProtectionError("CRC mismatch: SDU corrupted")
        hops = body[0]
        if hops == 0:
            raise SduProtectionError("SDU lifetime exhausted")
        return body[1:]

    def decrement_hops(self, wrapped: bytes) -> bytes:
        """Charge one hop against the SDU's lifetime, re-sealing the CRC."""
        if len(wrapped) < PROTECTION_OVERHEAD_BYTES:
            raise SduProtectionError("SDU shorter than protection overhead")
        hops = wrapped[0]
        if hops == 0:
            raise SduProtectionError("SDU lifetime exhausted")
        body = bytes([hops - 1]) + wrapped[1:-4]
        if self.use_crc:
            crc = zlib.crc32(body).to_bytes(4, "big")
        else:
            crc = wrapped[-4:]
        return body + crc
