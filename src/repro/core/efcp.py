"""EFCP — the Error and Flow Control Protocol (§3.1, §4).

EFCP is the per-flow data-transfer machinery of an IPC process.  Following
the paper's separation of mechanism and policy (§8), the mechanisms here —
sequencing, retransmission, sliding-window flow control, congestion
response — are fixed, while :class:`EfcpPolicy` selects among behaviours:

* retransmission: ``"selective"`` repeat, ``"gobackn"``, or ``"none"``;
* flow control: credit window granted by the receiver;
* congestion: ``"none"`` (pure credit) or ``"aimd"`` window adaptation;
* ordering: in-order delivery or immediate delivery.

One :class:`EfcpConnection` is one end of one flow.  It is deliberately
unaware of addresses' meaning, of routing, and of what carries its PDUs —
it only emits PDUs through an output callback (the RMT) and consumes PDUs
handed to it.  The same class therefore serves every rank of DIF, from a
shim over one cable to an internet-wide facility: only policies differ,
which is the paper's central claim about the repeating structure.
"""

from __future__ import annotations

import math
from array import array
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..sim.engine import Engine, Timer
from ..sim.link import CorruptedFrame
from .names import Address
from .pdu import ACK, ControlPdu, DataPdu
from .qos import QosCube

OutputFn = Callable[[Any], None]        # receives DataPdu / ControlPdu
DeliverFn = Callable[[Any, int], None]  # receives (payload, size)

RETX_SELECTIVE = "selective"
RETX_GOBACKN = "gobackn"
RETX_NONE = "none"

CONGESTION_NONE = "none"
CONGESTION_AIMD = "aimd"


class EfcpPolicy:
    """Policy bundle configuring an EFCP connection.

    Attributes mirror the knobs the paper says must be tunable per DIF so
    each layer can "operate over different ranges of the performance space".
    """

    __slots__ = ("reliable", "in_order", "retx", "congestion", "initial_credit",
                 "send_buffer_limit", "rto_initial", "rto_min", "rto_max",
                 "max_retries", "give_up", "ack_delay", "sack_limit",
                 "initial_cwnd")

    def __init__(self, reliable: bool = True, in_order: bool = True,
                 retx: Optional[str] = None, congestion: str = CONGESTION_NONE,
                 initial_credit: int = 64, send_buffer_limit: int = 1024,
                 rto_initial: float = 0.25, rto_min: float = 0.02,
                 rto_max: float = 4.0, max_retries: int = 30,
                 give_up: bool = False, ack_delay: float = 0.0,
                 sack_limit: int = 16, initial_cwnd: int = 4) -> None:
        if retx is None:
            retx = RETX_SELECTIVE if reliable else RETX_NONE
        if retx not in (RETX_SELECTIVE, RETX_GOBACKN, RETX_NONE):
            raise ValueError(f"unknown retransmission policy {retx!r}")
        if congestion not in (CONGESTION_NONE, CONGESTION_AIMD):
            raise ValueError(f"unknown congestion policy {congestion!r}")
        if reliable and retx == RETX_NONE:
            raise ValueError("a reliable flow needs a retransmission policy")
        if initial_credit < 1:
            raise ValueError("credit window must be at least 1")
        self.reliable = reliable
        self.in_order = in_order
        self.retx = retx
        self.congestion = congestion
        self.initial_credit = initial_credit
        self.send_buffer_limit = send_buffer_limit
        self.rto_initial = rto_initial
        self.rto_min = rto_min
        self.rto_max = rto_max
        self.max_retries = max_retries
        self.give_up = give_up
        self.ack_delay = ack_delay
        self.sack_limit = sack_limit
        self.initial_cwnd = initial_cwnd

    @classmethod
    def for_cube(cls, cube: QosCube, **overrides: Any) -> "EfcpPolicy":
        """Derive a policy from a QoS cube (the flow allocator's mapping)."""
        kwargs: Dict[str, Any] = dict(reliable=cube.reliable,
                                      in_order=cube.in_order)
        kwargs.update(overrides)
        return cls(**kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "reliable" if self.reliable else "unreliable"
        return f"<EfcpPolicy {kind} retx={self.retx} cc={self.congestion}>"


class EfcpStats:
    """Per-connection counters exposed to experiments."""

    __slots__ = ("pdus_sent", "retransmissions", "pdus_received", "duplicates",
                 "out_of_order", "sdus_delivered", "bytes_delivered",
                 "acks_sent", "acks_received", "timeouts", "stalls",
                 "send_rejected", "window_drops", "corrupted")

    def __init__(self) -> None:
        self.pdus_sent = 0
        self.retransmissions = 0
        self.pdus_received = 0
        self.duplicates = 0
        self.out_of_order = 0
        self.sdus_delivered = 0
        self.bytes_delivered = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.timeouts = 0
        self.stalls = 0
        self.send_rejected = 0
        self.window_drops = 0
        self.corrupted = 0


class EfcpTable:
    """Per-DIF columnar store for EFCP connection scalars.

    The paper's repeating-structure argument (§6) means every connection
    in a DIF carries the *same* numeric state — sequence numbers, window
    edges, retry counters, RTO estimator variables — so that state lives
    here as parallel ``array`` columns indexed by a row id instead of as
    instance attributes on each connection object.  An
    :class:`EfcpConnection` is a flyweight view over one row: Python-object
    overhead per connection drops to the view plus its containers, and a
    DIF with 100k flows keeps its protocol scalars in a dozen contiguous
    buffers.

    Rows are append-only; a closed connection keeps its row (experiments
    read counters and estimator state after the run), so the table is
    sized by the peak connection count, 96 bytes per row.
    """

    #: int64 columns (sequence numbers, window edges, counters)
    Q_COLUMNS = ("next_seq", "send_base", "credit", "retries",
                 "recovery_point", "rcv_expected", "rcv_window")
    #: float64 columns (RTO estimator, congestion windows)
    D_COLUMNS = ("srtt", "rttvar", "rto", "cwnd", "ssthresh")

    __slots__ = Q_COLUMNS + D_COLUMNS

    def __init__(self) -> None:
        for name in self.Q_COLUMNS:
            setattr(self, name, array("q"))
        for name in self.D_COLUMNS:
            setattr(self, name, array("d"))

    def alloc(self) -> int:
        """Append one zeroed row and return its index."""
        row = len(self.next_seq)
        for name in self.Q_COLUMNS:
            getattr(self, name).append(0)
        for name in self.D_COLUMNS:
            getattr(self, name).append(0.0)
        return row

    def __len__(self) -> int:
        return len(self.next_seq)

    def nbytes(self) -> int:
        """Total buffer bytes across all columns (for memory accounting)."""
        return sum(getattr(self, name).itemsize * len(getattr(self, name))
                   for name in self.Q_COLUMNS + self.D_COLUMNS)


def _column_property(column: str) -> property:
    """A read/write view attribute backed by one table column."""

    def getter(self: "EfcpConnection"):
        return getattr(self._table, column)[self._row]

    def setter(self: "EfcpConnection", value) -> None:
        getattr(self._table, column)[self._row] = value

    return property(getter, setter)


class EfcpConnection:
    """One end of an EFCP connection (full duplex: sender + receiver halves).

    A flyweight: the numeric protocol state lives in an :class:`EfcpTable`
    row (shared per DIF), while per-connection containers (send queue,
    outstanding map, receive buffer) and wiring (callbacks, timers) stay
    on the instance.  All ``_name`` scalar accesses below go through
    column properties, so the protocol logic reads exactly as it did when
    the scalars were instance attributes.

    Parameters
    ----------
    engine:
        Simulation engine (timers, clock).
    local_addr / remote_addr:
        DIF-internal addresses of the two IPC processes.
    local_cep / remote_cep:
        Connection-endpoint ids allocated by the flow allocator.
    policy:
        The :class:`EfcpPolicy` in force.
    output:
        Callback receiving every outbound PDU (normally the RMT).
    deliver:
        Callback receiving each in-order SDU ``(payload, size)``.
    priority:
        RMT scheduling priority stamped on data PDUs (from the QoS cube).
    """

    __slots__ = ("_engine", "local_addr", "remote_addr", "local_cep",
                 "remote_cep", "policy", "_output", "_deliver", "_priority",
                 "_on_stall", "_on_close", "stats", "closed", "_table",
                 "_row", "_send_queue", "_outstanding", "_retx_timer",
                 "_sack_passes", "_rcv_buffer", "_ack_timer", "_ack_pending")

    # columnar scalars: each reads/writes this connection's EfcpTable row
    _next_seq = _column_property("next_seq")          # next new sequence number
    _send_base = _column_property("send_base")        # oldest unacknowledged
    _credit = _column_property("credit")              # highest seq allowed (excl.)
    _retries = _column_property("retries")
    _recovery_point = _column_property("recovery_point")
    _rcv_expected = _column_property("rcv_expected")  # next in-order seq expected
    _rttvar = _column_property("rttvar")
    _rto = _column_property("rto")
    _cwnd = _column_property("cwnd")
    _ssthresh = _column_property("ssthresh")
    _rcv_window = _column_property("rcv_window")

    @property
    def _srtt(self) -> Optional[float]:
        # NaN is the columnar encoding of "no RTT sample yet"
        value = self._table.srtt[self._row]
        return None if value != value else value

    @_srtt.setter
    def _srtt(self, value: float) -> None:
        self._table.srtt[self._row] = value

    def __init__(self, engine: Engine, local_addr: Address, remote_addr: Address,
                 local_cep: int, remote_cep: int, policy: EfcpPolicy,
                 output: OutputFn, deliver: DeliverFn, priority: int = 8,
                 on_stall: Optional[Callable[[], None]] = None,
                 on_close: Optional[Callable[[], None]] = None,
                 table: Optional[EfcpTable] = None) -> None:
        self._engine = engine
        self.local_addr = local_addr
        self.remote_addr = remote_addr
        self.local_cep = local_cep
        self.remote_cep = remote_cep
        self.policy = policy
        self._output = output
        self._deliver = deliver
        self._priority = priority
        self._on_stall = on_stall
        self._on_close = on_close
        self.stats = EfcpStats()
        self.closed = False

        # the columnar row backing every scalar property below (a private
        # table when the caller manages connections standalone, e.g. tests)
        self._table = table if table is not None else EfcpTable()
        self._row = self._table.alloc()

        # --- sender state ---
        self._send_queue: Deque[Tuple[int, Any, int]] = deque()  # awaiting window
        self._outstanding: Dict[int, Tuple[Any, int, float, bool]] = {}
        # seq -> (payload, size, time_sent, retransmitted)
        self._credit = policy.initial_credit
        self._retx_timer = Timer(engine, self._on_retx_timeout, label="efcp.retx")
        # RTO estimation (RFC 6298 style); srtt NaN == no sample yet
        self._table.srtt[self._row] = math.nan
        self._rto = policy.rto_initial
        # congestion window (PDUs); effectively infinite when disabled
        self._cwnd = float(policy.initial_cwnd)
        self._ssthresh = float(policy.initial_credit)
        # fast retransmit: count how often each outstanding seq was "passed"
        # by selective acks of later PDUs (the SACK analogue of dupacks)
        self._sack_passes: Dict[int, int] = {}
        # fast recovery: sequence number that must be passed before another
        # multiplicative decrease may happen (one decrease per window)
        self._recovery_point = -1

        # --- receiver state ---
        self._rcv_buffer: Dict[int, Tuple[Any, int]] = {}
        self._rcv_window = policy.initial_credit
        self._ack_timer = Timer(engine, self._send_ack_now, label="efcp.ack")
        self._ack_pending = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rto(self) -> float:
        """Current retransmission timeout in seconds."""
        return self._rto

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed RTT estimate (None before the first sample)."""
        return self._srtt

    @property
    def cwnd(self) -> float:
        """Congestion window in PDUs (meaningful with AIMD policy)."""
        return self._cwnd

    def outstanding_count(self) -> int:
        """PDUs sent but not yet acknowledged."""
        return len(self._outstanding)

    def queued_count(self) -> int:
        """SDUs accepted but not yet transmitted (window-blocked)."""
        return len(self._send_queue)

    def all_acknowledged(self) -> bool:
        """True when every submitted SDU has been acknowledged."""
        return not self._outstanding and not self._send_queue

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, payload: Any, size: int) -> bool:
        """Submit one SDU; False when the send buffer is full (backpressure)."""
        if self.closed:
            return False
        buffered = len(self._send_queue) + len(self._outstanding)
        if buffered >= self.policy.send_buffer_limit:
            self.stats.send_rejected += 1
            return False
        seq = self._next_seq
        self._next_seq += 1
        self._send_queue.append((seq, payload, size))
        self._pump()
        return True

    def _effective_window_edge(self) -> int:
        """Highest sequence number (exclusive) the sender may transmit."""
        edge = self._credit
        if self.policy.congestion == CONGESTION_AIMD:
            edge = min(edge, self._send_base + int(self._cwnd))
        if not self.policy.reliable:
            # no acks will arrive to slide the window: unconstrained
            return self._next_seq
        return edge

    def _pump(self) -> None:
        """Transmit queued SDUs that now fit in the window."""
        edge = self._effective_window_edge()
        while self._send_queue and self._send_queue[0][0] < edge:
            seq, payload, size = self._send_queue.popleft()
            self._transmit(seq, payload, size, retransmit=False)

    def _transmit(self, seq: int, payload: Any, size: int, retransmit: bool) -> None:
        pdu = DataPdu(self.local_addr, self.remote_addr, self.local_cep,
                      self.remote_cep, seq, payload, size,
                      drf=(seq == 0 and not retransmit), priority=self._priority)
        if self.policy.reliable:
            previous = self._outstanding.get(seq)
            already_retx = previous[3] if previous else False
            self._outstanding[seq] = (payload, size, self._engine.now,
                                      retransmit or already_retx)
            if not self._retx_timer.running:
                self._retx_timer.start(self._rto)
        self.stats.pdus_sent += 1
        if retransmit:
            self.stats.retransmissions += 1
        self._output(pdu)

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------
    def _on_retx_timeout(self) -> None:
        if not self._outstanding or self.closed:
            return
        self.stats.timeouts += 1
        self._retries += 1
        if self._retries > self.policy.max_retries:
            self.stats.stalls += 1
            if self._on_stall is not None:
                self._on_stall()
            if self.policy.give_up:
                self.close()
                return
            self._retries = self.policy.max_retries  # keep trying, stay capped
        # congestion response: multiplicative decrease on timeout
        if self.policy.congestion == CONGESTION_AIMD:
            self._ssthresh = max(2.0, self._cwnd / 2.0)
            self._cwnd = 1.0
            self._recovery_point = self._next_seq
        # exponential backoff
        old_rto = self._rto
        self._rto = min(self.policy.rto_max, self._rto * 2.0)
        if self.policy.retx == RETX_GOBACKN:
            for seq in sorted(self._outstanding):
                payload, size, _t, _r = self._outstanding[seq]
                self._transmit(seq, payload, size, retransmit=True)
        else:
            # selective repeat: resend every PDU that has aged past the RTO
            # (each was individually timestamped), so one timeout event
            # recovers all concurrent losses instead of serializing them.
            # Under AIMD the burst is capped at the (collapsed) congestion
            # window — retransmitting a full flight into a congested queue
            # would defeat the multiplicative decrease.
            now = self._engine.now
            budget = None
            if self.policy.congestion == CONGESTION_AIMD:
                budget = max(1, int(self._cwnd))
            for seq in sorted(self._outstanding):
                if budget is not None and budget <= 0:
                    break
                payload, size, sent_at, _r = self._outstanding[seq]
                if now - sent_at >= old_rto - 1e-12:
                    self._transmit(seq, payload, size, retransmit=True)
                    if budget is not None:
                        budget -= 1
        self._retx_timer.start(self._rto)

    # ------------------------------------------------------------------
    # Control (ACK/credit) handling — sender side
    # ------------------------------------------------------------------
    def handle_control(self, pdu: ControlPdu) -> None:
        """Process an inbound DTCP PDU addressed to this connection."""
        if self.closed:
            return
        if isinstance(pdu, CorruptedFrame):
            self.stats.corrupted += 1
            return
        if pdu.kind != ACK:
            return
        self.stats.acks_received += 1
        now = self._engine.now
        newly_acked = [seq for seq in self._outstanding if seq < pdu.ack_seq]
        for seq in pdu.sack:
            if seq in self._outstanding:
                newly_acked.append(seq)
        made_progress = False
        for seq in newly_acked:
            payload_size_time_retx = self._outstanding.pop(seq, None)
            self._sack_passes.pop(seq, None)
            if payload_size_time_retx is None:
                continue
            made_progress = True
            _payload, _size, sent_at, retransmitted = payload_size_time_retx
            if not retransmitted:  # Karn's rule: no samples from retransmits
                self._rtt_sample(now - sent_at)
            if self.policy.congestion == CONGESTION_AIMD:
                if self._cwnd < self._ssthresh:
                    self._cwnd += 1.0          # slow start
                else:
                    self._cwnd += 1.0 / self._cwnd  # congestion avoidance
        if pdu.ack_seq > self._send_base:
            self._send_base = pdu.ack_seq
            made_progress = True
        self._credit = max(self._credit, pdu.credit)
        if made_progress:
            self._retries = 0
            self._retx_timer.cancel()
            if self._outstanding:
                self._retx_timer.start(self._rto)
        self._fast_retransmit(pdu)
        self._pump()

    def _fast_retransmit(self, pdu: ControlPdu) -> None:
        """SACK-driven loss recovery: a PDU passed over by three selective
        acks of later sequence numbers is presumed lost and resent without
        waiting for the retransmission timer."""
        if self.policy.retx != RETX_SELECTIVE or not pdu.sack:
            return
        highest_sacked = max(pdu.sack)
        retransmitted = False
        for seq in sorted(self._outstanding):
            if seq >= highest_sacked:
                break
            passes = self._sack_passes.get(seq, 0) + 1
            if passes >= 3:
                self._sack_passes[seq] = 0
                payload, size, _t, _r = self._outstanding[seq]
                self._transmit(seq, payload, size, retransmit=True)
                retransmitted = True
            else:
                self._sack_passes[seq] = passes
        if retransmitted and self.policy.congestion == CONGESTION_AIMD \
                and self._send_base >= self._recovery_point:
            # fast recovery: one multiplicative decrease per window of loss
            self._ssthresh = max(2.0, self._cwnd / 2.0)
            self._cwnd = self._ssthresh
            self._recovery_point = self._next_seq

    def _rtt_sample(self, rtt: float) -> None:
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt
        self._rto = min(self.policy.rto_max,
                        max(self.policy.rto_min, self._srtt + 4 * self._rttvar))

    # ------------------------------------------------------------------
    # Receiving — receiver side
    # ------------------------------------------------------------------
    def handle_data(self, pdu: DataPdu) -> None:
        """Process an inbound DTP PDU addressed to this connection."""
        if self.closed:
            return
        if isinstance(pdu, CorruptedFrame):
            # delimiting/SDU-protection failure: the PDU is counted and
            # discarded, never delivered — retransmission recovers it
            self.stats.corrupted += 1
            return
        self.stats.pdus_received += 1
        seq = pdu.seq
        if not self.policy.reliable:
            self._receive_unreliable(pdu)
            return
        if seq >= self._rcv_expected + self._rcv_window:
            # beyond the credit this receiver ever granted: buffering it
            # would let a peer (or bug) grow _rcv_buffer without bound
            self.stats.window_drops += 1
            return
        if seq < self._rcv_expected or seq in self._rcv_buffer:
            self.stats.duplicates += 1
            self._schedule_ack()
            return
        if seq > self._rcv_expected:
            self.stats.out_of_order += 1
        self._rcv_buffer[seq] = (pdu.payload, pdu.payload_size)
        while self._rcv_expected in self._rcv_buffer:
            payload, size = self._rcv_buffer.pop(self._rcv_expected)
            self._rcv_expected += 1
            self._deliver_sdu(payload, size)
        self._schedule_ack()

    def _receive_unreliable(self, pdu: DataPdu) -> None:
        if self.policy.in_order:
            if pdu.seq < self._rcv_expected:
                self.stats.duplicates += 1
                return  # late: drop to preserve ordering
            self._rcv_expected = pdu.seq + 1
        self._deliver_sdu(pdu.payload, pdu.payload_size)

    def _deliver_sdu(self, payload: Any, size: int) -> None:
        self.stats.sdus_delivered += 1
        self.stats.bytes_delivered += size
        self._deliver(payload, size)

    def _schedule_ack(self) -> None:
        if self.policy.ack_delay <= 0.0:
            self._send_ack_now()
            return
        self._ack_pending = True
        if not self._ack_timer.running:
            self._ack_timer.start(self.policy.ack_delay)

    def _send_ack_now(self) -> None:
        if self.closed:
            return
        self._ack_pending = False
        sack = tuple(sorted(self._rcv_buffer))[:self.policy.sack_limit]
        credit = self._rcv_expected + self._rcv_window
        pdu = ControlPdu(self.local_addr, self.remote_addr, ACK,
                         self.local_cep, self.remote_cep,
                         ack_seq=self._rcv_expected, credit=credit, sack=sack)
        self.stats.acks_sent += 1
        self._output(pdu)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear the connection down locally; pending state is discarded."""
        if self.closed:
            return
        self.closed = True
        self._retx_timer.cancel()
        self._ack_timer.cancel()
        self._send_queue.clear()
        self._outstanding.clear()
        self._rcv_buffer.clear()
        if self._on_close is not None:
            self._on_close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<EfcpConnection {self.local_addr}:{self.local_cep}->"
                f"{self.remote_addr}:{self.remote_cep} "
                f"next={self._next_seq} base={self._send_base}>")
