"""Declarative policy specification (§8).

The paper's ongoing work: "By separating mechanisms from policies [...] we
can enable users to specify (and the community to contribute) IPC policies
declaratively within our IPC framework, as we have recently done in [11]
for transport policies."

This module is that interface for this implementation: a JSON-able dict
(or a JSON file) fully describes a DIF's policy bundle —
:func:`policies_from_spec` compiles it into a live
:class:`~repro.core.dif.DifPolicies`, and :func:`spec_from_policies`
round-trips one back for inspection.  Changing a facility's behaviour is
editing data, not writing protocol code.

Example spec::

    {
      "addressing": {"type": "topological"},
      "auth": {"type": "challenge-response", "secret": "ops-2008"},
      "access": {"type": "allow-all"},
      "scheduler": {"type": "drr", "quantum": 3000},
      "path_selector": "round-robin",
      "keepalive": {"interval": 0.2, "dead_factor": 3},
      "efcp": {"rto_min": 0.005},
      "efcp_cubes": {"bulk": {"congestion": "aimd"}},
      "qos_cubes": [
        {"name": "voice", "max_delay": 0.03, "priority": 0,
         "loss_tolerance": 0.05}
      ],
      "limits": {"max_members": 64},
      "admission": {"type": "guaranteed-bandwidth",
                    "capacity_bps": 10000000}
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .addressing import AddressingPolicy, FlatAddressing, TopologicalAddressing
from .auth import (AllowAll, AllowList, AuthPolicy, ChallengeResponse, DenyAll,
                   FlowAccessPolicy, NoAuth, PresharedKey)
from .dif import DifPolicies
from .names import ApplicationName
from .qos import DEFAULT_CUBES, QosCube


class PolicySpecError(ValueError):
    """Raised when a specification does not compile."""


def _build_addressing(spec: Optional[dict]) -> Optional[AddressingPolicy]:
    if spec is None:
        return None
    kind = spec.get("type", "flat")
    if kind == "flat":
        return FlatAddressing(start=int(spec.get("start", 1)))
    if kind == "topological":
        region = tuple(spec.get("default_region", (0,)))
        return TopologicalAddressing(default_region=region)
    raise PolicySpecError(f"unknown addressing policy {kind!r}")


def _build_auth(spec: Optional[dict]) -> Optional[AuthPolicy]:
    if spec is None:
        return None
    kind = spec.get("type", "none")
    if kind == "none":
        return NoAuth()
    if kind == "psk":
        secret = spec.get("secret")
        if not secret:
            raise PolicySpecError("psk auth requires a 'secret'")
        return PresharedKey(secret)
    if kind == "challenge-response":
        secret = spec.get("secret")
        if not secret:
            raise PolicySpecError("challenge-response auth requires a 'secret'")
        return ChallengeResponse(secret)
    raise PolicySpecError(f"unknown auth policy {kind!r}")


def _build_access(spec: Optional[dict]) -> Optional[FlowAccessPolicy]:
    if spec is None:
        return None
    kind = spec.get("type", "allow-all")
    if kind == "allow-all":
        return AllowAll()
    if kind == "deny-all":
        return DenyAll()
    if kind == "allow-list":
        sources = spec.get("sources")
        if not isinstance(sources, list):
            raise PolicySpecError("allow-list access requires 'sources'")
        return AllowList([ApplicationName.parse(text) for text in sources])
    raise PolicySpecError(f"unknown access policy {kind!r}")


def _build_cubes(specs: Optional[List[dict]]) -> Optional[Dict[str, QosCube]]:
    if specs is None:
        return None
    cubes = dict(DEFAULT_CUBES)
    for entry in specs:
        if "name" not in entry:
            raise PolicySpecError("every qos cube needs a 'name'")
        try:
            cube = QosCube(
                entry["name"],
                reliable=bool(entry.get("reliable", False)),
                in_order=bool(entry.get("in_order",
                                        entry.get("reliable", False))),
                max_delay=entry.get("max_delay"),
                avg_bandwidth=entry.get("avg_bandwidth"),
                loss_tolerance=float(entry.get("loss_tolerance", 1.0)),
                priority=int(entry.get("priority", 8)))
        except ValueError as exc:
            raise PolicySpecError(f"bad qos cube {entry['name']!r}: {exc}")
        cubes[cube.name] = cube
    return cubes


_KNOWN_KEYS = {"addressing", "auth", "access", "scheduler", "path_selector",
               "keepalive", "routing", "efcp", "efcp_cubes", "qos_cubes",
               "limits", "flooding", "admission", "mgmt", "lower_flow_cube",
               "pace_ports"}


def policies_from_spec(spec: Dict[str, Any]) -> DifPolicies:
    """Compile a declarative policy spec into a :class:`DifPolicies`."""
    unknown = set(spec) - _KNOWN_KEYS
    if unknown:
        raise PolicySpecError(f"unknown spec sections: {sorted(unknown)}")
    kwargs: Dict[str, Any] = {}

    addressing = _build_addressing(spec.get("addressing"))
    if addressing is not None:
        kwargs["addressing"] = addressing
    auth = _build_auth(spec.get("auth"))
    if auth is not None:
        kwargs["auth"] = auth
    access = _build_access(spec.get("access"))
    if access is not None:
        kwargs["access"] = access
    cubes = _build_cubes(spec.get("qos_cubes"))
    if cubes is not None:
        kwargs["qos_cubes"] = cubes

    scheduler = spec.get("scheduler")
    if scheduler is not None:
        if isinstance(scheduler, str):
            kwargs["scheduler"] = scheduler
        else:
            scheduler = dict(scheduler)
            kwargs["scheduler"] = scheduler.pop("type", "fifo")
            kwargs["scheduler_kwargs"] = scheduler
    if "path_selector" in spec:
        kwargs["path_selector"] = spec["path_selector"]

    keepalive = spec.get("keepalive")
    if keepalive is not None:
        if "interval" in keepalive:
            kwargs["keepalive_interval"] = float(keepalive["interval"])
        if "dead_factor" in keepalive:
            kwargs["dead_factor"] = float(keepalive["dead_factor"])

    routing = spec.get("routing")
    if routing is not None:
        if "spf_delay" in routing:
            kwargs["spf_delay"] = float(routing["spf_delay"])
        if "refresh_interval" in routing:
            kwargs["refresh_interval"] = routing["refresh_interval"]

    if "efcp" in spec:
        kwargs["efcp_overrides"] = dict(spec["efcp"])
    if "efcp_cubes" in spec:
        kwargs["efcp_cube_overrides"] = {
            name: dict(overrides)
            for name, overrides in spec["efcp_cubes"].items()}

    limits = spec.get("limits")
    if limits is not None:
        if "max_members" in limits:
            kwargs["max_members"] = limits["max_members"]
        if "allocate_retries" in limits:
            kwargs["allocate_retries"] = int(limits["allocate_retries"])

    flooding = spec.get("flooding")
    if flooding is not None:
        if "attempts" in flooding:
            kwargs["flood_attempts"] = int(flooding["attempts"])
        if "ack_timeout" in flooding:
            kwargs["flood_ack_timeout"] = float(flooding["ack_timeout"])

    mgmt = spec.get("mgmt")
    if mgmt is not None:
        if "timeout" in mgmt:
            kwargs["mgmt_timeout"] = float(mgmt["timeout"])
        if "enroll_attempts" in mgmt:
            kwargs["enroll_attempts"] = int(mgmt["enroll_attempts"])

    admission = spec.get("admission")
    if admission is not None:
        kind = admission.get("type", "none")
        if kind == "none":
            kwargs["admission_capacity_bps"] = None
        elif kind == "guaranteed-bandwidth":
            capacity = admission.get("capacity_bps")
            if not capacity or capacity <= 0:
                raise PolicySpecError(
                    "guaranteed-bandwidth admission needs 'capacity_bps' > 0")
            kwargs["admission_capacity_bps"] = float(capacity)
        else:
            raise PolicySpecError(f"unknown admission policy {kind!r}")

    if "pace_ports" in spec:
        kwargs["pace_ports"] = bool(spec["pace_ports"])

    try:
        return DifPolicies(**kwargs)
    except Exception as exc:
        raise PolicySpecError(f"spec does not compile: {exc}")


def load_policy_file(path: str) -> DifPolicies:
    """Compile a JSON policy file."""
    with open(path) as handle:
        spec = json.load(handle)
    if not isinstance(spec, dict):
        raise PolicySpecError("policy file must contain a JSON object")
    return policies_from_spec(spec)


def spec_from_policies(policies: DifPolicies) -> Dict[str, Any]:
    """Render a policy bundle back into a JSON-able spec (round-trip aid)."""
    spec: Dict[str, Any] = {
        "addressing": {"type": policies.addressing.describe()},
        "auth": {"type": policies.auth.name},
        "scheduler": {"type": policies.scheduler,
                      **policies.scheduler_kwargs},
        "path_selector": policies.path_selector,
        "keepalive": {"interval": policies.keepalive_interval,
                      "dead_factor": policies.dead_factor},
        "routing": {"spf_delay": policies.spf_delay,
                    "refresh_interval": policies.refresh_interval},
        "efcp": dict(policies.efcp_overrides),
        "efcp_cubes": {name: dict(v)
                       for name, v in policies.efcp_cube_overrides.items()},
        "qos_cubes": [
            {"name": cube.name, "reliable": cube.reliable,
             "in_order": cube.in_order, "max_delay": cube.max_delay,
             "avg_bandwidth": cube.avg_bandwidth,
             "loss_tolerance": cube.loss_tolerance,
             "priority": cube.priority}
            for cube in policies.qos_cubes.values()],
        "limits": {"max_members": policies.max_members,
                   "allocate_retries": policies.allocate_retries},
        "flooding": {"attempts": policies.flood_attempts,
                     "ack_timeout": policies.flood_ack_timeout},
        "mgmt": {"timeout": policies.mgmt_timeout,
                 "enroll_attempts": policies.enroll_attempts},
        "pace_ports": policies.pace_ports,
    }
    if policies.admission_capacity_bps is not None:
        spec["admission"] = {"type": "guaranteed-bandwidth",
                             "capacity_bps": policies.admission_capacity_bps}
    else:
        spec["admission"] = {"type": "none"}
    return spec
