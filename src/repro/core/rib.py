"""The Resource Information Base (RIB).

Each IPC process keeps a RIB: a tree of named objects holding everything the
management task set knows — enrolled neighbors, the directory of registered
application names, link-state advertisements, address assignments, QoS
offerings.  RIEP (the management protocol) is defined as operations *on RIB
objects*, so the RIB is the single point of coordination between the three
task sets the paper separates by timescale (§4).

Paths are POSIX-like strings (``/directory/names/video-server``).  Values
are plain Python objects.  Subscribers get called on every mutation beneath
their prefix, which is how routing reacts to new LSAs and the flow allocator
reacts to directory changes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

Subscriber = Callable[[str, str, Any], None]  # (operation, path, value)

CREATE = "create"
WRITE = "write"
DELETE = "delete"


class RibError(KeyError):
    """Raised for operations on missing/duplicate RIB paths."""


# Path interning: every RIB in the process (one per member, thousands per
# plant) stores the same handful of distinct management paths, so the
# split/join results are shared process-wide.  ``_PARTS_OF`` maps each raw
# path string to its canonical parts tuple (one tuple object per distinct
# path, whatever spelling arrives); ``_PATH_OF`` is the inverse.  Beyond
# the de-duplicated memory, interning makes the flattened stores fast:
# repeated ``split_path`` calls are one dict hit, and identical key
# objects let dict lookups short-circuit on identity.
_PARTS_OF: Dict[str, Tuple[str, ...]] = {}
_PATH_OF: Dict[Tuple[str, ...], str] = {}


def split_path(path: str) -> Tuple[str, ...]:
    """Normalize ``/a/b/c`` into its components; rejects empty paths.

    Results are interned: equal paths (any spelling) return the same
    tuple object.
    """
    parts = _PARTS_OF.get(path)
    if parts is None:
        parts = tuple(p for p in path.split("/") if p)
        if not parts:
            raise RibError(f"invalid RIB path {path!r}")
        canonical = "/" + "/".join(parts)
        existing = _PARTS_OF.get(canonical)
        if existing is not None:
            parts = existing          # alternate spelling of a known path
        else:
            _PARTS_OF[canonical] = parts
            _PATH_OF[parts] = canonical
        if path != canonical:
            _PARTS_OF[path] = parts
    return parts


def join_path(parts: Tuple[str, ...]) -> str:
    """Inverse of :func:`split_path` (interned alongside it)."""
    path = _PATH_OF.get(parts)
    if path is None:
        path = "/" + "/".join(parts)
        _PATH_OF[parts] = path
        _PARTS_OF.setdefault(path, parts)
    return path


class Rib:
    """A flattened store of (path → value) with prefix subscriptions.

    Despite the tree-shaped path namespace there is no per-node dict
    tree: objects live in one flat dict keyed by interned parts tuples,
    so a member's RIB costs one dict plus shared key objects, and prefix
    queries are linear scans over the flat key set (the RIB is small per
    member; mutation and exact lookup are the hot operations).
    """

    __slots__ = ("_objects", "_subscribers")

    def __init__(self) -> None:
        self._objects: Dict[Tuple[str, ...], Any] = {}
        self._subscribers: List[Tuple[Tuple[str, ...], Subscriber]] = []

    # ------------------------------------------------------------------
    # Object operations
    # ------------------------------------------------------------------
    def create(self, path: str, value: Any = None) -> None:
        """Create a new object; :class:`RibError` if it already exists."""
        parts = split_path(path)
        if parts in self._objects:
            raise RibError(f"RIB object already exists: {path}")
        self._objects[parts] = value
        self._notify(CREATE, parts, value)

    def write(self, path: str, value: Any) -> None:
        """Set an object's value, creating it if necessary."""
        parts = split_path(path)
        existed = parts in self._objects
        self._objects[parts] = value
        self._notify(WRITE if existed else CREATE, parts, value)

    def read(self, path: str) -> Any:
        """Return the object's value; :class:`RibError` when absent."""
        parts = split_path(path)
        if parts not in self._objects:
            raise RibError(f"no RIB object at {path}")
        return self._objects[parts]

    def read_or(self, path: str, default: Any = None) -> Any:
        """Like :meth:`read` but returning ``default`` when absent."""
        return self._objects.get(split_path(path), default)

    def exists(self, path: str) -> bool:
        """True when an object exists at exactly ``path``."""
        return split_path(path) in self._objects

    def delete(self, path: str) -> Any:
        """Remove an object and return its last value."""
        parts = split_path(path)
        if parts not in self._objects:
            raise RibError(f"no RIB object at {path}")
        value = self._objects.pop(parts)
        self._notify(DELETE, parts, value)
        return value

    def delete_if_exists(self, path: str) -> None:
        """Remove an object when present; silent otherwise."""
        parts = split_path(path)
        if parts in self._objects:
            value = self._objects.pop(parts)
            self._notify(DELETE, parts, value)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def list(self, prefix: str) -> List[str]:
        """All object paths strictly beneath ``prefix``, sorted."""
        parts = split_path(prefix)
        return sorted(
            join_path(p) for p in self._objects
            if len(p) > len(parts) and p[:len(parts)] == parts)

    def children(self, prefix: str) -> List[str]:
        """Immediate child component names beneath ``prefix``, sorted."""
        parts = split_path(prefix)
        names = {p[len(parts)] for p in self._objects
                 if len(p) > len(parts) and p[:len(parts)] == parts}
        return sorted(names)

    def items(self, prefix: str) -> Iterator[Tuple[str, Any]]:
        """(path, value) pairs beneath ``prefix``, sorted by path."""
        for path in self.list(prefix):
            yield path, self._objects[split_path(path)]

    def size(self) -> int:
        """Total number of objects in the RIB."""
        return len(self._objects)

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def subscribe(self, prefix: str, callback: Subscriber) -> Callable[[], None]:
        """Invoke ``callback(op, path, value)`` for mutations under
        ``prefix``; returns an unsubscribe function."""
        parts = split_path(prefix)
        entry = (parts, callback)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            if entry in self._subscribers:
                self._subscribers.remove(entry)
        return unsubscribe

    def _notify(self, operation: str, parts: Tuple[str, ...], value: Any) -> None:
        path = join_path(parts)
        for prefix, callback in list(self._subscribers):
            if parts[:len(prefix)] == prefix:
                callback(operation, path, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Rib {len(self._objects)} objects>"
