"""SDU delimiting: application messages ↔ transport-sized fragments.

Applications hand the IPC API messages of arbitrary size; EFCP moves
PDU-sized SDUs.  Delimiting sits between them: the :class:`Delimiter`
splits each message into fragments no larger than ``max_fragment``, and the
:class:`Reassembler` rebuilds messages at the far end, tolerating loss on
unreliable flows by discarding incomplete messages.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

#: Per-fragment delimiting header: message id, fragment index, flags, length.
FRAGMENT_HEADER_BYTES = 8


class Fragment:
    """One delimited piece of an application message."""

    __slots__ = ("message_id", "index", "last", "data")

    def __init__(self, message_id: int, index: int, last: bool, data: bytes) -> None:
        self.message_id = message_id
        self.index = index
        self.last = last
        self.data = data

    def wire_size(self) -> int:
        """Size of the fragment as an EFCP SDU."""
        return FRAGMENT_HEADER_BYTES + len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tail = "L" if self.last else ""
        return f"<Fragment m{self.message_id}#{self.index}{tail} {len(self.data)}B>"


class Delimiter:
    """Splits messages into :class:`Fragment` objects."""

    def __init__(self, max_fragment: int = 1400) -> None:
        if max_fragment < 1:
            raise ValueError("max_fragment must be at least 1 byte")
        self.max_fragment = max_fragment
        self._next_message_id = 0

    def delimit(self, message: bytes) -> List[Fragment]:
        """Fragment one message; empty messages yield one empty fragment."""
        message_id = self._next_message_id
        self._next_message_id += 1
        if not message:
            return [Fragment(message_id, 0, True, b"")]
        pieces = [message[i:i + self.max_fragment]
                  for i in range(0, len(message), self.max_fragment)]
        return [Fragment(message_id, index, index == len(pieces) - 1, piece)
                for index, piece in enumerate(pieces)]


class Reassembler:
    """Rebuilds messages from fragments.

    Fragments of a message are expected in index order within the message
    (EFCP in-order flows guarantee this; unreliable flows may lose
    fragments, in which case the partially assembled message is discarded
    when a fragment of a newer message arrives).
    """

    def __init__(self) -> None:
        self._current_id: Optional[int] = None
        self._parts: List[bytes] = []
        self._next_index = 0
        self.messages_discarded = 0

    def push(self, fragment: Fragment) -> Optional[bytes]:
        """Feed one fragment; returns a completed message or None."""
        if self._current_id is not None and fragment.message_id != self._current_id:
            # a new message began before the old one finished: drop the old
            self.messages_discarded += 1
            self._reset()
        if self._current_id is None:
            if fragment.index != 0:
                # middle of a message whose head was lost
                self.messages_discarded += 1
                return None
            self._current_id = fragment.message_id
        if fragment.index != self._next_index:
            # gap within the current message
            self.messages_discarded += 1
            self._reset()
            return None
        self._parts.append(fragment.data)
        self._next_index += 1
        if fragment.last:
            message = b"".join(self._parts)
            self._reset()
            return message
        return None

    def _reset(self) -> None:
        self._current_id = None
        self._parts = []
        self._next_index = 0
