"""The wire-format codec: every PDU as pure data.

Everything that can cross a link has two representations.  In one
engine, a PDU is a live object graph — interned :class:`Address`\\ es,
a :class:`RiepMessage` with its cached size, handler references one hop
up the stack.  At a *cut* (a shard boundary between worker processes,
or a link asked to be wire-faithful) none of that may travel: what
crosses is the **encoded form**, a tree of tagged tuples containing
nothing but ``None``/``bool``/``int``/``float``/``str``/``bytes``.

The contract, enforced by ``tests/test_codec.py``:

* **round trip** — ``decode(encode(x))`` is equal-valued to ``x`` for
  every PDU kind, every RIEP message, every LSA, and every JSON-like
  payload value;
* **byte stability** — ``encode(decode(encode(x))) == encode(x)``: the
  encoded form is canonical, so fingerprints of encoded traffic are
  meaningful;
* **size consistency** — :func:`encoded_wire_size` computes a PDU's
  on-wire size from the encoded form *without decoding*, by the same
  accounting :meth:`~repro.core.pdu.Pdu.wire_size` uses on the live
  object.  A :class:`RiepMessage` additionally carries its size
  estimate across the cut (restored into ``_size_cache`` on decode), so
  a decoded message serializes in exactly the same number of bytes the
  sender charged — re-flooding timing cannot drift at a process
  boundary.  :func:`check_size_consistency` asserts all three
  accountings agree.

Decoding rebuilds the process-local fast paths: ``Address(*parts)``
lands in the interning table (decoded addresses hit the identity fast
path in forwarding dicts exactly like locally created ones), and the
RIEP/LSA value caches are either carried (sizes) or lazily recomputed
from the identical primitive values.

Encoding is *strict*: an object the codec does not know is a
:class:`CodecError`, not a silent pickle — a live reference leaking
toward a cut should fail at the sender, loudly.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from .delimiting import Fragment
from .names import Address, ApplicationName, DifName
from .pdu import (CONTROL_HEADER_BYTES, DATA_HEADER_BYTES,
                  MGMT_HEADER_BYTES, ControlPdu, DataPdu, ManagementPdu)
from .riep import RiepMessage, _estimate_value_size
from .routing import Lsa

#: Tags of the encoded forms.  Scalars pass through untagged (a scalar
#: is never a tuple, so decoding is unambiguous); every container and
#: object becomes a tuple whose first element is one of these.
TAG_TUPLE = "T"
TAG_LIST = "L"
TAG_DICT = "D"
TAG_SET = "S"
TAG_FROZENSET = "FS"
TAG_ADDRESS = "A"
TAG_APP_NAME = "N"
TAG_DIF_NAME = "DIF"
TAG_RIEP = "R"
TAG_LSA = "LSA"
TAG_DATA_PDU = "PD"
TAG_CONTROL_PDU = "PC"
TAG_MGMT_PDU = "PM"
TAG_FRAGMENT = "FR"

_SCALARS = (type(None), bool, int, float, str, bytes)


class CodecError(TypeError):
    """An object that cannot be represented as wire data."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode(value: Any) -> Any:
    """The canonical pure-data form of ``value`` (scalars pass through)."""
    if isinstance(value, _SCALARS):
        return value
    kind = type(value)
    if kind is tuple:
        return (TAG_TUPLE,) + tuple(encode(item) for item in value)
    if kind is list:
        return (TAG_LIST,) + tuple(encode(item) for item in value)
    if kind is dict:
        return (TAG_DICT,) + tuple(
            (encode(key), encode(val)) for key, val in value.items())
    if kind is set or kind is frozenset:
        tag = TAG_SET if kind is set else TAG_FROZENSET
        # canonical member order: sets have none, the encoding must
        return (tag,) + tuple(sorted((encode(item) for item in value),
                                     key=repr))
    if kind is Address:
        return (TAG_ADDRESS,) + value.parts
    if kind is ApplicationName:
        return (TAG_APP_NAME, value.process, value.instance)
    if kind is DifName:
        return (TAG_DIF_NAME, value.value)
    if kind is RiepMessage:
        # the size estimate crosses with the message: a decoded copy
        # must charge the links exactly what the original did
        return (TAG_RIEP, value.opcode, value.obj, encode(value.value),
                value.invoke_id, value.result, value.estimate_size())
    if kind is Lsa:
        return (TAG_LSA, (TAG_ADDRESS,) + value.origin.parts, value.seq,
                tuple(((TAG_ADDRESS,) + addr.parts, cost)
                      for addr, cost in sorted(value.neighbors.items())))
    if kind is DataPdu:
        return (TAG_DATA_PDU, encode(value.src_addr), encode(value.dst_addr),
                value.ttl, value.priority, value.src_cep, value.dst_cep,
                value.seq, encode(value.payload), value.payload_size,
                value.drf)
    if kind is ControlPdu:
        return (TAG_CONTROL_PDU, encode(value.src_addr),
                encode(value.dst_addr), value.ttl, value.priority,
                value.kind, value.src_cep, value.dst_cep, value.ack_seq,
                value.credit, (TAG_TUPLE,) + tuple(value.sack))
    if kind is ManagementPdu:
        return (TAG_MGMT_PDU, encode(value.src_addr), encode(value.dst_addr),
                value.ttl, value.priority, encode(value.message))
    if kind is Fragment:
        # app payloads the delimiting module produced — the gateway
        # carries these inside shim data frames across real sockets
        return (TAG_FRAGMENT, value.message_id, value.index, value.last,
                value.data)
    raise CodecError(
        f"cannot encode {kind.__name__} for the wire: only PDUs, RIEP "
        f"messages, LSAs, fragments, names, and JSON-like values may "
        f"cross a cut")


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def decode(data: Any) -> Any:
    """Rebuild the live value of an encoded form (interning addresses,
    restoring size caches)."""
    if not isinstance(data, tuple):
        return data
    tag = data[0]
    if tag == TAG_TUPLE:
        return tuple(decode(item) for item in data[1:])
    if tag == TAG_LIST:
        return [decode(item) for item in data[1:]]
    if tag == TAG_DICT:
        return {decode(key): decode(val) for key, val in data[1:]}
    if tag == TAG_SET:
        return {decode(item) for item in data[1:]}
    if tag == TAG_FROZENSET:
        return frozenset(decode(item) for item in data[1:])
    if tag == TAG_ADDRESS:
        return Address(*data[1:])
    if tag == TAG_APP_NAME:
        return ApplicationName(data[1], data[2])
    if tag == TAG_DIF_NAME:
        return DifName(data[1])
    if tag == TAG_RIEP:
        _tag, opcode, obj, value, invoke_id, result, size = data
        message = RiepMessage(opcode, obj=obj, value=decode(value),
                              invoke_id=invoke_id, result=result)
        message._size_cache = size
        return message
    if tag == TAG_LSA:
        _tag, origin, seq, neighbors = data
        return Lsa(Address(*origin[1:]), seq,
                   {Address(*addr[1:]): cost for addr, cost in neighbors})
    if tag == TAG_DATA_PDU:
        (_tag, src, dst, ttl, priority, src_cep, dst_cep, seq, payload,
         payload_size, drf) = data
        return DataPdu(decode(src), decode(dst), src_cep, dst_cep, seq,
                       decode(payload), payload_size, drf=drf, ttl=ttl,
                       priority=priority)
    if tag == TAG_CONTROL_PDU:
        (_tag, src, dst, ttl, priority, kind, src_cep, dst_cep, ack_seq,
         credit, sack) = data
        return ControlPdu(decode(src), decode(dst), kind, src_cep, dst_cep,
                          ack_seq=ack_seq, credit=credit,
                          sack=decode(sack), ttl=ttl, priority=priority)
    if tag == TAG_MGMT_PDU:
        _tag, src, dst, ttl, priority, message = data
        return ManagementPdu(decode(src), decode(dst), decode(message),
                             ttl=ttl, priority=priority)
    if tag == TAG_FRAGMENT:
        _tag, message_id, index, last, raw = data
        return Fragment(message_id, index, last, raw)
    raise CodecError(f"unknown wire tag {tag!r}")


def decode_reencode(data: Any) -> Any:
    """``encode(decode(data))`` — the byte-stability probe.

    Module-level so it can run as a sweeps :class:`~repro.sweeps.Job`
    in a ``spawn``-ed worker: the round trip must canonicalize to the
    same bytes in a fresh interpreter (no fork-inherited interning).
    """
    return encode(decode(data))


def roundtrip_rows(samples: Tuple[Any, ...]) -> list:
    """Sweeps job target: decode→re-encode each encoded sample and
    report stability (run under ``spawn`` by ``tests/test_codec.py`` to
    prove the round trip holds in a fresh interpreter, where nothing —
    interned addresses included — is inherited from the parent)."""
    import os
    rows = []
    for index, data in enumerate(samples):
        redone = decode_reencode(data)
        rows.append({"index": index, "stable": redone == data,
                     "size": (encoded_wire_size(data)
                              if isinstance(data, tuple) and data[0] in
                              (TAG_DATA_PDU, TAG_CONTROL_PDU, TAG_MGMT_PDU)
                              else -1),
                     "pid": os.getpid()})
    return rows


# ----------------------------------------------------------------------
# Size accounting over the encoded form
# ----------------------------------------------------------------------
def encoded_wire_size(data: Any) -> int:
    """A PDU's on-wire size computed from its *encoded* form.

    Independent of both the live object's :meth:`wire_size` and the
    size carried inside an encoded RIEP message — that independence is
    what makes the consistency regression test meaningful.
    """
    if not isinstance(data, tuple):
        raise CodecError(f"not an encoded PDU: {data!r}")
    tag = data[0]
    if tag == TAG_DATA_PDU:
        return DATA_HEADER_BYTES + data[9]
    if tag == TAG_CONTROL_PDU:
        return CONTROL_HEADER_BYTES + 4 * (len(data[10]) - 1)
    if tag == TAG_MGMT_PDU:
        body = data[5]
        if isinstance(body, tuple) and body and body[0] == TAG_RIEP:
            return MGMT_HEADER_BYTES + encoded_riep_size(body)
        return MGMT_HEADER_BYTES + 64   # non-RIEP bodies: flat record
    raise CodecError(f"not an encoded PDU tag: {tag!r}")


def encoded_riep_size(data: Any) -> int:
    """A RIEP message's body size recomputed from its encoded form (the
    same accounting as :meth:`RiepMessage.estimate_size`, ignoring the
    carried size field)."""
    if not isinstance(data, tuple) or data[0] != TAG_RIEP:
        raise CodecError(f"not an encoded RIEP message: {data!r}")
    _tag, opcode, obj, value, _invoke_id, _result, _size = data
    body = len(opcode) + len(obj) + 12
    if value is not None:
        body += _encoded_value_size(value)
    return body


def _encoded_value_size(value: Any) -> int:
    """:func:`repro.core.riep._estimate_value_size` over encoded data:
    tags are free, members are charged by the live rules."""
    if not isinstance(value, tuple):
        return _estimate_value_size(value)
    tag = value[0]
    if tag in (TAG_TUPLE, TAG_LIST, TAG_SET, TAG_FROZENSET):
        return 2 + sum(_encoded_value_size(item) for item in value[1:])
    if tag == TAG_DICT:
        return 2 + sum(_encoded_value_size(key) + _encoded_value_size(val)
                       for key, val in value[1:])
    # tagged objects (addresses, names, nested PDUs...) are "arbitrary
    # objects" to the live estimator: a flat record
    return 32


def check_size_consistency(pdu: Any) -> None:
    """Assert the three size accountings agree for one PDU:

    1. the live object's ``wire_size()``;
    2. :func:`encoded_wire_size` over the encoded form (recomputed,
       carried caches ignored);
    3. ``wire_size()`` of the decoded copy with every cache cleared.

    Raises :class:`CodecError` on any mismatch.
    """
    live = pdu.wire_size()
    encoded = encode(pdu)
    from_encoded = encoded_wire_size(encoded)
    copy = decode(encoded)
    if isinstance(copy, ManagementPdu) and isinstance(copy.message,
                                                     RiepMessage):
        copy.message._size_cache = None   # force the recompute path
    recomputed = copy.wire_size()
    if not live == from_encoded == recomputed:
        raise CodecError(
            f"size accounting diverged for {type(pdu).__name__}: "
            f"live={live} encoded={from_encoded} recomputed={recomputed}")


def is_wire_data(data: Any) -> bool:
    """True when ``data`` is pure wire data all the way down — nothing
    but scalars and tuples.  The boundary-frame invariant the shard
    tests pin: no live object references ever sit in an outbox."""
    if isinstance(data, _SCALARS):
        return True
    if isinstance(data, tuple):
        return all(is_wire_data(item) for item in data)
    return False
