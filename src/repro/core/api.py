"""The application-facing IPC API (§3.1).

What the paper demands of the interface: the source names the destination
application and the desired properties; the facility locates the
application, enforces access, allocates, and returns *port IDs* — never
addresses, never well-known ports.

:class:`~repro.core.system.System` provides exactly that
(``register_app`` / ``allocate_flow``).  This module adds the two
conveniences real applications want on top of raw SDUs:

* :class:`MessageFlow` — arbitrary-size messages over a flow, using the
  delimiting module, with an internal retry queue against backpressure;
* :class:`FlowWaiter` — synchronous-style wait-for-allocation used by
  examples and tests driving the simulator.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from ..sim.engine import Engine, Timer
from .delimiting import Delimiter, Fragment, Reassembler
from .flow import Flow
from .names import ApplicationName
from .qos import QosCube

MessageReceiver = Callable[[bytes], None]


class MessageFlow:
    """Message framing over a flow: send/receive whole byte messages.

    Fragments that the flow refuses (send-buffer backpressure) are queued
    and retried on a timer, preserving order.
    """

    def __init__(self, engine: Engine, flow: Flow, max_fragment: int = 1400,
                 retry_delay: float = 0.01) -> None:
        self._engine = engine
        self.flow = flow
        self._delimiter = Delimiter(max_fragment)
        self._reassembler = Reassembler()
        self._receiver: Optional[MessageReceiver] = None
        self._backlog: Deque[Fragment] = deque()
        self._retry_delay = retry_delay
        self._retry_timer = Timer(engine, self._drain, label="msgflow.retry")
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_received = 0
        flow.set_receiver(self._on_sdu)

    def set_message_receiver(self, receiver: MessageReceiver) -> None:
        """Callback invoked with each completely reassembled message."""
        self._receiver = receiver

    def send_message(self, data: bytes) -> None:
        """Queue one message for transmission (fragments as needed)."""
        self._backlog.extend(self._delimiter.delimit(data))
        self.messages_sent += 1
        self._drain()

    def pending_fragments(self) -> int:
        """Fragments queued locally awaiting flow capacity."""
        return len(self._backlog)

    def _drain(self) -> None:
        if not self.flow.allocated:
            return
        while self._backlog:
            fragment = self._backlog[0]
            if not self.flow.send(fragment, fragment.wire_size()):
                self._retry_timer.start(self._retry_delay)
                return
            self._backlog.popleft()

    def _on_sdu(self, payload: Any, size: int) -> None:
        if not isinstance(payload, Fragment):
            return
        message = self._reassembler.push(payload)
        if message is not None:
            self.messages_received += 1
            self.bytes_received += len(message)
            if self._receiver is not None:
                self._receiver(message)


class FlowWaiter:
    """Records a flow's allocation outcome for poll-style tests/examples."""

    def __init__(self, flow: Flow) -> None:
        self.flow = flow
        self.completed = False
        self.ok = False
        self.reason: Optional[str] = None
        flow.on_allocated = self._on_ok
        flow.on_failed = self._on_fail

    def _on_ok(self, _flow: Flow) -> None:
        self.completed = True
        self.ok = True

    def _on_fail(self, _flow: Flow, reason: str) -> None:
        self.completed = True
        self.ok = False
        self.reason = reason

    def done(self) -> bool:
        """True once allocation succeeded or failed."""
        return self.completed
