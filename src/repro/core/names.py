"""Naming and addressing for the IPC architecture.

The paper's naming rules (§3.1, §5.3, §6.3, §7, after Saltzer and Shoch):

* **Application names** are location-independent ("what we seek").
  Applications — including the IPC processes themselves, which are
  applications of the layer below — are identified by an
  :class:`ApplicationName` and never by an address.
* **Addresses** are location-dependent identifiers *internal to a DIF*
  ("where it is"); they are assigned at enrollment and are never visible
  outside the DIF.  :class:`Address` supports both flat and topological
  (hierarchical) forms; topological addresses enable route aggregation.
* **Port IDs** are local, dynamically assigned handles naming one end of a
  flow at a layer boundary — explicitly *not* overloaded with application
  semantics (no well-known ports).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple


class ApplicationName:
    """A location-independent application process name.

    ``process``   — the application process name (e.g. ``"video-server"``).
    ``instance``  — distinguishes instances of the same program (default "1").

    IPC processes are named like any other application: an IPCP of DIF
    ``"metro"`` on system ``"host-a"`` might be ``ApplicationName("metro.ipcp.host-a")``.
    """

    __slots__ = ("process", "instance")

    def __init__(self, process: str, instance: str = "1") -> None:
        if not process:
            raise ValueError("application process name must be non-empty")
        self.process = process
        self.instance = instance

    def key(self) -> Tuple[str, str]:
        """Hashable identity tuple."""
        return (self.process, self.instance)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ApplicationName) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        if self.instance == "1":
            return f"App({self.process})"
        return f"App({self.process}/{self.instance})"

    def __str__(self) -> str:
        return self.process if self.instance == "1" else f"{self.process}/{self.instance}"

    @classmethod
    def parse(cls, text: str) -> "ApplicationName":
        """Inverse of ``str()``: ``"proc"`` or ``"proc/instance"``."""
        if "/" in text:
            process, instance = text.split("/", 1)
            return cls(process, instance)
        return cls(text)


class Address:
    """A DIF-internal address: a tuple of non-negative integers.

    A flat address is a 1-tuple (``Address(7)``); a topological address is a
    longer tuple whose leading components are location-dependent region
    labels (``Address(2, 0, 13)`` = region 2, sub-region 0, host 13).  The
    paper requires topological addresses for stable routing (§5.3) and we
    ablate this choice in experiment A1.
    """

    __slots__ = ("parts", "_hash")

    # addresses are immutable value objects keying every forwarding and
    # routing dict on the hot path; interning them makes dict lookups hit
    # the identity fast path instead of tuple __eq__ per probe
    _interned: Dict[Tuple[int, ...], "Address"] = {}

    def __new__(cls, *parts: int) -> "Address":
        if cls is Address:
            interned = cls._interned.get(parts)
            if interned is not None:
                return interned
        return super().__new__(cls)

    def __init__(self, *parts: int) -> None:
        if parts and self._interned.get(parts) is self:
            return  # interned instance handed back by __new__
        if not parts:
            raise ValueError("address needs at least one component")
        for p in parts:
            if not isinstance(p, int) or p < 0:
                raise ValueError(f"address components must be ints >= 0, got {parts!r}")
        self.parts = tuple(parts)
        self._hash = hash(self.parts)
        if type(self) is Address:
            self._interned[self.parts] = self

    @property
    def is_flat(self) -> bool:
        """True for single-component addresses."""
        return len(self.parts) == 1

    def prefix(self, length: int) -> Tuple[int, ...]:
        """The first ``length`` components (for aggregation)."""
        if not 0 <= length <= len(self.parts):
            raise ValueError(f"prefix length {length} out of range for {self!r}")
        return self.parts[:length]

    def matches_prefix(self, prefix: Tuple[int, ...]) -> bool:
        """True when this address begins with ``prefix``."""
        return self.parts[:len(prefix)] == tuple(prefix)

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return isinstance(other, Address) and self.parts == other.parts

    def __lt__(self, other: "Address") -> bool:
        return self.parts < other.parts

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self) -> Iterator[int]:
        return iter(self.parts)

    def __len__(self) -> int:
        return len(self.parts)

    def __repr__(self) -> str:
        return "Addr(" + ".".join(str(p) for p in self.parts) + ")"

    def __str__(self) -> str:
        return ".".join(str(p) for p in self.parts)


class PortId:
    """A local identifier for one end of a flow at a layer boundary.

    Port IDs are allocated dynamically per system and carry no application
    semantics; equality is by (system scope is implicit — a PortId is only
    meaningful to the system that allocated it).
    """

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        if value < 0:
            raise ValueError("port id must be non-negative")
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PortId) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("port", self.value))

    def __repr__(self) -> str:
        return f"Port({self.value})"


class DifName:
    """The name of a distributed IPC facility (a layer instance).

    Joining a DIF requires knowing its name or the name of a member (§5.2);
    there is no global namespace of DIFs — a DIF name is just an application
    name for the distributed application that is the DIF.
    """

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        if not value:
            raise ValueError("DIF name must be non-empty")
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DifName) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("dif", self.value))

    def __repr__(self) -> str:
        return f"DIF({self.value})"

    def __str__(self) -> str:
        return self.value

    def ipcp_name(self, system_name: str) -> ApplicationName:
        """Conventional application name for this DIF's IPCP on a system."""
        return ApplicationName(f"{self.value}.ipcp.{system_name}")
