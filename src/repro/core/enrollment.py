"""Enrollment: how an IPC process joins a DIF (§5.2).

"For a new IPC process x to join an existing (N)-DIF, x has to be
connected to the (N)-DIF by an underlying (N-1)-DIF. [...] x attempts to
establish a connection to y.  Once this connection is established, y
authenticates x.  If the authentication is successful, y assigns x an
(N)-address, and x becomes a member of the (N)-DIF."

The exchange here, carried hop-scoped over the freshly allocated (N-1)
flow (no (N)-address exists yet):

====  =========  ==================================================
step  direction  message
====  =========  ==================================================
1     x → y      ``M_CONNECT /enrollment`` {name, dif, region}
2     y → x      ``M_CONNECT_R`` {challenge, address of y}
3     x → y      ``M_START /enrollment/auth`` {credentials, name, region}
4     y → x      ``M_START_R`` {assigned address, LSDB + directory sync}
====  =========  ==================================================

A member that already holds an address uses the shorter *adjacency*
handshake (``M_CONNECT`` carrying its address) to bring up an additional
attachment — this is what multihoming and handover use, and note that the
connection established here "is purely for purposes of enrollment. It has
no effect on the nature of forwarding decisions."
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple, TYPE_CHECKING

from .dif import DifError
from .names import Address
from .riep import (M_CONNECT, M_START, RESULT_DENIED, RESULT_ERROR, RESULT_OK,
                   RiepMessage)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .ipcp import Ipcp

ENROLL_OBJ = "/enrollment"
AUTH_OBJ = "/enrollment/auth"
DEPART_OBJ = "/enrollment/depart"

DoneFn = Callable[[bool, str], None]


class EnrollmentTask:
    """Both sides of the enrollment and adjacency protocols for one IPCP."""

    def __init__(self, ipcp: "Ipcp") -> None:
        self._ipcp = ipcp
        # authenticator side: port id -> (joiner name text, challenge, region)
        self._pending_auth: Dict[int, Tuple[str, Optional[str], Tuple[int, ...]]] = {}
        # authenticator side: completed enrollments, replayed on duplicate
        # M_START (the joiner retries when our reply is lost)
        self._completed: Dict[int, dict] = {}
        self.joins_completed = 0
        self.joins_failed = 0
        self.joins_accepted = 0
        self.joins_denied = 0

    # ------------------------------------------------------------------
    # Joiner side
    # ------------------------------------------------------------------
    def start_join(self, port_id: int,
                   region_hint: Optional[Sequence[int]] = None,
                   done: Optional[DoneFn] = None) -> None:
        """Begin enrollment through the (N-1) flow on ``port_id``."""
        ipcp = self._ipcp
        value = {
            "name": str(ipcp.name),
            "dif": str(ipcp.dif.name),
            "region": tuple(region_hint) if region_hint else None,
            "address": ipcp.address.parts if ipcp.address is not None else None,
        }
        sent = self._request_with_retry(
            port_id, lambda: RiepMessage(M_CONNECT, obj=ENROLL_OBJ, value=value),
            lambda reply: self._on_connect_reply(reply, port_id,
                                                 region_hint, done),
            self._ipcp.dif.policies.enroll_attempts)
        if not sent:
            self._fail(done, "no-port")

    def _request_with_retry(self, port_id: int,
                            make_message: "Callable[[], RiepMessage]",
                            handler: "Callable[[Optional[RiepMessage]], None]",
                            attempts: int) -> bool:
        """Send a hop-scoped RIEP request, retrying on timeout.

        Each attempt is a fresh message with a new invoke id (the medium
        below enrollment offers no delivery guarantees — §5.2's connection
        is built from scratch here).
        """
        ipcp = self._ipcp

        def on_reply(reply: Optional[RiepMessage]) -> None:
            if reply is None and attempts > 1:
                self._request_with_retry(port_id, make_message, handler,
                                         attempts - 1)
                return
            handler(reply)

        message = make_message()
        ipcp.invoke_table.new_request(message, on_reply)
        return ipcp.send_mgmt_on_port(port_id, message)

    def start_adjacency(self, port_id: int,
                        done: Optional[DoneFn] = None) -> None:
        """Bring up an extra attachment to a member; requires an address."""
        if self._ipcp.address is None:
            self._fail(done, "not-enrolled")
            return
        self.start_join(port_id, None, done)

    def _on_connect_reply(self, reply: Optional[RiepMessage], port_id: int,
                          region_hint: Optional[Sequence[int]],
                          done: Optional[DoneFn]) -> None:
        ipcp = self._ipcp
        if reply is None:
            self._fail(done, "timeout")
            return
        if not reply.ok:
            self._fail(done, "denied")
            return
        peer_parts = reply.value.get("address")
        peer_addr = Address(*peer_parts) if peer_parts else None
        if reply.value.get("adjacency"):
            # short handshake: both sides already members
            if peer_addr is not None:
                ipcp.bind_neighbor(port_id, peer_addr)
            self.joins_completed += 1
            if done is not None:
                done(True, "adjacency")
            return
        challenge = reply.value.get("challenge")
        credentials = ipcp.dif.policies.auth.credentials(challenge)
        value = {
            "name": str(ipcp.name),
            "credentials": credentials,
            "region": tuple(region_hint) if region_hint else None,
        }
        self._request_with_retry(
            port_id, lambda: RiepMessage(M_START, obj=AUTH_OBJ, value=value),
            lambda r: self._on_auth_reply(r, port_id, peer_addr, done),
            ipcp.dif.policies.enroll_attempts)

    def _on_auth_reply(self, reply: Optional[RiepMessage], port_id: int,
                       peer_addr: Optional[Address],
                       done: Optional[DoneFn]) -> None:
        ipcp = self._ipcp
        if reply is None:
            self._fail(done, "timeout")
            return
        if not reply.ok:
            self._fail(done, "auth-denied")
            return
        address = Address(*reply.value["address"])
        ipcp.set_address(address)
        ipcp.dif.register_member(address, ipcp)
        ipcp.routing.load_lsdb(reply.value.get("lsdb", []))
        ipcp.directory.load_snapshot(reply.value.get("dir", []))
        if peer_addr is not None:
            ipcp.bind_neighbor(port_id, peer_addr)
        ipcp.directory.announce_all()
        self.joins_completed += 1
        ipcp.tracer.log(ipcp.engine.now, "enrolled",
                        ipcp=str(ipcp.name), address=str(address))
        if done is not None:
            done(True, "enrolled")

    def _fail(self, done: Optional[DoneFn], reason: str) -> None:
        self.joins_failed += 1
        self._ipcp.tracer.count("enrollment.failed")
        if done is not None:
            done(False, reason)

    # ------------------------------------------------------------------
    # Authenticator (member) side
    # ------------------------------------------------------------------
    def handle(self, message: RiepMessage, port_id: int) -> None:
        """Dispatch an inbound enrollment-object message."""
        if message.opcode == M_CONNECT and message.obj == ENROLL_OBJ:
            self._on_connect(message, port_id)
        elif message.opcode == M_START and message.obj == AUTH_OBJ:
            self._on_auth(message, port_id)
        elif message.obj == DEPART_OBJ:
            self._on_depart(message, port_id)

    def _on_connect(self, message: RiepMessage, port_id: int) -> None:
        ipcp = self._ipcp
        if message.value.get("dif") != str(ipcp.dif.name):
            ipcp.send_mgmt_on_port(port_id, message.reply(result=RESULT_DENIED))
            return
        if ipcp.address is None:
            # cannot authenticate joiners before being enrolled ourselves
            ipcp.send_mgmt_on_port(port_id, message.reply(result=RESULT_ERROR))
            return
        joiner_addr_parts = message.value.get("address")
        if joiner_addr_parts:
            # adjacency handshake between two existing members
            peer = Address(*joiner_addr_parts)
            ipcp.bind_neighbor(port_id, peer)
            reply = message.reply(value={"address": ipcp.address.parts,
                                         "adjacency": True})
            ipcp.send_mgmt_on_port(port_id, reply)
            return
        challenge = ipcp.dif.policies.auth.make_challenge()
        region = tuple(message.value.get("region") or ())
        self._pending_auth[port_id] = (message.value.get("name", "?"),
                                       challenge, region)
        reply = message.reply(value={"challenge": challenge,
                                     "address": ipcp.address.parts})
        ipcp.send_mgmt_on_port(port_id, reply)

    def _on_auth(self, message: RiepMessage, port_id: int) -> None:
        ipcp = self._ipcp
        replay = self._completed.get(port_id)
        if replay is not None:
            ipcp.send_mgmt_on_port(port_id, message.reply(value=replay))
            return
        pending = self._pending_auth.pop(port_id, None)
        challenge = pending[1] if pending else None
        region = pending[2] if pending else ()
        presented = message.value.get("credentials")
        if not ipcp.dif.policies.auth.verify(presented, challenge):
            self.joins_denied += 1
            ipcp.dif.enrollments_denied += 1
            ipcp.tracer.count("enrollment.denied")
            ipcp.tracer.log(ipcp.engine.now, "enrollment-denied",
                            member=str(ipcp.name),
                            joiner=message.value.get("name", "?"))
            ipcp.send_mgmt_on_port(port_id, message.reply(result=RESULT_DENIED))
            return
        try:
            address = ipcp.dif.assign_address(region or None)
        except DifError as exc:
            self.joins_denied += 1
            ipcp.send_mgmt_on_port(
                port_id, message.reply(value={"error": str(exc)},
                                       result=RESULT_ERROR))
            return
        self.joins_accepted += 1
        ipcp.dif.enrollments_accepted += 1
        value = {
            "address": address.parts,
            "lsdb": ipcp.routing.sync_lsdb(),
            "dir": ipcp.directory.sync_snapshot(),
        }
        self._completed[port_id] = value
        ipcp.send_mgmt_on_port(port_id, message.reply(value=value))
        ipcp.bind_neighbor(port_id, address)
        ipcp.tracer.log(ipcp.engine.now, "enrollment-accepted",
                        member=str(ipcp.name),
                        joiner=message.value.get("name", "?"),
                        address=str(address))

    # ------------------------------------------------------------------
    # Departure
    # ------------------------------------------------------------------
    def announce_departure(self) -> None:
        """Tell every neighbor this member is leaving (graceful hand-off)."""
        ipcp = self._ipcp
        if ipcp.address is None:
            return
        message = RiepMessage(M_START, obj=DEPART_OBJ,
                              value={"address": ipcp.address.parts})
        for neighbor in ipcp.rmt.neighbors():
            port = ipcp.first_alive_port_to(neighbor)
            if port is not None:
                ipcp.send_mgmt_on_port(port, message)

    def _on_depart(self, message: RiepMessage, port_id: int) -> None:
        ipcp = self._ipcp
        departed = Address(*message.value["address"])
        ipcp.routing.neighbor_down(departed)
        ipcp.directory.forget_origin(departed)
        ipcp.drop_ports_to(departed)
