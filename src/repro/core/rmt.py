"""RMT — the relaying and multiplexing task (§3.2, §4).

Every IPC process has an RMT.  In an end host it multiplexes the flows of
the layer above onto the (N-1) flows below; in a dedicated system (router)
it additionally *relays*: PDUs whose destination address is not this IPCP
are forwarded toward it.  The paper's Fig 4 two-step routing happens here:

1. the forwarding function (installed by routing) maps a destination
   address to a **next-hop node address**;
2. a :class:`PathSelector` policy picks among the (N-1) ports — the
   points of attachment — that reach that next hop.

Multiplexing is policy-driven: each (N-1) port drains its queue through a
pluggable :class:`Scheduler` (FIFO, strict priority, or deficit round
robin), paced at the port's nominal rate so scheduling decisions are
meaningful (experiments E8/A3).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..sim.engine import Engine
from .names import Address
from .pdu import Pdu

ForwardingFn = Callable[[Address], Optional[Address]]
DeliverFn = Callable[[Pdu, int], None]   # (pdu, arrival port id)
DropFn = Callable[[Pdu, str], None]      # (pdu, reason)


# ----------------------------------------------------------------------
# Schedulers (multiplexing policies)
# ----------------------------------------------------------------------
class Scheduler:
    """Queue discipline for one outbound (N-1) port."""

    __slots__ = ()

    def push(self, pdu: Pdu) -> Optional[Pdu]:
        """Enqueue; returns a displaced PDU if one had to be dropped."""
        raise NotImplementedError

    def pop(self) -> Optional[Pdu]:
        """Next PDU to transmit, or None when empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FifoScheduler(Scheduler):
    """Single drop-tail FIFO — the baseline best-effort discipline."""

    __slots__ = ("_queue", "_limit")

    def __init__(self, limit: int = 256) -> None:
        self._queue: Deque[Pdu] = deque()
        self._limit = limit

    def push(self, pdu: Pdu) -> Optional[Pdu]:
        if len(self._queue) >= self._limit:
            return pdu  # tail drop the newcomer
        self._queue.append(pdu)
        return None

    def pop(self) -> Optional[Pdu]:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class PriorityScheduler(Scheduler):
    """Strict priority by ``pdu.priority`` (lower value served first).

    When full, the lowest-priority resident PDU is displaced in favour of a
    higher-priority newcomer.
    """

    __slots__ = ("_queues", "_limit", "_count")

    def __init__(self, limit: int = 256) -> None:
        self._queues: Dict[int, Deque[Pdu]] = {}
        self._limit = limit
        self._count = 0

    def push(self, pdu: Pdu) -> Optional[Pdu]:
        if self._count >= self._limit:
            worst = max(self._queues)
            if pdu.priority >= worst:
                return pdu
            victim = self._queues[worst].pop()
            if not self._queues[worst]:
                del self._queues[worst]
            self._queues.setdefault(pdu.priority, deque()).append(pdu)
            return victim
        self._queues.setdefault(pdu.priority, deque()).append(pdu)
        self._count += 1
        return None

    def pop(self) -> Optional[Pdu]:
        if not self._queues:
            return None
        best = min(self._queues)
        pdu = self._queues[best].popleft()
        if not self._queues[best]:
            del self._queues[best]
        self._count -= 1
        return pdu

    def __len__(self) -> int:
        return self._count


class DrrScheduler(Scheduler):
    """Deficit round robin over priority classes.

    Classes are ``pdu.priority`` values; each gets a quantum proportional to
    its weight (default: equal).  DRR gives bounded unfairness without the
    starvation strict priority can inflict — the trade the A3 ablation
    measures.
    """

    __slots__ = ("_limit", "_quantum", "_weights", "_queues", "_deficits",
                 "_active", "_count")

    def __init__(self, limit: int = 256, quantum: int = 1500,
                 weights: Optional[Dict[int, float]] = None) -> None:
        self._limit = limit
        self._quantum = quantum
        self._weights = weights or {}
        self._queues: Dict[int, Deque[Pdu]] = {}
        self._deficits: Dict[int, float] = {}
        self._active: Deque[int] = deque()   # round-robin order of classes
        self._count = 0

    def push(self, pdu: Pdu) -> Optional[Pdu]:
        if self._count >= self._limit:
            return pdu
        cls = pdu.priority
        if cls not in self._queues:
            self._queues[cls] = deque()
            self._deficits[cls] = 0.0
            self._active.append(cls)
        self._queues[cls].append(pdu)
        self._count += 1
        return None

    def pop(self) -> Optional[Pdu]:
        if self._count == 0:
            return None
        # scan classes round-robin, topping up deficits until one can send
        for _ in range(2 * len(self._active) + 1):
            cls = self._active[0]
            queue = self._queues[cls]
            if not queue:
                self._rotate_out(cls)
                continue
            head = queue[0]
            if self._deficits[cls] >= head.wire_size():
                self._deficits[cls] -= head.wire_size()
                queue.popleft()
                self._count -= 1
                if not queue:
                    self._rotate_out(cls)
                return head
            weight = self._weights.get(cls, 1.0)
            self._deficits[cls] += self._quantum * weight
            self._active.rotate(-1)  # next class's turn
        return None  # pragma: no cover - defensive; quantum always progresses

    def _rotate_out(self, cls: int) -> None:
        self._active.remove(cls)
        del self._queues[cls]
        del self._deficits[cls]

    def __len__(self) -> int:
        return self._count


SCHEDULERS: Dict[str, Callable[..., Scheduler]] = {
    "fifo": FifoScheduler,
    "priority": PriorityScheduler,
    "drr": DrrScheduler,
}


# ----------------------------------------------------------------------
# Path selection (step 2 of two-step routing)
# ----------------------------------------------------------------------
class PathSelector:
    """Chooses one (N-1) port among those reaching the next-hop node."""

    __slots__ = ()

    def select(self, ports: List["RmtPort"], pdu: Pdu) -> Optional["RmtPort"]:
        """The port to use, or None when none is usable."""
        raise NotImplementedError


class PreferFirstAlive(PathSelector):
    """Deterministic primary/backup: first port marked alive wins."""

    __slots__ = ()

    def select(self, ports: List["RmtPort"], pdu: Pdu) -> Optional["RmtPort"]:
        for port in ports:
            if port.alive:
                return port
        return None


class RoundRobinPaths(PathSelector):
    """Spread PDUs across all alive ports in rotation."""

    __slots__ = ("_index",)

    def __init__(self) -> None:
        self._index = 0

    def select(self, ports: List["RmtPort"], pdu: Pdu) -> Optional["RmtPort"]:
        alive = [p for p in ports if p.alive]
        if not alive:
            return None
        port = alive[self._index % len(alive)]
        self._index += 1
        return port


class HashedPaths(PathSelector):
    """Pin each connection to one path (hash of the CEP pair), keeping
    per-flow ordering while balancing flows across paths."""

    __slots__ = ()

    def select(self, ports: List["RmtPort"], pdu: Pdu) -> Optional["RmtPort"]:
        alive = [p for p in ports if p.alive]
        if not alive:
            return None
        src_cep = getattr(pdu, "src_cep", 0)
        dst_cep = getattr(pdu, "dst_cep", 0)
        return alive[hash((src_cep, dst_cep)) % len(alive)]


PATH_SELECTORS: Dict[str, Callable[[], PathSelector]] = {
    "first-alive": PreferFirstAlive,
    "round-robin": RoundRobinPaths,
    "hashed": HashedPaths,
}


# ----------------------------------------------------------------------
# Ports and the RMT proper
# ----------------------------------------------------------------------
class RmtPort:
    """An (N-1) flow as seen by the RMT: a send function, a scheduler, and a
    liveness flag maintained by neighbor monitoring."""

    __slots__ = ("port_id", "send_fn", "scheduler", "nominal_bps",
                 "peer_addr", "alive", "busy", "pdus_out", "pdus_dropped",
                 "bytes_out")

    def __init__(self, port_id: int, send_fn: Callable[[Any, int], bool],
                 scheduler: Scheduler, nominal_bps: Optional[float] = None,
                 peer_addr: Optional[Address] = None) -> None:
        self.port_id = port_id
        self.send_fn = send_fn
        self.scheduler = scheduler
        self.nominal_bps = nominal_bps
        self.peer_addr = peer_addr
        self.alive = True
        self.busy = False
        self.pdus_out = 0
        self.pdus_dropped = 0
        self.bytes_out = 0

    def queue_depth(self) -> int:
        """PDUs waiting in this port's scheduler."""
        return len(self.scheduler)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "dead"
        return f"<RmtPort {self.port_id} peer={self.peer_addr} {state}>"


class Rmt:
    """The relaying-and-multiplexing task of one IPC process."""

    __slots__ = ("_engine", "_local_addr_fn", "_deliver_local",
                 "_scheduler_factory", "_path_selector", "_on_drop",
                 "_forwarding", "_ports", "_neighbor_ports", "pdus_relayed",
                 "pdus_delivered", "pdus_dropped")

    def __init__(self, engine: Engine, local_addr_fn: Callable[[], Optional[Address]],
                 deliver_local: DeliverFn,
                 scheduler_factory: Callable[[], Scheduler] = FifoScheduler,
                 path_selector: Optional[PathSelector] = None,
                 on_drop: Optional[DropFn] = None) -> None:
        self._engine = engine
        self._local_addr_fn = local_addr_fn
        self._deliver_local = deliver_local
        self._scheduler_factory = scheduler_factory
        self._path_selector = path_selector or PreferFirstAlive()
        self._on_drop = on_drop
        self._forwarding: ForwardingFn = lambda addr: None
        self._ports: Dict[int, RmtPort] = {}
        self._neighbor_ports: Dict[Address, List[int]] = {}
        self.pdus_relayed = 0
        self.pdus_delivered = 0
        self.pdus_dropped = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_forwarding(self, fn: ForwardingFn) -> None:
        """Install the next-hop function (routing's output)."""
        self._forwarding = fn

    def set_path_selector(self, selector: PathSelector) -> None:
        """Swap the PoA-selection policy."""
        self._path_selector = selector

    def add_port(self, port_id: int, send_fn: Callable[[Any, int], bool],
                 nominal_bps: Optional[float] = None,
                 peer_addr: Optional[Address] = None) -> RmtPort:
        """Register an (N-1) flow the RMT may transmit on."""
        if port_id in self._ports:
            raise ValueError(f"RMT already has port {port_id}")
        port = RmtPort(port_id, send_fn, self._scheduler_factory(),
                       nominal_bps=nominal_bps, peer_addr=peer_addr)
        self._ports[port_id] = port
        if peer_addr is not None:
            self._neighbor_ports.setdefault(peer_addr, []).append(port_id)
        return port

    def remove_port(self, port_id: int) -> None:
        """Forget an (N-1) flow (deallocated or lost)."""
        port = self._ports.pop(port_id, None)
        if port is None:
            return
        if port.peer_addr is not None:
            ids = self._neighbor_ports.get(port.peer_addr, [])
            if port_id in ids:
                ids.remove(port_id)
            if not ids:
                self._neighbor_ports.pop(port.peer_addr, None)

    def port(self, port_id: int) -> RmtPort:
        """Look up a registered port."""
        return self._ports[port_id]

    def ports_to(self, neighbor: Address) -> List[RmtPort]:
        """All ports attaching to ``neighbor`` (the PoA candidates)."""
        return [self._ports[pid] for pid in self._neighbor_ports.get(neighbor, [])]

    def neighbors(self) -> List[Address]:
        """Neighbor IPCP addresses with at least one registered port."""
        return sorted(self._neighbor_ports)

    def set_peer(self, port_id: int, peer_addr: Address) -> None:
        """Bind a port to its neighbor's address (learned at enrollment)."""
        port = self._ports[port_id]
        if port.peer_addr is not None:
            old = self._neighbor_ports.get(port.peer_addr, [])
            if port_id in old:
                old.remove(port_id)
            if not old:
                self._neighbor_ports.pop(port.peer_addr, None)
        port.peer_addr = peer_addr
        if port_id not in self._neighbor_ports.setdefault(peer_addr, []):
            self._neighbor_ports[peer_addr].append(port_id)

    def set_alive(self, port_id: int, alive: bool) -> None:
        """Neighbor-monitoring verdict for one port."""
        if port_id in self._ports:
            self._ports[port_id].alive = alive

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def submit(self, pdu: Pdu) -> None:
        """Entry point for PDUs, both locally generated and relayed."""
        local = self._local_addr_fn()
        if pdu.dst_addr is None or (local is not None and pdu.dst_addr == local):
            self.pdus_delivered += 1
            self._deliver_local(pdu, -1)
            return
        self._relay(pdu)

    def receive(self, pdu: Pdu, port_id: int) -> None:
        """Entry point for PDUs arriving on an (N-1) port."""
        local = self._local_addr_fn()
        if pdu.dst_addr is None or (local is not None and pdu.dst_addr == local):
            self.pdus_delivered += 1
            self._deliver_local(pdu, port_id)
            return
        pdu.ttl -= 1
        if pdu.ttl <= 0:
            self._drop(pdu, "ttl-expired")
            return
        self.pdus_relayed += 1
        self._relay(pdu)

    def send_on_port(self, port_id: int, pdu: Pdu) -> bool:
        """Transmit on a specific (N-1) port, bypassing forwarding.

        Hop-scoped management traffic (enrollment, flooding, keepalives)
        must reach the adjacent IPCP on a chosen attachment, not be routed.
        """
        port = self._ports.get(port_id)
        if port is None:
            return False
        self._enqueue(port, pdu)
        return True

    def _relay(self, pdu: Pdu) -> None:
        assert pdu.dst_addr is not None
        next_hop = self._forwarding(pdu.dst_addr)
        if next_hop is None:
            self._drop(pdu, "no-route")
            return
        candidates = self.ports_to(next_hop)
        if not candidates:
            self._drop(pdu, "no-port")
            return
        port = self._path_selector.select(candidates, pdu)
        if port is None:
            self._drop(pdu, "all-paths-dead")
            return
        self._enqueue(port, pdu)

    def _enqueue(self, port: RmtPort, pdu: Pdu) -> None:
        if port.nominal_bps is None:
            # unpaced port: hand straight to the (N-1) flow
            size = pdu.wire_size()
            if not port.send_fn(pdu, size):
                port.pdus_dropped += 1
                self._drop(pdu, "lower-layer-refused")
            else:
                port.pdus_out += 1
                port.bytes_out += size
            return
        displaced = port.scheduler.push(pdu)
        if displaced is not None:
            port.pdus_dropped += 1
            self._drop(displaced, "queue-full")
        if not port.busy:
            self._serve(port)

    def _serve(self, port: RmtPort) -> None:
        pdu = port.scheduler.pop()
        if pdu is None:
            port.busy = False
            return
        port.busy = True
        size = pdu.wire_size()
        if port.send_fn(pdu, size):
            port.pdus_out += 1
            port.bytes_out += size
        else:
            port.pdus_dropped += 1
            self._drop(pdu, "lower-layer-refused")
        service_time = size * 8.0 / port.nominal_bps
        self._engine.call_later(service_time, self._serve, port,
                                label="rmt.serve")

    def _drop(self, pdu: Pdu, reason: str) -> None:
        self.pdus_dropped += 1
        if self._on_drop is not None:
            self._on_drop(pdu, reason)

    def queue_depths(self) -> Dict[int, int]:
        """Per-port scheduler occupancy (for congestion experiments)."""
        return {pid: port.queue_depth() for pid, port in self._ports.items()}
