"""Shim DIFs: the degenerate IPC facility over one physical link.

"The IPC layers repeat until the IPC facility is tailored to the physical
medium" (§4).  At the very bottom a DIF degenerates to two IPC processes,
one per link end, whose only job is to present the wire through the same
flow-allocation interface every other DIF presents.  No routing, no
enrollment, no EFCP — the medium *is* the facility.

Frames carry a tiny header (flow id + kind); applications of the shim are
the level-1 IPC processes of the DIF above, registered by name exactly as
at any other layer boundary.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Tuple

from ..sim.engine import Engine
from ..sim.link import CorruptedFrame, LinkEnd
from .flow import Flow
from .names import ApplicationName, DifName, PortId
from .qos import BEST_EFFORT, QosCube

#: Shim framing overhead in bytes (flow id, kind, length).
SHIM_HEADER_BYTES = 8

_KIND_DATA = "data"
_KIND_ALLOC = "alloc"
_KIND_ALLOC_OK = "alloc-ok"
_KIND_ALLOC_ERR = "alloc-err"
_KIND_DEALLOC = "dealloc"

InboundListener = Callable[[Flow], None]


class ShimIpcp:
    """One end of a point-to-point shim DIF.

    Parameters
    ----------
    engine:
        Simulation engine.
    dif_name:
        Name of this shim DIF (one per link, by convention).
    system_name:
        The hosting system's name (diagnostics only).
    link_end:
        The physical attachment this shim drives.
    port_ids:
        System-wide port-id counter shared with other providers.
    """

    def __init__(self, engine: Engine, dif_name: DifName, system_name: str,
                 link_end: LinkEnd,
                 port_ids: Optional[itertools.count] = None) -> None:
        self._engine = engine
        self.dif_name = dif_name
        self.system_name = system_name
        self._end = link_end
        self._end.attach(self._on_frame)
        #: frames the wire damaged in flight, detected and dropped here —
        #: the shim is the DIF boundary where SDU protection would run
        self.frames_corrupted = 0
        self._port_ids = port_ids if port_ids is not None else itertools.count(1)
        # even/odd flow-id split avoids initiator collisions
        self._side = 0 if link_end is link_end.link.ends[0] else 1
        self._flow_ids = itertools.count(2 + self._side, 2)
        self._registered: Dict[ApplicationName, InboundListener] = {}
        self._flows: Dict[int, Flow] = {}          # shim flow id -> Flow
        self._pending: Dict[int, Flow] = {}        # awaiting alloc-ok

    # ------------------------------------------------------------------
    # FlowProvider interface
    # ------------------------------------------------------------------
    @property
    def name(self) -> DifName:
        """The shim DIF's name."""
        return self.dif_name

    @property
    def link_capacity_bps(self) -> float:
        """Raw capacity of the underlying medium."""
        return self._end.link.capacity_bps

    def register_app(self, app: ApplicationName, listener: InboundListener) -> None:
        """Expose ``app`` to flow requests arriving from the peer end."""
        self._registered[app] = listener

    def unregister_app(self, app: ApplicationName) -> None:
        """Remove a registration (pending flows are unaffected)."""
        self._registered.pop(app, None)

    def registered_apps(self) -> Tuple[ApplicationName, ...]:
        """Currently registered application names."""
        return tuple(sorted(self._registered, key=str))

    def allocate_flow(self, src_app: ApplicationName, dst_app: ApplicationName,
                      qos: Optional[QosCube] = None) -> Flow:
        """Request a flow to ``dst_app`` on the peer system.

        The shim offers only best-effort (the wire's native service); any
        requested cube is accepted but EFCP-grade guarantees are the upper
        DIF's job.  The two-frame allocation handshake is retried against
        frame loss on the raw medium.
        """
        flow_id = next(self._flow_ids)
        flow = Flow(PortId(next(self._port_ids)), src_app, dst_app,
                    qos or BEST_EFFORT, self.dif_name)
        flow.provider_bind(
            send_fn=lambda payload, size: self._send_data(flow_id, payload, size),
            dealloc_fn=lambda: self._deallocate(flow_id),
            nominal_bps=self.link_capacity_bps)
        self._pending[flow_id] = flow
        self._alloc_attempt(flow_id, str(src_app), str(dst_app),
                            self.ALLOC_ATTEMPTS)
        return flow

    #: allocation handshake retry policy (raw medium: no delivery guarantee)
    ALLOC_ATTEMPTS = 5
    ALLOC_TIMEOUT = 0.5

    def _alloc_attempt(self, flow_id: int, src_text: str, dst_text: str,
                       attempts_left: int) -> None:
        flow = self._pending.get(flow_id)
        if flow is None:
            return  # answered (ok or err) meanwhile
        if attempts_left <= 0:
            self._pending.pop(flow_id, None)
            flow.provider_failed("alloc-timeout")
            return
        self._send_frame(_KIND_ALLOC, flow_id, (src_text, dst_text), 16)
        self._engine.call_later(
            self.ALLOC_TIMEOUT, self._alloc_attempt, flow_id, src_text,
            dst_text, attempts_left - 1, label="shim.alloc-retry")

    # ------------------------------------------------------------------
    # Wire
    # ------------------------------------------------------------------
    def _send_frame(self, kind: str, flow_id: int, payload: Any,
                    size: int) -> bool:
        return self._end.send((kind, flow_id, payload, size),
                              SHIM_HEADER_BYTES + size)

    def _send_data(self, flow_id: int, payload: Any, size: int) -> bool:
        if flow_id not in self._flows:
            return False
        return self._send_frame(_KIND_DATA, flow_id, payload, size)

    def _deallocate(self, flow_id: int) -> None:
        self._flows.pop(flow_id, None)
        self._pending.pop(flow_id, None)
        self._send_frame(_KIND_DEALLOC, flow_id, None, 0)

    def _on_frame(self, frame: Any, frame_size: int) -> None:
        if isinstance(frame, CorruptedFrame):
            # integrity check fails at the DIF boundary: count and drop,
            # never unpack — whatever rode the frame is simply lost and
            # the layer above recovers by its own policy (EFCP resends)
            self.frames_corrupted += 1
            return
        kind, flow_id, payload, size = frame
        if kind == _KIND_DATA:
            flow = self._flows.get(flow_id)
            if flow is not None:
                flow.provider_deliver(payload, size)
        elif kind == _KIND_ALLOC:
            self._on_alloc(flow_id, payload)
        elif kind == _KIND_ALLOC_OK:
            flow = self._pending.pop(flow_id, None)
            if flow is not None:
                self._flows[flow_id] = flow
                flow.provider_allocated()
        elif kind == _KIND_ALLOC_ERR:
            flow = self._pending.pop(flow_id, None)
            if flow is not None:
                flow.provider_failed(str(payload))
        elif kind == _KIND_DEALLOC:
            flow = self._flows.pop(flow_id, None)
            if flow is not None:
                flow.provider_released()

    def _on_alloc(self, flow_id: int, payload: Tuple[str, str]) -> None:
        if flow_id in self._flows:
            # duplicate ALLOC (our OK was lost): replay the acceptance
            self._send_frame(_KIND_ALLOC_OK, flow_id, None, 0)
            return
        src_text, dst_text = payload
        dst_app = ApplicationName.parse(dst_text)
        listener = self._registered.get(dst_app)
        if listener is None:
            self._send_frame(_KIND_ALLOC_ERR, flow_id, "no-such-app", 12)
            return
        src_app = ApplicationName.parse(src_text)
        flow = Flow(PortId(next(self._port_ids)), dst_app, src_app,
                    BEST_EFFORT, self.dif_name)
        flow.provider_bind(
            send_fn=lambda p, s: self._send_data(flow_id, p, s),
            dealloc_fn=lambda: self._deallocate(flow_id),
            nominal_bps=self.link_capacity_bps)
        self._flows[flow_id] = flow
        self._send_frame(_KIND_ALLOC_OK, flow_id, None, 0)
        flow.provider_allocated()
        listener(flow)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ShimIpcp {self.dif_name} on {self.system_name} flows={len(self._flows)}>"
