"""The IPC process (IPCP): one member of one DIF on one system.

Per §4, an IPCP is three loosely coupled task sets sharing state through
the RIB:

* **IPC Data Transfer** — the RMT (multiplexing, relaying, per-flow data
  transfer) — shortest timescale;
* **IPC Transfer Control** — EFCP instances created per flow by the flow
  allocator — middle timescale;
* **IPC Management** — RIEP messaging binding enrollment, directory,
  routing and flow allocation — longest timescale.

An IPCP is simultaneously an *application of the (N-1) DIFs* beneath it:
its attachments are ordinary flows allocated from lower facilities, added
here as RMT ports.  That dual role is the recursion the whole paper rests
on.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from ..sim.engine import Engine, PeriodicTask
from ..sim.trace import Tracer
from .dif import Dif
from .directory import DifDirectory
from .enrollment import EnrollmentTask
from .flow import Flow
from .flow_allocator import FLOW_OBJ, FlowAllocator
from .names import Address, ApplicationName
from .pdu import KEEPALIVE, ControlPdu, DataPdu, ManagementPdu, Pdu
from .riep import (InvokeTable, M_READ, RESULT_NOT_FOUND, RESULT_OK,
                   RiepMessage)
from .rmt import Rmt
from .routing import LSA_OBJ, LinkStateRouting
from .directory import DIRECTORY_OBJ
from .enrollment import AUTH_OBJ, DEPART_OBJ, ENROLL_OBJ
from .rib import Rib

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .system import System

InboundListener = Callable[[Flow], None]


class Ipcp:
    """One IPC process.  Create via :meth:`repro.core.system.System.create_ipcp`."""

    __slots__ = ("engine", "system_name", "dif", "name", "tracer", "address",
                 "rib", "_port_ids", "invoke_table", "rmt", "routing",
                 "directory", "enrollment", "flow_allocator", "_local_apps",
                 "_lower_flows", "_last_heard", "_keepalive_task",
                 "_refresh_task")

    def __init__(self, engine: Engine, system_name: str, dif: Dif,
                 tracer: Optional[Tracer] = None,
                 port_ids: Optional[itertools.count] = None) -> None:
        self.engine = engine
        self.system_name = system_name
        self.dif = dif
        self.name = dif.name.ipcp_name(system_name)
        self.tracer = tracer if tracer is not None else Tracer()
        self.address: Optional[Address] = None
        self.rib = Rib()
        self._port_ids = port_ids if port_ids is not None else itertools.count(1)
        policies = dif.policies
        self.invoke_table = InvokeTable(engine, policies.mgmt_timeout)
        self.rmt = Rmt(engine, lambda: self.address, self._deliver_local,
                       scheduler_factory=policies.make_scheduler,
                       path_selector=policies.make_path_selector(),
                       on_drop=self._on_rmt_drop)
        self.rmt.set_forwarding(lambda addr: self.routing.next_hop(addr))
        self.routing = LinkStateRouting(
            engine, lambda: self.address, self._flood,
            on_table_change=self._on_table_change,
            spf_delay=policies.spf_delay)
        self.directory = DifDirectory(lambda: self.address, self._flood)
        self.enrollment = EnrollmentTask(self)
        self.flow_allocator = FlowAllocator(self)
        self._local_apps: Dict[ApplicationName, InboundListener] = {}
        self._lower_flows: Dict[int, Flow] = {}
        self._last_heard: Dict[int, float] = {}
        self._keepalive_task = PeriodicTask(
            engine, policies.keepalive_interval, self._keepalive_tick,
            label=f"{self.name}.keepalive")
        self._keepalive_task.start(initial_delay=policies.keepalive_interval / 2)
        # anti-entropy: periodically re-flood own LSA + directory record so
        # state lost on lossy media converges (IS-IS-style refresh)
        self._refresh_task: Optional[PeriodicTask] = None
        if policies.refresh_interval is not None:
            self._refresh_task = PeriodicTask(
                engine, policies.refresh_interval, self._refresh_tick,
                label=f"{self.name}.refresh")
            self._refresh_task.start()

    # ------------------------------------------------------------------
    # Membership / identity
    # ------------------------------------------------------------------
    def set_address(self, address: Address) -> None:
        """Adopt the DIF-internal address assigned at enrollment."""
        self.address = address
        self.rib.write("/ipcp/address", address.parts)

    def bootstrap(self, region_hint: Optional[Sequence[int]] = None) -> Address:
        """Become the initial member of the DIF (§5.1): self-assign."""
        address = self.dif.assign_address(region_hint)
        self.set_address(address)
        self.dif.register_member(address, self)
        self.directory.announce_all()
        self.tracer.log(self.engine.now, "bootstrap",
                        ipcp=str(self.name), address=str(address))
        return address

    @property
    def enrolled(self) -> bool:
        """True once this IPCP holds an address in its DIF."""
        return self.address is not None

    def next_port_id(self) -> int:
        """Allocate a fresh port id at this system's layer boundary."""
        return next(self._port_ids)

    # ------------------------------------------------------------------
    # Local applications (the layer above)
    # ------------------------------------------------------------------
    def register_local_app(self, app: ApplicationName,
                           listener: InboundListener) -> None:
        """Register an application of this DIF at this member."""
        self._local_apps[app] = listener
        self.directory.register(app)

    def unregister_local_app(self, app: ApplicationName) -> None:
        """Remove a local application registration."""
        self._local_apps.pop(app, None)
        self.directory.unregister(app)

    def local_app_listener(self, app: ApplicationName) -> Optional[InboundListener]:
        """Listener for a locally registered application (or None)."""
        return self._local_apps.get(app)

    # ------------------------------------------------------------------
    # Lower flows (the (N-1) attachments)
    # ------------------------------------------------------------------
    def add_lower_flow(self, flow: Flow,
                       peer_addr: Optional[Address] = None) -> int:
        """Adopt an (N-1) flow as an RMT port; returns the port id."""
        port_id = flow.port_id.value
        nominal = flow.nominal_bps if self.dif.policies.pace_ports else None
        self.rmt.add_port(port_id, flow.send, nominal_bps=nominal,
                          peer_addr=peer_addr)
        flow.set_receiver(lambda pdu, size: self._on_lower_pdu(pdu, port_id))
        flow.on_deallocated = lambda _f: self.remove_lower_flow(port_id)
        self._lower_flows[port_id] = flow
        self._last_heard[port_id] = self.engine.now
        return port_id

    def remove_lower_flow(self, port_id: int) -> None:
        """Drop an (N-1) attachment (deallocated or lost)."""
        flow = self._lower_flows.pop(port_id, None)
        self._last_heard.pop(port_id, None)
        if flow is None:
            return
        peer = self.rmt.port(port_id).peer_addr if port_id in self.rmt._ports else None
        self.rmt.remove_port(port_id)
        if peer is not None and not self.rmt.ports_to(peer):
            self.routing.neighbor_down(peer)

    def bind_neighbor(self, port_id: int, peer_addr: Address) -> None:
        """Associate a port with the neighbor reached through it, and bring
        the adjacency into routing."""
        self.rmt.set_peer(port_id, peer_addr)
        self.rmt.set_alive(port_id, True)
        self._last_heard[port_id] = self.engine.now
        self.routing.neighbor_up(peer_addr)

    def drop_ports_to(self, neighbor: Address) -> None:
        """Remove all attachments to a departed neighbor."""
        for port in list(self.rmt.ports_to(neighbor)):
            flow = self._lower_flows.get(port.port_id)
            if flow is not None:
                flow.deallocate()
            self.remove_lower_flow(port.port_id)

    def first_alive_port_to(self, neighbor: Address) -> Optional[int]:
        """Port id of the first usable attachment to ``neighbor``."""
        for port in self.rmt.ports_to(neighbor):
            if port.alive:
                return port.port_id
        return None

    def lower_flow(self, port_id: int) -> Optional[Flow]:
        """The (N-1) flow behind an RMT port."""
        return self._lower_flows.get(port_id)

    def lower_flow_count(self) -> int:
        """Number of (N-1) attachments."""
        return len(self._lower_flows)

    # ------------------------------------------------------------------
    # Management messaging
    # ------------------------------------------------------------------
    def send_mgmt_on_port(self, port_id: int, message: RiepMessage) -> bool:
        """Hop-scoped management send on a specific attachment."""
        pdu = ManagementPdu(self.address, None, message)
        return self.rmt.send_on_port(port_id, pdu)

    def send_mgmt_routed(self, dst_addr: Address, message: RiepMessage) -> None:
        """Management send routed through the DIF to another member."""
        self.rmt.submit(ManagementPdu(self.address, dst_addr, message))

    def send_mgmt_routed_reply(self, dst_addr: Optional[Address],
                               arrival_port: int, message: RiepMessage) -> None:
        """Reply to a management request: routed when the requester's
        address is known, else back out the arrival port."""
        if dst_addr is not None and self.routing.next_hop(dst_addr) is not None:
            self.send_mgmt_routed(dst_addr, message)
        elif arrival_port >= 0:
            self.send_mgmt_on_port(arrival_port, message)
        elif dst_addr is not None:
            self.send_mgmt_routed(dst_addr, message)

    def _flood(self, message: RiepMessage,
               exclude_neighbor: Optional[Address]) -> int:
        """Send a hop-scoped update to every adjacent member, reliably.

        Each per-neighbor copy is acknowledged by the receiving member and
        retransmitted up to ``flood_attempts`` times (the OSPF-LSAck
        mechanism), so flooding converges even over lossy media.
        """
        sent = 0
        for neighbor in self.rmt.neighbors():
            if exclude_neighbor is not None and neighbor == exclude_neighbor:
                continue
            if self._flood_to_neighbor(neighbor, message,
                                       self.dif.policies.flood_attempts):
                sent += 1
                self.tracer.count("mgmt.flooded")
        return sent

    def _flood_to_neighbor(self, neighbor: Address, template: RiepMessage,
                           attempts: int) -> bool:
        port_id = self.first_alive_port_to(neighbor)
        if port_id is None:
            return False
        copy = RiepMessage(template.opcode, obj=template.obj,
                           value=template.value)
        # the payload is shared, so the encoded-size estimate carries over
        # (re-walking a large LSA value per neighbor was a measured cost)
        copy._size_cache = template.estimate_size()

        def on_reply(reply: Optional[RiepMessage]) -> None:
            if reply is None and attempts > 1:
                self.tracer.count("mgmt.flood-retx")
                self._flood_to_neighbor(neighbor, template, attempts - 1)

        self.invoke_table.new_request(
            copy, on_reply, timeout=self.dif.policies.flood_ack_timeout)
        return self.send_mgmt_on_port(port_id, copy)

    # ------------------------------------------------------------------
    # Inbound demultiplexing
    # ------------------------------------------------------------------
    def _on_lower_pdu(self, pdu: Pdu, port_id: int) -> None:
        port = self.rmt._ports.get(port_id)
        if port is None:
            # a flow this IPCP no longer owns — e.g. the peer's half of an
            # attachment discarded by crash().  Nothing may enter the DIF
            # through a ghost port (it would bypass the gate below), and
            # it must not repopulate the liveness table either.
            self.tracer.count("security.ghost-port-pdu")
            return
        self._last_heard[port_id] = self.engine.now
        if not port.alive:
            self._revive_port(port_id)
        # Security gate (§6.1): an attachment whose peer has not completed
        # enrollment may only speak the enrollment protocol.  Everything
        # else — data injection, management spoofing, relaying attempts —
        # is dropped before it touches the DIF.
        if port.peer_addr is None:
            is_enrollment = (isinstance(pdu, ManagementPdu)
                             and pdu.dst_addr is None
                             and pdu.message.obj.startswith(ENROLL_OBJ))
            is_enroll_reply = (isinstance(pdu, ManagementPdu)
                               and pdu.dst_addr is None
                               and pdu.message.opcode.endswith("_R"))
            if not (is_enrollment or is_enroll_reply):
                self.tracer.count("security.unauthenticated-pdu")
                return
        self.rmt.receive(pdu, port_id)

    def _deliver_local(self, pdu: Pdu, port_id: int) -> None:
        if isinstance(pdu, DataPdu):
            self.flow_allocator.handle_data(pdu)
        elif isinstance(pdu, ControlPdu):
            if pdu.kind != KEEPALIVE:
                self.flow_allocator.handle_control(pdu)
        elif isinstance(pdu, ManagementPdu):
            self._on_mgmt(pdu, port_id)

    def _on_mgmt(self, pdu: ManagementPdu, port_id: int) -> None:
        message: RiepMessage = pdu.message
        if message.opcode.endswith("_R") and message.invoke_id:
            self.invoke_table.dispatch_response(message)
            return
        from_neighbor = None
        if port_id >= 0 and port_id in self.rmt._ports:
            from_neighbor = self.rmt._ports[port_id].peer_addr
        obj = message.obj
        if obj == LSA_OBJ and message.opcode != M_READ:
            self._ack_flood(message, port_id)
            self.routing.handle_lsa(message, from_neighbor)
        elif obj == DIRECTORY_OBJ and message.opcode != M_READ:
            self._ack_flood(message, port_id)
            self.directory.handle_update(message, from_neighbor)
        elif obj in (ENROLL_OBJ, AUTH_OBJ, DEPART_OBJ):
            self.enrollment.handle(message, port_id)
        elif obj == FLOW_OBJ:
            self.flow_allocator.handle_request(message, pdu.src_addr, port_id)
        elif message.opcode == M_READ:
            self._serve_rib_read(message, pdu.src_addr, port_id)

    # ------------------------------------------------------------------
    # Remote RIB access (management introspection over RIEP)
    # ------------------------------------------------------------------
    def remote_read(self, dst_addr: Address, obj: str,
                    callback: Callable[[Optional[RiepMessage]], None],
                    timeout: Optional[float] = None) -> None:
        """Read an object from another member's RIB (``M_READ`` routed).

        This is the management task set as the paper frames it: a network
        management application is just another application of the DIF,
        querying Resource Information Bases with RIEP — no SNMP bolted on
        the side.  ``callback`` receives the ``M_READ_R`` (or None on
        timeout).
        """
        message = RiepMessage(M_READ, obj=obj)
        self.invoke_table.new_request(message, callback, timeout=timeout)
        self.send_mgmt_routed(dst_addr, message)

    def _serve_rib_read(self, message: RiepMessage,
                        src_addr: Optional[Address], port_id: int) -> None:
        value = self.rib_snapshot_value(message.obj)
        if value is None:
            reply = message.reply(result=RESULT_NOT_FOUND)
        else:
            reply = message.reply(value=value, result=RESULT_OK)
        self.send_mgmt_routed_reply(src_addr, port_id, reply)

    def rib_snapshot_value(self, obj: str):
        """The value served for a RIB read of ``obj`` (None = not found).

        Live objects are computed on demand; anything else falls back to
        the literal RIB tree.
        """
        if obj == "/ipcp/address":
            return self.address.parts if self.address else None
        if obj == "/ipcp/name":
            return str(self.name)
        if obj == "/routing/table-size":
            return self.routing.table_size()
        if obj == "/routing/table":
            return {str(dst): str(hop)
                    for dst, hop in self.routing.table().items()}
        if obj == "/routing/lsdb-size":
            return self.routing.lsdb_size()
        if obj == "/directory/size":
            return self.directory.size()
        if obj == "/directory/names":
            return sorted(str(name) for name in self.directory.known_names())
        if obj == "/flows/count":
            return self.flow_allocator.active_flow_count()
        if obj == "/flows/committed-bandwidth":
            return self.flow_allocator.committed_bandwidth_bps()
        if obj == "/stats/rmt":
            return {"relayed": self.rmt.pdus_relayed,
                    "delivered": self.rmt.pdus_delivered,
                    "dropped": self.rmt.pdus_dropped}
        if obj == "/neighbors":
            return [str(addr) for addr in self.rmt.neighbors()]
        return self.rib.read_or(obj, None) if self._valid_rib_path(obj) else None

    @staticmethod
    def _valid_rib_path(obj: str) -> bool:
        return bool(obj) and obj.startswith("/") and obj.strip("/")

    def _ack_flood(self, message: RiepMessage, port_id: int) -> None:
        """Hop-by-hop acknowledgement of a flooded update (no value: the
        ack only stops the neighbor's retransmission)."""
        if message.invoke_id and port_id >= 0:
            reply = RiepMessage(message.opcode + "_R", obj=message.obj,
                                invoke_id=message.invoke_id)
            self.send_mgmt_on_port(port_id, reply)

    # ------------------------------------------------------------------
    # Neighbor liveness (keepalives)
    # ------------------------------------------------------------------
    def _keepalive_tick(self) -> None:
        policies = self.dif.policies
        dead_after = policies.keepalive_interval * policies.dead_factor
        now = self.engine.now
        for port_id, flow in list(self._lower_flows.items()):
            port = self.rmt._ports.get(port_id)
            if port is None or port.peer_addr is None:
                continue
            if self.address is not None:
                ka = ControlPdu(self.address, port.peer_addr, KEEPALIVE, 0, 0)
                self.rmt.send_on_port(port_id, ka)
            if port.alive and now - self._last_heard.get(port_id, now) > dead_after:
                self._declare_port_dead(port_id)

    def _refresh_tick(self) -> None:
        if self.address is None:
            return
        self.directory.announce_all()
        self.routing.refresh()

    def _declare_port_dead(self, port_id: int) -> None:
        port = self.rmt._ports.get(port_id)
        if port is None or port.peer_addr is None:
            return
        port.alive = False
        self.tracer.count("neighbor.port-dead")
        self.tracer.log(self.engine.now, "port-dead", ipcp=str(self.name),
                        port=port_id, peer=str(port.peer_addr))
        if not any(p.alive for p in self.rmt.ports_to(port.peer_addr)):
            self.routing.neighbor_down(port.peer_addr)
            self.tracer.log(self.engine.now, "neighbor-down",
                            ipcp=str(self.name), peer=str(port.peer_addr))

    def _revive_port(self, port_id: int) -> None:
        port = self.rmt._ports.get(port_id)
        if port is None:
            return
        had_alive = port.peer_addr is not None and any(
            p.alive for p in self.rmt.ports_to(port.peer_addr))
        port.alive = True
        if port.peer_addr is not None and not had_alive:
            self.routing.neighbor_up(port.peer_addr)
            self.tracer.log(self.engine.now, "neighbor-up",
                            ipcp=str(self.name), peer=str(port.peer_addr))

    # ------------------------------------------------------------------
    # Departure (mobility)
    # ------------------------------------------------------------------
    def leave(self) -> None:
        """Gracefully leave the DIF: announce, drop attachments, forget
        the address (Fig 5: a mobile 'drops its participation' in old DIFs)."""
        self.enrollment.announce_departure()
        if self.address is not None:
            self.dif.remove_member(self.address)
        for port_id in list(self._lower_flows):
            flow = self._lower_flows.get(port_id)
            if flow is not None:
                flow.deallocate()
            self.remove_lower_flow(port_id)
        self.address = None
        self._keepalive_task.stop()

    # ------------------------------------------------------------------
    # Crash / restart (fault injection)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Abrupt failure: lose all DIF state *without* the graceful
        departure announcement of :meth:`leave`.  Neighbors find out the
        hard way — keepalive timeout — exactly as with a real power loss.
        """
        if self.address is not None:
            self.dif.remove_member(self.address)
        # identity and routing state go first: with no address, dropping
        # the attachments below cannot originate LSA withdrawals toward
        # still-reachable neighbors (that would be a graceful departure)
        self.address = None
        self.routing.reset()
        for port_id in list(self._lower_flows):
            self.remove_lower_flow(port_id)
        self._keepalive_task.stop()
        if self._refresh_task is not None:
            self._refresh_task.stop()
        self.tracer.count("ipcp.crash")
        self.tracer.log(self.engine.now, "ipcp-crash", ipcp=str(self.name))

    def restart(self) -> None:
        """Re-arm the periodic machinery after a :meth:`crash`.

        The IPCP comes back unenrolled (no address, empty LSDB); the owner
        must re-enroll it via :meth:`repro.core.system.System.enroll` once
        connectivity is restored.
        """
        policies = self.dif.policies
        if not self._keepalive_task.running:
            self._keepalive_task.start(
                initial_delay=policies.keepalive_interval / 2)
        if self._refresh_task is not None and not self._refresh_task.running:
            self._refresh_task.start()
        self.tracer.log(self.engine.now, "ipcp-restart", ipcp=str(self.name))

    # ------------------------------------------------------------------
    def _on_table_change(self, table: Dict[Address, Address]) -> None:
        self.tracer.sample(f"routing.table_size.{self.name}",
                           self.engine.now, len(table))

    def _on_rmt_drop(self, pdu: Pdu, reason: str) -> None:
        self.tracer.count(f"rmt.drop.{reason}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Ipcp {self.name} addr={self.address} ports={len(self._lower_flows)}>"
