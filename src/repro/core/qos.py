"""QoS cubes — the service classes an IPC facility offers.

An application requests a flow by destination name *and desired properties*
(§3.1).  A :class:`QosCube` bundles those properties; a DIF advertises the
cubes it supports and the flow allocator maps a request onto EFCP and RMT
policies (reliable delivery → retransmission control; low latency → priority
scheduling; etc.).  Resources "could be allocated in many different ways,
including best-effort, DiffServ or IntServ" — cubes are the policy knob.
"""

from __future__ import annotations

from typing import Dict, Optional


class QosCube:
    """A named region of the QoS space a DIF can allocate within.

    Attributes
    ----------
    name:
        Identifier of the cube within a DIF's offering.
    reliable:
        Deliver every SDU (retransmission control on).
    in_order:
        Deliver SDUs in the order submitted.
    max_delay:
        Target one-way delay bound in seconds (None = no bound).  Used by
        the utilization experiment to detect QoS violations.
    avg_bandwidth:
        Requested average bandwidth in bits/s (None = elastic).
    loss_tolerance:
        Acceptable SDU loss fraction for unreliable cubes.
    priority:
        RMT scheduling priority; lower number = served first.
    """

    __slots__ = ("name", "reliable", "in_order", "max_delay", "avg_bandwidth",
                 "loss_tolerance", "priority")

    def __init__(self, name: str, reliable: bool = False, in_order: bool = False,
                 max_delay: Optional[float] = None,
                 avg_bandwidth: Optional[float] = None,
                 loss_tolerance: float = 1.0, priority: int = 8) -> None:
        if reliable and loss_tolerance != 0.0:
            loss_tolerance = 0.0
        if not 0.0 <= loss_tolerance <= 1.0:
            raise ValueError(f"loss tolerance must be in [0,1], got {loss_tolerance}")
        if priority < 0:
            raise ValueError("priority must be non-negative")
        self.name = name
        self.reliable = reliable
        self.in_order = in_order
        self.max_delay = max_delay
        self.avg_bandwidth = avg_bandwidth
        self.loss_tolerance = loss_tolerance
        self.priority = priority

    def compatible_with(self, other: "QosCube") -> bool:
        """True when ``other`` (an offered cube) satisfies this request."""
        if self.reliable and not other.reliable:
            return False
        if self.in_order and not other.in_order:
            return False
        if self.max_delay is not None:
            if other.max_delay is None or other.max_delay > self.max_delay:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, QosCube) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("qos", self.name))

    def __repr__(self) -> str:
        flags = []
        if self.reliable:
            flags.append("reliable")
        if self.in_order:
            flags.append("ordered")
        if self.max_delay is not None:
            flags.append(f"delay<={self.max_delay * 1000:.0f}ms")
        return f"QosCube({self.name}{': ' if flags else ''}{', '.join(flags)})"


#: Unreliable, unordered delivery — the degenerate "current Internet" cube.
BEST_EFFORT = QosCube("best-effort")

#: Reliable in-order delivery — what TCP provides, here one cube among many.
RELIABLE = QosCube("reliable", reliable=True, in_order=True)

#: Unreliable but urgent — served first by priority schedulers.
LOW_LATENCY = QosCube("low-latency", max_delay=0.05, loss_tolerance=0.05,
                      priority=0)

#: Reliable bulk transfer at background priority.
BULK = QosCube("bulk", reliable=True, in_order=True, priority=15)

#: Cubes every DIF offers unless configured otherwise.
DEFAULT_CUBES: Dict[str, QosCube] = {
    cube.name: cube for cube in (BEST_EFFORT, RELIABLE, LOW_LATENCY, BULK)
}


def resolve_cube(requested: Optional[QosCube],
                 offered: Dict[str, QosCube]) -> QosCube:
    """Pick the offered cube satisfying ``requested`` (None → best-effort).

    Exact name match wins; otherwise the first compatible cube in priority
    order.  Raises ``LookupError`` when nothing fits — the flow allocator
    converts that into an allocation failure, as §3.1 requires when desired
    properties cannot be met.
    """
    if requested is None:
        requested = BEST_EFFORT
    exact = offered.get(requested.name)
    if exact is not None:
        return exact
    for cube in sorted(offered.values(), key=lambda c: c.priority):
        if requested.compatible_with(cube):
            return cube
    raise LookupError(f"no offered QoS cube satisfies {requested!r}")
