"""The paper's contribution: a recursive distributed-IPC network architecture.

Public surface of the core package.  The typical call sequence a user (or
our own experiments) follows:

1. build a :class:`~repro.sim.network.Network` topology;
2. wrap nodes in :class:`System` objects and add shims over links
   (:mod:`repro.core.fabric` helpers);
3. declare :class:`Dif` facilities with :class:`DifPolicies`;
4. enroll members (:class:`Orchestrator`), stack DIFs as needed;
5. register applications by :class:`ApplicationName` and allocate flows
   with QoS cubes — then run the engine.
"""

from .addressing import (AddressingPolicy, FlatAddressing, TopologicalAddressing,
                         aggregate_forwarding_table, lookup_aggregated)
from .api import FlowWaiter, MessageFlow
from .auth import (AllowAll, AllowList, AuthPolicy, ChallengeResponse, DenyAll,
                   FlowAccessPolicy, NoAuth, PresharedKey)
from .codec import (CodecError, check_size_consistency, decode, encode,
                    encoded_wire_size, is_wire_data)
from .delimiting import Delimiter, Fragment, Reassembler
from .dif import Dif, DifError, DifPolicies
from .directory import DifDirectory, InterDifDirectory
from .efcp import EfcpConnection, EfcpPolicy
from .enrollment import EnrollmentTask
from .fabric import (FabricError, Orchestrator, add_shims, build_dif_over,
                     make_systems, run_until, shim_between, shim_name_for)
from .flow import Flow, FlowError
from .flow_allocator import FlowAllocator
from .ipcp import Ipcp
from .names import Address, ApplicationName, DifName, PortId
from .pdu import ControlPdu, DataPdu, ManagementPdu, Pdu
from .policy_spec import (PolicySpecError, load_policy_file,
                          policies_from_spec, spec_from_policies)
from .qos import (BEST_EFFORT, BULK, DEFAULT_CUBES, LOW_LATENCY, RELIABLE,
                  QosCube, resolve_cube)
from .rib import Rib, RibError
from .riep import InvokeTable, RiepMessage
from .rmt import (DrrScheduler, FifoScheduler, HashedPaths, PathSelector,
                  PreferFirstAlive, PriorityScheduler, Rmt, RoundRobinPaths,
                  Scheduler)
from .routing import LinkStateRouting, Lsa
from .sdu_protection import SduProtection, SduProtectionError
from .shim import ShimIpcp
from .shim_broadcast import BroadcastShimIpcp
from .system import System

__all__ = [
    "Address", "ApplicationName", "DifName", "PortId",
    "QosCube", "BEST_EFFORT", "RELIABLE", "LOW_LATENCY", "BULK",
    "DEFAULT_CUBES", "resolve_cube",
    "Pdu", "DataPdu", "ControlPdu", "ManagementPdu",
    "CodecError", "encode", "decode", "encoded_wire_size",
    "check_size_consistency", "is_wire_data",
    "EfcpConnection", "EfcpPolicy",
    "Delimiter", "Reassembler", "Fragment",
    "SduProtection", "SduProtectionError",
    "Rib", "RibError", "RiepMessage", "InvokeTable",
    "AuthPolicy", "NoAuth", "PresharedKey", "ChallengeResponse",
    "FlowAccessPolicy", "AllowAll", "DenyAll", "AllowList",
    "AddressingPolicy", "FlatAddressing", "TopologicalAddressing",
    "aggregate_forwarding_table", "lookup_aggregated",
    "Rmt", "Scheduler", "FifoScheduler", "PriorityScheduler", "DrrScheduler",
    "PathSelector", "PreferFirstAlive", "RoundRobinPaths", "HashedPaths",
    "LinkStateRouting", "Lsa",
    "DifDirectory", "InterDifDirectory",
    "Dif", "DifPolicies", "DifError",
    "EnrollmentTask", "FlowAllocator", "Flow", "FlowError",
    "Ipcp", "ShimIpcp", "BroadcastShimIpcp", "System",
    "MessageFlow", "FlowWaiter",
    "PolicySpecError", "policies_from_spec", "spec_from_policies",
    "load_policy_file",
    "Orchestrator", "FabricError", "make_systems", "add_shims",
    "build_dif_over", "run_until", "shim_between", "shim_name_for",
]
