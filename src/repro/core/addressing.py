"""Address assignment policies and route aggregation.

Addresses are assigned at enrollment by the DIF's management (§5.2).  The
paper argues addresses should be *topological* — location-dependent within
the DIF — so that routing operates over a stable structure (§5.3, citing
O'Dell's GSE).  Two policies implement the choice ablated in experiment A1:

* :class:`FlatAddressing` — opaque counters; no structure to exploit.
* :class:`TopologicalAddressing` — a region path prefix (supplied as a hint
  by the joining member's management) plus a per-region counter; forwarding
  tables over such addresses can be aggregated by prefix.

:func:`aggregate_forwarding_table` performs that aggregation: contiguous
regions whose members share a next hop collapse into one prefix entry.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .names import Address


class AddressingError(RuntimeError):
    """Raised when an address cannot be assigned or released."""


class AddressingPolicy:
    """Interface: how a DIF's enrollment authority hands out addresses."""

    def assign(self, region_hint: Optional[Sequence[int]] = None) -> Address:
        """Allocate a fresh address (optionally guided by a region hint)."""
        raise NotImplementedError

    def release(self, address: Address) -> None:
        """Return an address to the pool (default: no reuse)."""

    def describe(self) -> str:
        """Short policy name for DESIGN/EXPERIMENTS tables."""
        raise NotImplementedError


class FlatAddressing(AddressingPolicy):
    """Sequential single-component addresses; ignores region hints."""

    def __init__(self, start: int = 1) -> None:
        if start < 0:
            raise ValueError("start must be non-negative")
        self._next = start
        self._released: List[int] = []

    def assign(self, region_hint: Optional[Sequence[int]] = None) -> Address:
        if self._released:
            return Address(self._released.pop())
        value = self._next
        self._next += 1
        return Address(value)

    def release(self, address: Address) -> None:
        if len(address) != 1:
            raise AddressingError(f"not a flat address: {address!r}")
        self._released.append(address.parts[0])

    def describe(self) -> str:
        return "flat"


class TopologicalAddressing(AddressingPolicy):
    """Region-prefixed addresses: (region path..., member counter).

    The joining member supplies its region path (e.g. which access network
    or ISP PoP it attaches under); members in the same region share the
    prefix, so routes to a whole region aggregate to one entry.
    """

    def __init__(self, default_region: Tuple[int, ...] = (0,)) -> None:
        self._default_region = tuple(default_region)
        self._counters: Dict[Tuple[int, ...], int] = {}

    def assign(self, region_hint: Optional[Sequence[int]] = None) -> Address:
        region = tuple(region_hint) if region_hint else self._default_region
        counter = self._counters.get(region, 1)
        self._counters[region] = counter + 1
        return Address(*region, counter)

    def release(self, address: Address) -> None:
        # counters are not rewound; address reuse within a region is unsafe
        # while routing state may still reference the old holder.
        return

    def describe(self) -> str:
        return "topological"


def aggregate_forwarding_table(
        table: Dict[Address, Hashable]) -> List[Tuple[Tuple[int, ...], Hashable]]:
    """Collapse a (destination address → next hop) map into prefix entries.

    Builds a trie over address components and merges every subtree whose
    leaves all share one next hop into a single ``(prefix, next_hop)``
    entry.  With flat addresses nothing merges (each address is its own
    1-component prefix), so the entry count equals the table size — which is
    exactly the contrast experiment A1 measures.

    Longest-prefix lookup over the result is provided by
    :func:`lookup_aggregated`.
    """
    root: dict = {}
    LEAF = object()
    for address, next_hop in table.items():
        node = root
        for part in address.parts:
            node = node.setdefault(part, {})
        node[LEAF] = next_hop

    def leaf_hops(node: dict) -> Dict[Hashable, int]:
        """Histogram of next hops among the leaves of a subtree."""
        counts: Dict[Hashable, int] = {}
        if LEAF in node:
            counts[node[LEAF]] = counts.get(node[LEAF], 0) + 1
        for part, child in node.items():
            if part is LEAF:
                continue
            for hop, count in leaf_hops(child).items():
                counts[hop] = counts.get(hop, 0) + count
        return counts

    entries: List[Tuple[Tuple[int, ...], Hashable]] = []
    NO_COVER = object()

    def emit(node: dict, prefix: Tuple[int, ...], inherited: Hashable) -> None:
        counts = leaf_hops(node)
        if len(counts) == 1:
            hop = next(iter(counts))
            if hop != inherited:
                entries.append((prefix, hop))
            return
        # mixed subtree: install a covering route for the most common hop
        # and let longer prefixes override it (longest-prefix semantics).
        # An exact leaf at this node shares the prefix, so it must BE the
        # covering value to stay unambiguous.
        if LEAF in node:
            covering = node[LEAF]
        else:
            covering = max(counts.items(), key=lambda kv: (kv[1],))[0]
        if covering != inherited:
            entries.append((prefix, covering))
        for part, child in node.items():
            if part is LEAF:
                continue
            emit(child, prefix + (part,), covering)

    if table:
        emit(root, (), NO_COVER)
    return sorted(entries, key=lambda e: (len(e[0]), e[0]))


def lookup_aggregated(entries: Sequence[Tuple[Tuple[int, ...], Hashable]],
                      address: Address) -> Optional[Hashable]:
    """Longest-prefix match of ``address`` against aggregated entries."""
    best_len = -1
    best_hop: Optional[Hashable] = None
    for prefix, hop in entries:
        if len(prefix) > best_len and address.matches_prefix(prefix):
            best_len = len(prefix)
            best_hop = hop
    return best_hop
