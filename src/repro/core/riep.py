"""RIEP — the Resource Information Exchange Protocol.

The paper (§3.1) requires "a protocol for managing distributed IPC (routing,
security and other management tasks)" that populates the RIB.  RIEP here is
a CDAP-style object protocol: six operations on named RIB objects plus a
connect/authenticate exchange used by enrollment.  Every management
conversation in the architecture — enrollment, directory dissemination,
link-state flooding, flow allocation — is a sequence of RIEP messages, so
the wire vocabulary of the whole management plane lives in this module.

:class:`RiepMessage` is the unit carried by a
:class:`~repro.core.pdu.ManagementPdu`.  :class:`InvokeTable` provides
request/response matching with timeouts for the handful of RPC-like
exchanges (enrollment, flow allocation).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional

from ..sim.engine import Engine

# Operation codes (the CDAP verbs the paper's reference model uses).
M_CONNECT = "M_CONNECT"      # start an application/management connection
M_CONNECT_R = "M_CONNECT_R"  # response (carries auth result)
M_RELEASE = "M_RELEASE"      # end a management connection
M_CREATE = "M_CREATE"        # create a RIB object at the peer
M_CREATE_R = "M_CREATE_R"
M_DELETE = "M_DELETE"
M_DELETE_R = "M_DELETE_R"
M_READ = "M_READ"
M_READ_R = "M_READ_R"
M_WRITE = "M_WRITE"
M_WRITE_R = "M_WRITE_R"
M_START = "M_START"          # start a task/flow at the peer
M_START_R = "M_START_R"
M_STOP = "M_STOP"
M_STOP_R = "M_STOP_R"

RESULT_OK = 0
RESULT_ERROR = 1
RESULT_DENIED = 2
RESULT_NOT_FOUND = 3

_RESPONSES = {
    M_CONNECT: M_CONNECT_R, M_CREATE: M_CREATE_R, M_DELETE: M_DELETE_R,
    M_READ: M_READ_R, M_WRITE: M_WRITE_R, M_START: M_START_R, M_STOP: M_STOP_R,
}


def response_opcode(opcode: str) -> str:
    """The reply opcode paired with a request opcode."""
    try:
        return _RESPONSES[opcode]
    except KeyError:
        raise ValueError(f"{opcode} has no response form")


class RiepMessage:
    """One RIEP message.

    Attributes
    ----------
    opcode:
        One of the ``M_*`` constants.
    obj:
        RIB object path the operation applies to (e.g. ``/routing/lsa/3``).
    value:
        Payload for the operation (dict/str/numbers; kept JSON-like).
    invoke_id:
        Correlates a response with its request; 0 = unsolicited.
    result:
        ``RESULT_*`` code, meaningful on ``*_R`` messages.
    """

    __slots__ = ("opcode", "obj", "value", "invoke_id", "result",
                 "_size_cache")

    def __init__(self, opcode: str, obj: str = "", value: Any = None,
                 invoke_id: int = 0, result: int = RESULT_OK) -> None:
        self.opcode = opcode
        self.obj = obj
        self.value = value
        self.invoke_id = invoke_id
        self.result = result
        self._size_cache: Optional[int] = None

    def reply(self, value: Any = None, result: int = RESULT_OK) -> "RiepMessage":
        """Build the response message for this request."""
        return RiepMessage(response_opcode(self.opcode), obj=self.obj,
                           value=value, invoke_id=self.invoke_id, result=result)

    def estimate_size(self) -> int:
        """Approximate encoded size in bytes (for link serialization).

        The estimate is cached: a message's payload must not be mutated
        after it is first handed to a PDU (flooding re-reads the size at
        every hop, and the recursive walk over a large LSA value was a
        measured hot spot at thousand-member scale).
        """
        if self._size_cache is None:
            body = len(self.opcode) + len(self.obj) + 12
            if self.value is not None:
                body += _estimate_value_size(self.value)
            self._size_cache = body
        return self._size_cache

    def encode(self) -> tuple:
        """Pure-data wire form (tagged tuple; carries the size
        estimate so a decoded copy charges links identically)."""
        from .codec import encode
        return encode(self)

    @staticmethod
    def decode(data: tuple) -> "RiepMessage":
        """Rebuild a message from its wire form."""
        from .codec import decode
        message = decode(data)
        if not isinstance(message, RiepMessage):
            raise TypeError(f"wire data decodes to "
                            f"{type(message).__name__}, not a RiepMessage")
        return message

    @property
    def ok(self) -> bool:
        """True for successful responses."""
        return self.result == RESULT_OK

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RIEP {self.opcode} {self.obj} id={self.invoke_id} r={self.result}>"


def _estimate_value_size(value: Any) -> int:
    """Rough, deterministic encoded-size estimate for JSON-like values."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 2 + sum(_estimate_value_size(v) for v in value)
    if isinstance(value, dict):
        return 2 + sum(_estimate_value_size(k) + _estimate_value_size(v)
                       for k, v in value.items())
    # arbitrary objects: charge a flat record
    return 32


ResponseHandler = Callable[[Optional[RiepMessage]], None]


class InvokeTable:
    """Pending-request table: allocates invoke-ids, matches responses,
    and times out requests (handler receives ``None`` on timeout)."""

    def __init__(self, engine: Engine, default_timeout: float = 5.0) -> None:
        self._engine = engine
        self._default_timeout = default_timeout
        self._ids = itertools.count(1)
        self._pending: Dict[int, tuple] = {}

    def new_request(self, message: RiepMessage, handler: ResponseHandler,
                    timeout: Optional[float] = None) -> RiepMessage:
        """Assign an invoke-id to ``message`` and register ``handler``."""
        invoke_id = next(self._ids)
        message.invoke_id = invoke_id
        delay = self._default_timeout if timeout is None else timeout
        # one raw engine event instead of a Timer wrapper: requests are
        # made (and almost always answered, cancelling the event) for
        # every flooded management message — the hottest timer site
        event = self._engine.call_later(delay, self._timeout, invoke_id,
                                        label="riep.invoke")
        self._pending[invoke_id] = (handler, event)
        return message

    def dispatch_response(self, message: RiepMessage) -> bool:
        """Route a ``*_R`` message to its waiting handler; False if stale."""
        entry = self._pending.pop(message.invoke_id, None)
        if entry is None:
            return False
        handler, event = entry
        event.cancel()
        handler(message)
        return True

    def pending_count(self) -> int:
        """Number of requests still awaiting a response."""
        return len(self._pending)

    def _timeout(self, invoke_id: int) -> None:
        entry = self._pending.pop(invoke_id, None)
        if entry is None:
            return
        handler, _timer = entry
        handler(None)
