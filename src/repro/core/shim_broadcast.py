"""Multi-access shim: a rank-0 DIF over a shared broadcast medium.

Where the point-to-point shim has exactly two members, a wireless cell or
LAN segment has many.  This shim gives every attached system the same
flow-provider interface (`register_app` / `allocate_flow`) over a
:class:`~repro.sim.broadcast.BroadcastMedium`:

* flow allocation broadcasts a WHO-HAS request naming the destination
  application; the endpoint where it is registered answers, and the two
  endpoints exchange unicast-addressed frames thereafter (the shim's
  "addresses" are medium attachment indexes — private to this rank-0
  facility, invisible above, exactly as §3.2 requires of any DIF);
* every frame carries (src endpoint, dst endpoint); others ignore it —
  the degenerate relaying of a single-segment facility.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Tuple

from ..sim.broadcast import BroadcastEndpoint
from ..sim.engine import Engine
from .flow import Flow
from .names import ApplicationName, DifName, PortId
from .qos import BEST_EFFORT, QosCube

#: broadcast-shim framing overhead (src/dst endpoint, flow id, kind, length)
BSHIM_HEADER_BYTES = 10

_BCAST = -1
_KIND_WHOHAS = "who-has"
_KIND_OFFER = "offer"
_KIND_DATA = "data"
_KIND_DEALLOC = "dealloc"

InboundListener = Callable[[Flow], None]


class BroadcastShimIpcp:
    """One system's member of a multi-access shim DIF."""

    ALLOC_ATTEMPTS = 5
    ALLOC_TIMEOUT = 0.5

    def __init__(self, engine: Engine, dif_name: DifName, system_name: str,
                 endpoint: BroadcastEndpoint,
                 port_ids: Optional[itertools.count] = None) -> None:
        self._engine = engine
        self.dif_name = dif_name
        self.system_name = system_name
        self._endpoint = endpoint
        endpoint.attach(self._on_frame)
        self._port_ids = port_ids if port_ids is not None else itertools.count(1)
        self._flow_seq = itertools.count(1)
        self._registered: Dict[ApplicationName, InboundListener] = {}
        # flow key = (initiator endpoint, flow seq); unique medium-wide
        self._flows: Dict[Tuple[int, int], Tuple[Flow, int]] = {}  # -> (flow, peer endpoint)
        self._pending: Dict[Tuple[int, int], Flow] = {}

    # ------------------------------------------------------------------
    # FlowProvider interface
    # ------------------------------------------------------------------
    @property
    def name(self) -> DifName:
        """The shim DIF's name."""
        return self.dif_name

    @property
    def medium_capacity_bps(self) -> float:
        """Raw capacity of the shared channel."""
        return self._endpoint._medium.capacity_bps

    def register_app(self, app: ApplicationName,
                     listener: InboundListener) -> None:
        """Expose ``app`` to WHO-HAS requests on the medium."""
        self._registered[app] = listener

    def unregister_app(self, app: ApplicationName) -> None:
        """Remove a registration."""
        self._registered.pop(app, None)

    def allocate_flow(self, src_app: ApplicationName, dst_app: ApplicationName,
                      qos: Optional[QosCube] = None) -> Flow:
        """Find ``dst_app`` somewhere on the segment and open a flow to it."""
        key = (self._endpoint.index, next(self._flow_seq))
        flow = Flow(PortId(next(self._port_ids)), src_app, dst_app,
                    qos or BEST_EFFORT, self.dif_name)
        self._pending[key] = flow
        self._alloc_attempt(key, str(src_app), str(dst_app),
                            self.ALLOC_ATTEMPTS)
        return flow

    def _alloc_attempt(self, key: Tuple[int, int], src_text: str,
                       dst_text: str, attempts_left: int) -> None:
        flow = self._pending.get(key)
        if flow is None:
            return
        if attempts_left <= 0:
            self._pending.pop(key, None)
            flow.provider_failed("no-such-app")
            return
        self._send(_BCAST, _KIND_WHOHAS, key, (src_text, dst_text), 16)
        self._engine.call_later(self.ALLOC_TIMEOUT, self._alloc_attempt, key,
                                src_text, dst_text, attempts_left - 1,
                                label="bshim.alloc-retry")

    # ------------------------------------------------------------------
    # Wire
    # ------------------------------------------------------------------
    def _send(self, dst: int, kind: str, key: Tuple[int, int], payload: Any,
              size: int) -> bool:
        frame = (self._endpoint.index, dst, kind, key, payload, size)
        return self._endpoint.send(frame, BSHIM_HEADER_BYTES + size)

    def _bind(self, key: Tuple[int, int], flow: Flow, peer: int) -> None:
        self._flows[key] = (flow, peer)
        flow.provider_bind(
            send_fn=lambda payload, size, k=key: self._send_data(k, payload,
                                                                 size),
            dealloc_fn=lambda k=key: self._deallocate(k),
            nominal_bps=self.medium_capacity_bps)

    def _send_data(self, key: Tuple[int, int], payload: Any,
                   size: int) -> bool:
        entry = self._flows.get(key)
        if entry is None:
            return False
        _flow, peer = entry
        return self._send(peer, _KIND_DATA, key, payload, size)

    def _deallocate(self, key: Tuple[int, int]) -> None:
        entry = self._flows.pop(key, None)
        self._pending.pop(key, None)
        if entry is not None:
            self._send(entry[1], _KIND_DEALLOC, key, None, 0)

    def _on_frame(self, frame: Any, frame_size: int) -> None:
        src, dst, kind, key, payload, size = frame
        if dst not in (_BCAST, self._endpoint.index):
            return  # not for us: the degenerate relaying decision
        if kind == _KIND_WHOHAS:
            self._on_whohas(src, key, payload)
        elif kind == _KIND_OFFER:
            self._on_offer(src, key)
        elif kind == _KIND_DATA:
            entry = self._flows.get(key)
            if entry is not None:
                entry[0].provider_deliver(payload, size)
        elif kind == _KIND_DEALLOC:
            entry = self._flows.pop(key, None)
            if entry is not None:
                entry[0].provider_released()

    def _on_whohas(self, src: int, key: Tuple[int, int],
                   payload: Tuple[str, str]) -> None:
        src_text, dst_text = payload
        dst_app = ApplicationName.parse(dst_text)
        listener = self._registered.get(dst_app)
        if listener is None:
            return  # silence; the requester retries then gives up
        if key in self._flows:
            # duplicate WHO-HAS (our offer was lost): re-offer
            self._send(src, _KIND_OFFER, key, None, 0)
            return
        flow = Flow(PortId(next(self._port_ids)), dst_app,
                    ApplicationName.parse(src_text), BEST_EFFORT,
                    self.dif_name)
        self._bind(key, flow, src)
        self._send(src, _KIND_OFFER, key, None, 0)
        flow.provider_allocated()
        listener(flow)

    def _on_offer(self, src: int, key: Tuple[int, int]) -> None:
        flow = self._pending.pop(key, None)
        if flow is None:
            return
        self._bind(key, flow, src)
        flow.provider_allocated()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<BroadcastShimIpcp {self.dif_name} on {self.system_name} "
                f"flows={len(self._flows)}>")
