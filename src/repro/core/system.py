"""The system: a host or router participating in IPC facilities.

A :class:`System` owns the IPC manager role of §3.1 for one chassis:

* it holds one :class:`~repro.core.shim.ShimIpcp` per physical interface
  (rank-0 facilities tailored to each medium);
* it holds one :class:`~repro.core.ipcp.Ipcp` per DIF the system is a
  member of — "any system that has multiple interfaces would have a
  separate IPC process for each interface [...] and a higher-level IPC
  process that performs not only multiplexing but also a relaying
  function" (§3.2);
* it exposes the application API: ``register_app`` and ``allocate_flow``
  by destination application *name* — applications never see addresses.

The system also orchestrates the recursion: enrolling an IPCP means
allocating a flow *from a lower provider* to an existing member's IPCP
name, then running the enrollment protocol over it.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..sim.engine import Engine
from ..sim.node import Interface, Node
from ..sim.trace import Tracer
from .dif import Dif
from .directory import InterDifDirectory
from .flow import Flow
from .ipcp import Ipcp
from .names import ApplicationName, DifName, PortId
from .qos import QosCube
from .shim import ShimIpcp

InboundListener = Callable[[Flow], None]
Provider = Union[ShimIpcp, "_IpcpProvider"]


class SystemError_(RuntimeError):
    """Raised for system-level misconfiguration (name chosen to avoid
    shadowing the builtin ``SystemError``)."""


class _IpcpProvider:
    """Adapter presenting an :class:`Ipcp` through the provider interface
    (register/allocate), so DIFs stack on DIFs exactly as on shims."""

    def __init__(self, ipcp: Ipcp, port_ids: itertools.count) -> None:
        self._ipcp = ipcp
        self._port_ids = port_ids

    @property
    def name(self) -> DifName:
        return self._ipcp.dif.name

    @property
    def ipcp(self) -> Ipcp:
        return self._ipcp

    def register_app(self, app: ApplicationName, listener: InboundListener) -> None:
        self._ipcp.register_local_app(app, listener)

    def unregister_app(self, app: ApplicationName) -> None:
        self._ipcp.unregister_local_app(app)

    def allocate_flow(self, src_app: ApplicationName, dst_app: ApplicationName,
                      qos: Optional[QosCube] = None) -> Flow:
        flow = Flow(PortId(next(self._port_ids)), src_app, dst_app,
                    qos or self._ipcp.dif.policies.qos_cubes.get("best-effort"),
                    self._ipcp.dif.name)
        # allocation proceeds asynchronously through the flow allocator
        self._ipcp.engine.call_soon(self._ipcp.flow_allocator.allocate, flow,
                                    label="fa.allocate")
        return flow


class System:
    """One participating system (host or router)."""

    def __init__(self, node: Node, idd: Optional[InterDifDirectory] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.node = node
        self.engine: Engine = node.engine
        self.name = node.name
        self.idd = idd if idd is not None else InterDifDirectory()
        self.tracer = tracer if tracer is not None else Tracer()
        self._port_ids = itertools.count(1)
        self._providers: Dict[DifName, Provider] = {}
        self._ipcps: Dict[DifName, Ipcp] = {}
        self._app_listeners: Dict[ApplicationName, InboundListener] = {}

    # ------------------------------------------------------------------
    # Facilities
    # ------------------------------------------------------------------
    def add_shim(self, interface: Interface,
                 dif_name: Optional[str] = None) -> ShimIpcp:
        """Create the rank-0 shim facility over one physical interface."""
        if dif_name is None:
            dif_name = f"shim:{interface.link.name}"
        name = DifName(dif_name)
        if name in self._providers:
            raise SystemError_(f"{self.name} already joined {name}")
        shim = ShimIpcp(self.engine, name, self.name, interface.end,
                        port_ids=self._port_ids)
        self._providers[name] = shim
        return shim

    def add_broadcast_shim(self, endpoint, dif_name: str):
        """Join a rank-0 multi-access facility over a shared medium
        (:class:`~repro.sim.broadcast.BroadcastMedium` endpoint)."""
        from .shim_broadcast import BroadcastShimIpcp
        name = DifName(dif_name)
        if name in self._providers:
            raise SystemError_(f"{self.name} already joined {name}")
        shim = BroadcastShimIpcp(self.engine, name, self.name, endpoint,
                                 port_ids=self._port_ids)
        self._providers[name] = shim
        return shim

    def attach_provider(self, provider: Provider) -> None:
        """Adopt an externally built flow provider (e.g. a live-traffic
        socket shim) as one of this system's facilities.

        Anything already registered through :meth:`register_app` is
        re-registered on the new provider, so an application serving the
        simulated stack serves a freshly accepted socket connection with
        no extra wiring — the gateway's per-connection registration seam.
        """
        name = provider.name
        if name in self._providers:
            raise SystemError_(f"{self.name} already joined {name}")
        self._providers[name] = provider
        for app, listener in self._app_listeners.items():
            provider.register_app(app, listener)

    def detach_provider(self, dif_name: str) -> None:
        """Forget a facility attached via :meth:`attach_provider` (e.g.
        when its socket connection closes).  Unknown names are ignored —
        teardown must be idempotent."""
        self._providers.pop(DifName(dif_name), None)

    @property
    def port_id_counter(self) -> itertools.count:
        """The system-wide port-id allocator, for externally built
        providers that must share this system's port-id space."""
        return self._port_ids

    def create_ipcp(self, dif: Dif) -> Ipcp:
        """Instantiate this system's IPC process for ``dif`` (not yet
        enrolled) and expose it as a provider for higher layers."""
        if dif.name in self._providers:
            raise SystemError_(f"{self.name} already has an IPCP in {dif.name}")
        ipcp = Ipcp(self.engine, self.name, dif, tracer=self.tracer,
                    port_ids=self._port_ids)
        self._ipcps[dif.name] = ipcp
        self._providers[dif.name] = _IpcpProvider(ipcp, self._port_ids)
        return ipcp

    def ipcp(self, dif_name: str) -> Ipcp:
        """This system's IPCP in the named DIF."""
        return self._ipcps[DifName(dif_name)]

    def provider(self, dif_name: str) -> Provider:
        """The flow provider (shim or IPCP) for the named facility."""
        return self._providers[DifName(dif_name)]

    def provider_names(self) -> List[DifName]:
        """Facilities this system can allocate flows from."""
        return sorted(self._providers, key=str)

    # ------------------------------------------------------------------
    # Recursion plumbing: enrollment and adjacency over lower facilities
    # ------------------------------------------------------------------
    def publish_ipcp(self, dif_name: str, lower_dif: str) -> None:
        """Register the IPCP of ``dif_name`` as an application of
        ``lower_dif`` so peers can reach it to enroll or attach."""
        ipcp = self.ipcp(dif_name)
        lower = self._providers[DifName(lower_dif)]
        lower.register_app(
            ipcp.name,
            lambda flow: self._accept_lower_flow(ipcp, flow))

    def _accept_lower_flow(self, ipcp: Ipcp, flow: Flow) -> None:
        """Destination-side: adopt an inbound (N-1) flow as an RMT port."""
        ipcp.add_lower_flow(flow)

    def enroll(self, dif_name: str, member_app: ApplicationName,
               lower_dif: str, region_hint: Optional[Sequence[int]] = None,
               done: Optional[Callable[[bool, str], None]] = None) -> None:
        """Join ``dif_name`` via ``member_app`` reachable over ``lower_dif``.

        Allocates the (N-1) flow, then runs the §5.2 enrollment exchange.
        Completion is signalled through ``done(ok, reason)``.
        """
        ipcp = self.ipcp(dif_name)
        lower = self._providers[DifName(lower_dif)]
        flow = lower.allocate_flow(ipcp.name, member_app,
                                   qos=ipcp.dif.policies.lower_flow_cube)

        def on_allocated(f: Flow) -> None:
            port_id = ipcp.add_lower_flow(f)
            ipcp.enrollment.start_join(port_id, region_hint, done)

        def on_failed(_f: Flow, reason: str) -> None:
            if done is not None:
                done(False, f"lower-flow: {reason}")

        flow.on_allocated = on_allocated
        flow.on_failed = on_failed

    def connect_neighbor(self, dif_name: str, member_app: ApplicationName,
                         lower_dif: str,
                         done: Optional[Callable[[bool, str], None]] = None) -> None:
        """Bring up an additional attachment (multihoming/handover path)
        from this system's enrolled IPCP to another member."""
        ipcp = self.ipcp(dif_name)
        lower = self._providers[DifName(lower_dif)]
        flow = lower.allocate_flow(ipcp.name, member_app,
                                   qos=ipcp.dif.policies.lower_flow_cube)

        def on_allocated(f: Flow) -> None:
            port_id = ipcp.add_lower_flow(f)
            ipcp.enrollment.start_adjacency(port_id, done)

        def on_failed(_f: Flow, reason: str) -> None:
            if done is not None:
                done(False, f"lower-flow: {reason}")

        flow.on_allocated = on_allocated
        flow.on_failed = on_failed

    # ------------------------------------------------------------------
    # Application API (§3.1): names in, port ids out
    # ------------------------------------------------------------------
    def register_app(self, app: ApplicationName, listener: InboundListener,
                     dif_names: Optional[Sequence[str]] = None) -> None:
        """Register an application on this system.

        The application becomes reachable through the named DIFs (default:
        every non-shim DIF this system is a member of) and is recorded in
        the inter-DIF directory.
        """
        self._app_listeners[app] = listener
        targets = ([DifName(n) for n in dif_names] if dif_names is not None
                   else list(self._ipcps))
        for dif_name in targets:
            provider = self._providers[dif_name]
            provider.register_app(app, listener)
            self.idd.register(app, dif_name)

    def unregister_app(self, app: ApplicationName,
                       dif_names: Optional[Sequence[str]] = None) -> None:
        """Withdraw an application registration."""
        self._app_listeners.pop(app, None)
        targets = ([DifName(n) for n in dif_names] if dif_names is not None
                   else list(self._ipcps))
        for dif_name in targets:
            provider = self._providers.get(dif_name)
            if provider is not None:
                provider.unregister_app(app)
            self.idd.unregister(app, dif_name)

    def allocate_flow(self, src_app: ApplicationName, dst_app: ApplicationName,
                      qos: Optional[QosCube] = None,
                      dif_name: Optional[str] = None) -> Flow:
        """Allocate a flow to ``dst_app`` by name (§3.1).

        The IPC manager chooses the facility: an explicit ``dif_name``, or
        the first inter-DIF-directory candidate this system is a member of.
        """
        if dif_name is not None:
            provider = self._providers.get(DifName(dif_name))
            if provider is None:
                raise SystemError_(f"{self.name} is not in DIF {dif_name!r}")
            return provider.allocate_flow(src_app, dst_app, qos)
        for candidate in self.idd.candidates(dst_app):
            provider = self._providers.get(candidate)
            if provider is not None:
                return provider.allocate_flow(src_app, dst_app, qos)
        # no known facility: fail the flow synchronously but uniformly
        flow = Flow(PortId(next(self._port_ids)), src_app, dst_app,
                    qos or QosCube("best-effort"), DifName("unknown"))
        self.engine.call_soon(flow.provider_failed, "no-common-dif",
                              label="fa.fail")
        return flow

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<System {self.name} difs={sorted(str(n) for n in self._ipcps)} "
                f"shims={len(self._providers) - len(self._ipcps)}>")
