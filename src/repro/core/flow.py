"""The flow: what an IPC facility hands its user.

Allocation returns a :class:`Flow` — a port id plus send/receive on an
agreed QoS — and nothing else.  The user (an application, or the IPC
process of a higher DIF, which is the same thing) never sees addresses,
routes, or the facility's internals (§3.1).

A Flow is provider-agnostic: shim DIFs over raw links and full DIFs with
EFCP both hand out the same object, which is what lets DIFs stack
uniformly.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .names import ApplicationName, DifName, PortId
from .qos import QosCube

ReceiverFn = Callable[[Any, int], None]

PENDING = "pending"
ALLOCATED = "allocated"
FAILED = "failed"
DEALLOCATED = "deallocated"


class FlowError(RuntimeError):
    """Raised on operations against a flow in the wrong state."""


class Flow:
    """One end of an allocated communication channel at a layer boundary.

    Created by a provider (shim or DIF flow allocator); the provider wires
    ``_send_fn`` and ``_dealloc_fn`` when allocation completes.
    """

    __slots__ = ("port_id", "local_app", "remote_app", "qos",
                 "provider_name", "state", "nominal_bps", "_receiver",
                 "_send_fn", "_dealloc_fn", "on_allocated", "on_failed",
                 "on_deallocated", "failure_reason", "sdus_sent",
                 "sdus_received", "bytes_sent", "bytes_received")

    def __init__(self, port_id: PortId, local_app: ApplicationName,
                 remote_app: ApplicationName, qos: QosCube,
                 provider_name: DifName) -> None:
        self.port_id = port_id
        self.local_app = local_app
        self.remote_app = remote_app
        self.qos = qos
        self.provider_name = provider_name
        self.state = PENDING
        self.nominal_bps: Optional[float] = None
        self._receiver: Optional[ReceiverFn] = None
        self._send_fn: Optional[Callable[[Any, int], bool]] = None
        self._dealloc_fn: Optional[Callable[[], None]] = None
        self.on_allocated: Optional[Callable[["Flow"], None]] = None
        self.on_failed: Optional[Callable[["Flow", str], None]] = None
        self.on_deallocated: Optional[Callable[["Flow"], None]] = None
        self.failure_reason: Optional[str] = None
        self.sdus_sent = 0
        self.sdus_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------
    # User side
    # ------------------------------------------------------------------
    def set_receiver(self, receiver: ReceiverFn) -> None:
        """Install the callback invoked for every delivered SDU."""
        self._receiver = receiver

    def send(self, payload: Any, size: int) -> bool:
        """Send one SDU; False on backpressure.  Raises on unallocated flow."""
        if self.state != ALLOCATED:
            raise FlowError(f"cannot send on {self.state} flow {self.port_id!r}")
        assert self._send_fn is not None
        accepted = self._send_fn(payload, size)
        if accepted:
            self.sdus_sent += 1
            self.bytes_sent += size
        return accepted

    def deallocate(self) -> None:
        """Release the flow; idempotent."""
        if self.state in (DEALLOCATED, FAILED):
            return
        self.state = DEALLOCATED
        if self._dealloc_fn is not None:
            self._dealloc_fn()
        if self.on_deallocated is not None:
            self.on_deallocated(self)

    @property
    def allocated(self) -> bool:
        """True while the flow is usable."""
        return self.state == ALLOCATED

    # ------------------------------------------------------------------
    # Provider side
    # ------------------------------------------------------------------
    def provider_bind(self, send_fn: Callable[[Any, int], bool],
                      dealloc_fn: Optional[Callable[[], None]] = None,
                      nominal_bps: Optional[float] = None) -> None:
        """Wire the provider's data path into the flow."""
        self._send_fn = send_fn
        self._dealloc_fn = dealloc_fn
        self.nominal_bps = nominal_bps

    def provider_allocated(self) -> None:
        """Mark allocation complete and notify the user."""
        if self.state != PENDING:
            return
        if self._send_fn is None:
            raise FlowError("provider_bind must precede provider_allocated")
        self.state = ALLOCATED
        if self.on_allocated is not None:
            self.on_allocated(self)

    def provider_failed(self, reason: str) -> None:
        """Mark allocation failed and notify the user."""
        if self.state in (DEALLOCATED, FAILED):
            return
        self.state = FAILED
        self.failure_reason = reason
        if self.on_failed is not None:
            self.on_failed(self, reason)

    def provider_deliver(self, payload: Any, size: int) -> None:
        """Hand one inbound SDU to the user."""
        self.sdus_received += 1
        self.bytes_received += size
        if self._receiver is not None:
            self._receiver(payload, size)

    def provider_released(self) -> None:
        """Provider-initiated teardown (peer deallocated / facility lost)."""
        if self.state in (DEALLOCATED, FAILED):
            return
        self.state = DEALLOCATED
        if self.on_deallocated is not None:
            self.on_deallocated(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Flow {self.port_id!r} {self.local_app}->{self.remote_app} "
                f"{self.state} via {self.provider_name}>")
