"""Authentication and access-control policies.

Two of the paper's security claims (§6.1) hinge on explicit policy points
that the current Internet lacks:

* **Enrollment authentication** — "to become a member of a distributed IPC
  facility, an IPC process needs to explicitly enroll, i.e., authenticated
  and assigned an address".  :class:`AuthPolicy` implementations plug into
  the enrollment exchange; a DIF can range "from public (as in the current
  Internet) to private" by choosing :class:`NoAuth`, :class:`PresharedKey`,
  or :class:`ChallengeResponse`.
* **Flow access control** — the flow allocator checks, at the destination,
  that "the requester has access" to the named application (§5.3).
  :class:`FlowAccessPolicy` implementations make that decision.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
from typing import Any, Dict, Iterable, Optional, Set, Tuple

from .names import ApplicationName


class AuthPolicy:
    """A two-message authentication exchange run during enrollment.

    The enrolling side calls :meth:`credentials` (given the authenticator's
    challenge, possibly None); the authenticating member calls
    :meth:`make_challenge` first and :meth:`verify` on the reply.
    """

    name = "abstract"

    def make_challenge(self) -> Optional[str]:
        """Challenge string sent to the joiner (None = no challenge)."""
        return None

    def credentials(self, challenge: Optional[str]) -> Any:
        """What the joiner presents, given the challenge."""
        raise NotImplementedError

    def verify(self, presented: Any, challenge: Optional[str]) -> bool:
        """Authenticator's accept/reject decision."""
        raise NotImplementedError


class NoAuth(AuthPolicy):
    """Accept everyone — the degenerate policy of the public Internet."""

    name = "none"

    def credentials(self, challenge: Optional[str]) -> Any:
        return None

    def verify(self, presented: Any, challenge: Optional[str]) -> bool:
        return True


class PresharedKey(AuthPolicy):
    """The joiner presents a shared secret in the clear.

    Simple and replayable — included as the mid-point of the security range
    experiment E7 sweeps over.
    """

    name = "psk"

    def __init__(self, secret: str) -> None:
        if not secret:
            raise ValueError("pre-shared key must be non-empty")
        self._secret = secret

    def credentials(self, challenge: Optional[str]) -> Any:
        return self._secret

    def verify(self, presented: Any, challenge: Optional[str]) -> bool:
        return isinstance(presented, str) and hmac.compare_digest(
            presented, self._secret)


class ChallengeResponse(AuthPolicy):
    """HMAC-SHA256 over a fresh nonce — replay-proof membership control."""

    name = "challenge-response"

    _nonce_counter = itertools.count(1)

    def __init__(self, secret: str) -> None:
        if not secret:
            raise ValueError("secret must be non-empty")
        self._secret = secret.encode()

    def make_challenge(self) -> Optional[str]:
        counter = next(self._nonce_counter)
        return hashlib.sha256(f"nonce:{counter}".encode()).hexdigest()[:32]

    def credentials(self, challenge: Optional[str]) -> Any:
        if challenge is None:
            return ""
        return hmac.new(self._secret, challenge.encode(),
                        hashlib.sha256).hexdigest()

    def verify(self, presented: Any, challenge: Optional[str]) -> bool:
        if challenge is None or not isinstance(presented, str):
            return False
        expected = hmac.new(self._secret, challenge.encode(),
                            hashlib.sha256).hexdigest()
        return hmac.compare_digest(presented, expected)


# ----------------------------------------------------------------------
# Flow access control
# ----------------------------------------------------------------------
class FlowAccessPolicy:
    """Destination-side check run by the flow allocator before a flow is
    granted (§5.3: "...and that the requester has access to it")."""

    def allow(self, source: ApplicationName, destination: ApplicationName) -> bool:
        """True to grant the flow."""
        raise NotImplementedError


class AllowAll(FlowAccessPolicy):
    """Grant every request (public service)."""

    def allow(self, source: ApplicationName, destination: ApplicationName) -> bool:
        return True


class DenyAll(FlowAccessPolicy):
    """Refuse every request (a service reachable only by management)."""

    def allow(self, source: ApplicationName, destination: ApplicationName) -> bool:
        return False


class AllowList(FlowAccessPolicy):
    """Grant only requests from an explicit set of source applications."""

    def __init__(self, sources: Iterable[ApplicationName]) -> None:
        self._allowed: Set[ApplicationName] = set(sources)

    def allow(self, source: ApplicationName, destination: ApplicationName) -> bool:
        return source in self._allowed

    def add(self, source: ApplicationName) -> None:
        """Extend the allow list at runtime."""
        self._allowed.add(source)
