"""The flow allocator — the paper's IAP (IPC Access Protocol).

Allocation is *not* a DNS lookup (§5.3): "once an address has been found,
the request continues to the identified IPC process to ensure that the
application is really there and that the requester has access to it."  The
requester learns a port id; the address stays inside the DIF.

Sequence for ``allocate(src → dst, qos)``:

1. resolve the requested QoS against the DIF's offered cubes;
2. look the destination application up in the replicated directory;
3. send ``M_CREATE /flowalloc`` *to the destination IPCP* (routed through
   the DIF by the RMTs along the way) carrying source app, QoS and the
   source connection-endpoint id;
4. the destination IPCP confirms the application is registered there,
   applies the access-control policy, creates its EFCP endpoint and an
   inbound :class:`~repro.core.flow.Flow` for the listening application;
5. the response binds the two EFCP endpoints; data may flow.

Directory misses are retried (dissemination may still be converging), then
reported as allocation failure — the paper's "if found" proviso.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

from .efcp import EfcpConnection, EfcpPolicy
from .flow import Flow
from .names import Address, ApplicationName, PortId
from .pdu import ControlPdu, DataPdu
from .qos import QosCube, resolve_cube
from .riep import (M_CREATE, M_DELETE, RESULT_DENIED, RESULT_ERROR,
                   RESULT_NOT_FOUND, RESULT_OK, RiepMessage)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .ipcp import Ipcp

FLOW_OBJ = "/flowalloc"


class FlowRecord:
    """State of one allocated flow endpoint inside the allocator."""

    __slots__ = ("flow", "local_cep", "remote_cep", "remote_addr", "efcp",
                 "initiator")

    def __init__(self, flow: Flow, local_cep: int, initiator: bool) -> None:
        self.flow = flow
        self.local_cep = local_cep
        self.remote_cep: Optional[int] = None
        self.remote_addr: Optional[Address] = None
        self.efcp: Optional[EfcpConnection] = None
        self.initiator = initiator


class FlowAllocator:
    """The flow-allocation task of one IPC process."""

    def __init__(self, ipcp: "Ipcp") -> None:
        self._ipcp = ipcp
        self._cep_ids = itertools.count(1)
        self._records: Dict[int, FlowRecord] = {}   # local cep -> record
        self.allocations_ok = 0
        self.allocations_failed = 0
        self.allocations_denied_access = 0
        self.allocations_denied_admission = 0
        self.stray_pdus = 0
        # guaranteed-bandwidth admission state (policy: admission_capacity)
        self._committed_bps = 0.0
        self._demand_by_cep: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Outgoing allocation
    # ------------------------------------------------------------------
    def allocate(self, flow: Flow, retries_left: Optional[int] = None) -> None:
        """Drive allocation of ``flow`` (created by the system layer)."""
        ipcp = self._ipcp
        if ipcp.address is None:
            flow.provider_failed("not-enrolled")
            return
        try:
            cube = resolve_cube(flow.qos, ipcp.dif.policies.qos_cubes)
        except LookupError as exc:
            self.allocations_failed += 1
            flow.provider_failed(str(exc))
            return
        if retries_left is None:
            retries_left = ipcp.dif.policies.allocate_retries
        if not self._admit(cube):
            self.allocations_denied_admission += 1
            ipcp.tracer.count("flow.admission-denied")
            flow.provider_failed("admission-denied")
            return
        dst_addr = ipcp.directory.lookup(flow.remote_app)
        if dst_addr is None:
            self._retry_or_fail(flow, retries_left, "destination-unknown")
            return
        local_cep = next(self._cep_ids)
        # commit the bandwidth demand now so concurrent requests cannot
        # oversubscribe the budget while replies are in flight
        self._commit_admission(local_cep, cube)
        record = FlowRecord(flow, local_cep, initiator=True)
        record.remote_addr = dst_addr
        self._records[local_cep] = record
        value = {
            "src_app": str(flow.local_app),
            "dst_app": str(flow.remote_app),
            "qos": cube.name,
            "src_cep": local_cep,
            "src_addr": ipcp.address.parts,
        }
        message = RiepMessage(M_CREATE, obj=FLOW_OBJ, value=value)
        ipcp.invoke_table.new_request(
            message,
            lambda reply: self._on_allocate_reply(reply, record, cube,
                                                  retries_left))
        ipcp.send_mgmt_routed(dst_addr, message)

    def _retry_or_fail(self, flow: Flow, retries_left: int, reason: str) -> None:
        ipcp = self._ipcp
        if retries_left > 0:
            ipcp.engine.call_later(
                ipcp.dif.policies.allocate_retry_delay,
                self.allocate, flow, retries_left - 1,
                label="fa.retry")
            return
        self.allocations_failed += 1
        flow.provider_failed(reason)

    def _on_allocate_reply(self, reply: Optional[RiepMessage],
                           record: FlowRecord, cube: QosCube,
                           retries_left: int) -> None:
        flow = record.flow
        if flow.state != "pending":
            self._records.pop(record.local_cep, None)
            return
        if reply is None or not reply.ok:
            self._records.pop(record.local_cep, None)
            self._release_admission(record.local_cep)
            if reply is None:
                self._retry_or_fail(flow, retries_left, "timeout")
            elif reply.result == RESULT_NOT_FOUND:
                self._retry_or_fail(flow, retries_left, "destination-unknown")
            elif reply.result == RESULT_DENIED:
                self.allocations_failed += 1
                why = (reply.value or {}).get("why")
                flow.provider_failed("admission-denied" if why == "admission"
                                     else "access-denied")
            else:
                self.allocations_failed += 1
                flow.provider_failed("error")
            return
        record.remote_cep = int(reply.value["dst_cep"])
        self._bind(record, cube)
        self.allocations_ok += 1
        flow.provider_allocated()

    # ------------------------------------------------------------------
    # Incoming allocation (destination side)
    # ------------------------------------------------------------------
    def handle_request(self, message: RiepMessage, src_addr: Optional[Address],
                       port_id: int) -> None:
        """Serve an inbound ``M_CREATE/M_DELETE /flowalloc``."""
        if message.opcode == M_CREATE:
            self._on_create(message, src_addr, port_id)
        elif message.opcode == M_DELETE:
            self._on_delete(message)

    def _on_create(self, message: RiepMessage, src_addr: Optional[Address],
                   port_id: int) -> None:
        ipcp = self._ipcp
        value = message.value
        dst_app = ApplicationName.parse(value["dst_app"])
        src_app = ApplicationName.parse(value["src_app"])
        listener = ipcp.local_app_listener(dst_app)
        if listener is None:
            ipcp.send_mgmt_routed_reply(src_addr, port_id,
                                        message.reply(result=RESULT_NOT_FOUND))
            return
        if not ipcp.dif.policies.access.allow(src_app, dst_app):
            self.allocations_denied_access += 1
            ipcp.tracer.count("flow.denied")
            ipcp.tracer.log(ipcp.engine.now, "flow-denied",
                            src=str(src_app), dst=str(dst_app))
            ipcp.send_mgmt_routed_reply(src_addr, port_id,
                                        message.reply(result=RESULT_DENIED))
            return
        cube = ipcp.dif.policies.qos_cubes.get(value["qos"])
        if cube is None:
            ipcp.send_mgmt_routed_reply(src_addr, port_id,
                                        message.reply(result=RESULT_ERROR))
            return
        if not self._admit(cube):
            self.allocations_denied_admission += 1
            ipcp.tracer.count("flow.admission-denied")
            ipcp.send_mgmt_routed_reply(
                src_addr, port_id,
                message.reply(value={"why": "admission"},
                              result=RESULT_DENIED))
            return
        local_cep = next(self._cep_ids)
        flow = Flow(PortId(ipcp.next_port_id()), dst_app, src_app, cube,
                    ipcp.dif.name)
        record = FlowRecord(flow, local_cep, initiator=False)
        record.remote_cep = int(value["src_cep"])
        record.remote_addr = Address(*value["src_addr"])
        self._records[local_cep] = record
        self._bind(record, cube)
        flow.provider_allocated()
        reply = message.reply(value={"dst_cep": local_cep})
        ipcp.send_mgmt_routed_reply(record.remote_addr, port_id, reply)
        listener(flow)

    def _on_delete(self, message: RiepMessage) -> None:
        cep = int(message.value["cep"])
        record = self._records.pop(cep, None)
        if record is None:
            return
        self._release_admission(cep)
        if record.efcp is not None:
            record.efcp.close()
        record.flow.provider_released()

    # ------------------------------------------------------------------
    # Data path glue
    # ------------------------------------------------------------------
    def _admit(self, cube: Optional[QosCube]) -> bool:
        """Guaranteed-bandwidth admission check (§3.1, IntServ-style)."""
        capacity = self._ipcp.dif.policies.admission_capacity_bps
        if capacity is None or cube is None or cube.avg_bandwidth is None:
            return True
        return self._committed_bps + cube.avg_bandwidth <= capacity + 1e-9

    def _commit_admission(self, cep: int, cube: QosCube) -> None:
        demand = cube.avg_bandwidth or 0.0
        if demand > 0:
            self._committed_bps += demand
            self._demand_by_cep[cep] = demand

    def _release_admission(self, cep: int) -> None:
        demand = self._demand_by_cep.pop(cep, 0.0)
        self._committed_bps = max(0.0, self._committed_bps - demand)

    def committed_bandwidth_bps(self) -> float:
        """Sum of admitted guaranteed-bandwidth demands at this member."""
        return self._committed_bps

    def _bind(self, record: FlowRecord, cube: QosCube) -> None:
        ipcp = self._ipcp
        if record.local_cep not in self._demand_by_cep:
            self._commit_admission(record.local_cep, cube)
        assert record.remote_addr is not None and record.remote_cep is not None
        assert ipcp.address is not None
        policy = EfcpPolicy.for_cube(
            cube, **ipcp.dif.policies.efcp_overrides_for(cube.name))
        efcp = EfcpConnection(
            ipcp.engine, ipcp.address, record.remote_addr,
            record.local_cep, record.remote_cep, policy,
            output=ipcp.rmt.submit,
            deliver=record.flow.provider_deliver,
            priority=cube.priority,
            table=ipcp.dif.efcp_table)
        record.efcp = efcp
        record.flow.provider_bind(
            send_fn=efcp.send,
            dealloc_fn=lambda: self._deallocate(record))

    def _deallocate(self, record: FlowRecord) -> None:
        ipcp = self._ipcp
        self._records.pop(record.local_cep, None)
        self._release_admission(record.local_cep)
        if record.efcp is not None:
            record.efcp.close()
        if record.remote_addr is not None and record.remote_cep is not None:
            message = RiepMessage(M_DELETE, obj=FLOW_OBJ,
                                  value={"cep": record.remote_cep})
            ipcp.send_mgmt_routed(record.remote_addr, message)

    def handle_data(self, pdu: DataPdu) -> None:
        """Demultiplex an inbound DTP PDU to its EFCP endpoint."""
        record = self._records.get(pdu.dst_cep)
        if record is None or record.efcp is None:
            self.stray_pdus += 1
            return
        record.efcp.handle_data(pdu)

    def handle_control(self, pdu: ControlPdu) -> None:
        """Demultiplex an inbound DTCP PDU to its EFCP endpoint."""
        record = self._records.get(pdu.dst_cep)
        if record is None or record.efcp is None:
            self.stray_pdus += 1
            return
        record.efcp.handle_control(pdu)

    # ------------------------------------------------------------------
    def active_flow_count(self) -> int:
        """Flows currently bound at this IPCP."""
        return len(self._records)

    def records(self) -> Dict[int, FlowRecord]:
        """Local CEP → record map (copy, for tests/metrics)."""
        return dict(self._records)
