"""One sweep configuration as picklable pure data.

A :class:`Job` never holds live objects (engines, sockets, QoS cubes):
the target is a ``"package.module:function"`` string resolved by import
*in the executing process*, and the kwargs are JSON-safe scalars and
containers.  That is what lets a job cross a ``spawn`` process boundary
unchanged, and what makes a job list itself data — serializable,
diffable, and replayable.
"""

from __future__ import annotations

import importlib
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List


class JobError(ValueError):
    """A malformed job: bad target reference or non-row result."""


@dataclass
class Job:
    """One unit of sweep work: call ``target(**kwargs)``, collect rows.

    ``target`` is a ``"module:function"`` reference; the function must
    return either one row dict or a list of row dicts.  ``group`` tags
    the job with the sweep it belongs to (the experiment key, a scenario
    batch name) so merged results can be regrouped; ``label`` is a short
    human-readable description of the configuration.
    """

    target: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    group: str = ""
    label: str = ""

    def resolve(self) -> Callable[..., Any]:
        """Import and return the target callable (raises :class:`JobError`
        on a reference that does not name a module-level callable)."""
        module_name, sep, func_name = self.target.partition(":")
        if not sep or not module_name or not func_name:
            raise JobError(f"job target {self.target!r} is not of the form "
                           f"'module:function'")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise JobError(f"job target {self.target!r}: {exc}") from exc
        fn = getattr(module, func_name, None)
        if not callable(fn):
            raise JobError(f"job target {self.target!r} does not name a "
                           f"callable")
        return fn

    def run(self) -> List[Dict[str, Any]]:
        """Execute the job in this process; always returns a row list."""
        result = self.resolve()(**self.kwargs)
        if isinstance(result, dict):
            return [result]
        if isinstance(result, list) and all(isinstance(r, dict)
                                            for r in result):
            return result
        raise JobError(f"job {self.target!r} returned {type(result).__name__}"
                       f", expected a row dict or a list of row dicts")


# ----------------------------------------------------------------------
# Trivial built-in targets (test and smoke hooks)
# ----------------------------------------------------------------------
def echo_row(delay_s: float = 0.0, **kwargs: Any) -> Dict[str, Any]:
    """Return the kwargs as a row — a deterministic no-op job target.

    ``delay_s`` sleeps before returning: tests use it to force completion
    order to differ from job order and assert the merge ignores it.
    """
    if delay_s > 0:
        time.sleep(delay_s)
    row = dict(kwargs)
    row["delay_s"] = delay_s
    return row


def worker_info_row(**kwargs: Any) -> Dict[str, Any]:
    """Row carrying the executing process id — lets tests assert that a
    pool really placed the job in another process."""
    row = dict(kwargs)
    row["pid"] = os.getpid()
    return row
