"""Multi-process sweep execution.

Every table in the reproduction is a *sweep*: a list of independent
configurations (an experiment parameter point, or a scenario spec on one
stack), each producing one or more JSON-safe row dicts.  The experiment
modules expose those configuration lists as data (``iter_jobs()``), and
this package executes them:

* :class:`~repro.sweeps.job.Job` — one configuration as picklable pure
  data: a ``"module:function"`` target plus JSON-safe kwargs;
* :class:`~repro.sweeps.runner.SweepRunner` — dispatches jobs over a
  ``multiprocessing`` pool and merges the row dicts back **in job
  order**, so the output is bit-for-bit independent of scheduling
  (``workers=1`` is a plain in-process loop, the reference semantics);
* worker-count plumbing shared by the CLI and the bench suite
  (``--jobs N`` / ``REPRO_JOBS``, default ``os.cpu_count()``).

The serial-equivalence contract — rows from ``--jobs N`` are identical
to ``--jobs 1`` up to :data:`WALL_CLOCK_KEYS` — is enforced by
``tests/test_sweeps.py``; this is also the seam the ROADMAP's sharded
engine will plug into (per-region engines are just jobs with a frame
exchange protocol on top).
"""

from .job import Job, JobError, echo_row, worker_info_row
from .runner import (JOBS_ENV, START_METHOD_ENV, WALL_CLOCK_KEYS,
                     SweepRunner, default_worker_count, parse_worker_count,
                     stable_row, stable_rows)

__all__ = [
    "Job", "JobError", "JOBS_ENV", "START_METHOD_ENV", "SweepRunner",
    "WALL_CLOCK_KEYS", "default_worker_count", "echo_row",
    "parse_worker_count", "stable_row", "stable_rows", "worker_info_row",
]
