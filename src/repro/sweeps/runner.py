"""Dispatch sweep jobs over a ``multiprocessing`` pool, merge in job order.

The merge contract is the whole point: results come back **in job
order, not completion order** (``Pool.map`` over an ordered job list),
so the row stream is bit-for-bit independent of worker scheduling and
``--jobs 1`` vs ``--jobs N`` differ only in wall-clock — up to
:data:`WALL_CLOCK_KEYS`, the row keys that *are* wall-clock
measurements and therefore vary run to run even serially.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Dict, List, Optional, Sequence

from .job import Job

#: ``--jobs`` default when the flag is absent.
JOBS_ENV = "REPRO_JOBS"

#: Override the multiprocessing start method ("fork", "spawn",
#: "forkserver"); unset = the platform default.  CI runs the parallel
#: smoke job under "spawn" to catch pickling bugs fork would mask.
START_METHOD_ENV = "REPRO_START_METHOD"

#: Row keys that are wall-clock measurements (E6 scale rows): real and
#: useful, but not reproducible — excluded from serial-equivalence
#: comparisons and from any byte-identity claim about sweep output.
WALL_CLOCK_KEYS = frozenset({"build_s", "wall_s", "events_per_s",
                             "peak_mem_mb"})


def parse_worker_count(value: Any, noun: str = "worker count") -> int:
    """Validate a worker count from the CLI or environment.

    Raises :class:`ValueError` on anything but an integer >= 1 — a sweep
    with zero or negative workers is a configuration error, not a
    request for the default.  ``noun`` names the quantity in the error
    message (the CLI reuses this validator for ``--shards``).
    """
    try:
        # via str() so 1.5 and True are rejected instead of truncated
        count = int(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(f"{noun} must be an integer >= 1, got {value!r}")
    if count < 1:
        raise ValueError(f"{noun} must be an integer >= 1, got {count}")
    return count


def default_worker_count() -> int:
    """``REPRO_JOBS`` if set (validated), else ``os.cpu_count()``."""
    env = os.environ.get(JOBS_ENV)
    if env:
        return parse_worker_count(env)
    return os.cpu_count() or 1


def _execute(job: Job) -> List[Dict[str, Any]]:
    # module-level so the pool can pickle it by reference under spawn
    return job.run()


class SweepRunner:
    """Execute a job list with ``workers`` processes; merge in job order."""

    def __init__(self, workers: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        self.workers = (default_worker_count() if workers is None
                        else parse_worker_count(workers))
        self.start_method = (start_method
                             or os.environ.get(START_METHOD_ENV) or None)
        # fail at construction, not mid-dispatch after serial output
        # has already been produced
        if self.start_method is not None:
            known = multiprocessing.get_all_start_methods()
            if self.start_method not in known:
                raise ValueError(
                    f"unknown start method {self.start_method!r}; "
                    f"known: {', '.join(known)}")

    def map(self, jobs: Sequence[Job]) -> List[List[Dict[str, Any]]]:
        """Per-job row lists, in job order.

        ``workers=1`` (or a single job) is the in-process serial path —
        no pool, no pickling, the reference semantics the parallel path
        must reproduce byte for byte.
        """
        return list(self.imap(jobs))

    def imap(self, jobs: Sequence[Job]):
        """Yield each job's row list **in job order** as it completes.

        Consumers see results incrementally (the CLI prints each
        experiment's table as soon as its slice of the battery is done,
        instead of buffering everything behind the slowest job), while
        the pool keeps working ahead on later jobs.
        """
        jobs = list(jobs)
        if self.workers == 1 or len(jobs) <= 1:
            for job in jobs:
                yield job.run()
            return
        context = multiprocessing.get_context(self.start_method)
        processes = min(self.workers, len(jobs))
        with context.Pool(processes=processes) as pool:
            # chunksize=1: jobs are coarse (whole simulations), so hand
            # them out one at a time instead of pre-chunking the tail
            # onto a single worker
            yield from pool.imap(_execute, jobs, chunksize=1)

    def run(self, jobs: Sequence[Job]) -> List[Dict[str, Any]]:
        """The merged row stream: each job's rows, concatenated in job
        order."""
        return [row for rows in self.map(jobs) for row in rows]

    def run_grouped(self, jobs: Sequence[Job]
                    ) -> Dict[str, List[Dict[str, Any]]]:
        """Rows regrouped by ``job.group`` (insertion order preserved:
        first-seen group first, job order within each group)."""
        grouped: Dict[str, List[Dict[str, Any]]] = {}
        for job in jobs:
            grouped.setdefault(job.group, [])
        for job, rows in zip(jobs, self.map(jobs)):
            grouped[job.group].extend(rows)
        return grouped


def stable_row(row: Dict[str, Any]) -> Dict[str, Any]:
    """The row minus its wall-clock keys — the part of a row the
    serial-equivalence contract covers."""
    return {key: value for key, value in row.items()
            if key not in WALL_CLOCK_KEYS}


def stable_rows(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """:func:`stable_row` over a row list."""
    return [stable_row(row) for row in rows]
