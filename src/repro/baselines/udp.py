"""A UDP-like datagram transport (used by DNS and Mobile-IP signalling)."""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional

from .ipnet import PROTO_UDP, IpPacket, IpStack

UDP_HEADER_BYTES = 8


class UdpDatagram:
    """One UDP datagram with an opaque payload."""

    __slots__ = ("src_port", "dst_port", "payload", "payload_size")

    def __init__(self, src_port: int, dst_port: int, payload: object,
                 payload_size: int) -> None:
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = payload
        self.payload_size = payload_size

    def wire_size(self) -> int:
        return UDP_HEADER_BYTES + self.payload_size


#: handler(payload, payload_size, src_ip, src_port)
DatagramHandler = Callable[[object, int, int, int], None]


class UdpStack:
    """The UDP layer of one node."""

    def __init__(self, ip_stack: IpStack) -> None:
        self.ip = ip_stack
        self._ephemeral = itertools.count(32768)
        self._bindings: Dict[int, DatagramHandler] = {}
        self.datagrams_received = 0
        self.datagrams_dropped = 0
        ip_stack.register_protocol(PROTO_UDP, self._on_packet)

    def bind(self, port: int, handler: DatagramHandler) -> int:
        """Listen on a port (0 = pick an ephemeral port); returns the port."""
        if port == 0:
            port = next(self._ephemeral)
        if port in self._bindings:
            raise ValueError(f"UDP port {port} already bound")
        self._bindings[port] = handler
        return port

    def unbind(self, port: int) -> None:
        """Release a port binding."""
        self._bindings.pop(port, None)

    def sendto(self, src_ip: int, src_port: int, dst_ip: int, dst_port: int,
               payload: object, payload_size: int) -> bool:
        """Transmit one datagram."""
        datagram = UdpDatagram(src_port, dst_port, payload, payload_size)
        packet = IpPacket(src_ip, dst_ip, PROTO_UDP, datagram,
                          datagram.wire_size())
        return self.ip.send(packet)

    def _on_packet(self, packet: IpPacket, _stack: IpStack) -> None:
        datagram: UdpDatagram = packet.payload
        handler = self._bindings.get(datagram.dst_port)
        if handler is None:
            self.datagrams_dropped += 1
            return
        self.datagrams_received += 1
        handler(datagram.payload, datagram.payload_size, packet.src,
                datagram.src_port)
