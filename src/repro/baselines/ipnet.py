"""An IPv4-like network layer — the architecture the paper argues against.

Deliberately faithful to the properties §6 criticises:

* addresses name **interfaces**, not nodes (§6.3/§6.4's root problem);
* addresses are **public**: any host can address any interface (§6.1);
* forwarding is longest-prefix match over one global address space;
* transport is a separate layer bound to (address, port) pairs.

The stack runs on the same simulated links as the IPC architecture, so
every comparison in the benchmark suite is apples-to-apples.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from ..sim.engine import Engine
from ..sim.link import CorruptedFrame
from ..sim.network import Network
from ..sim.node import Interface, Node

IP_HEADER_BYTES = 20

#: protocol numbers (the real ones, for flavour)
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_IPIP = 4
PROTO_SCTP = 132


def ip(text: str) -> int:
    """Parse dotted-quad text into the integer form used throughout."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 literal {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad IPv4 literal {text!r}")
        value = (value << 8) | octet
    return value


def ip_str(value: int) -> str:
    """Dotted-quad rendering of an integer address."""
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def prefix_of(address: int, plen: int) -> int:
    """The network prefix of ``address`` at length ``plen``."""
    if plen == 0:
        return 0
    mask = ((1 << plen) - 1) << (32 - plen)
    return address & mask


class IpPacket:
    """One IP datagram (payload is opaque; size explicit)."""

    __slots__ = ("src", "dst", "proto", "ttl", "payload", "payload_size")

    def __init__(self, src: int, dst: int, proto: int, payload: object,
                 payload_size: int, ttl: int = 64) -> None:
        self.src = src
        self.dst = dst
        self.proto = proto
        self.ttl = ttl
        self.payload = payload
        self.payload_size = payload_size

    def wire_size(self) -> int:
        return IP_HEADER_BYTES + self.payload_size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<IpPacket {ip_str(self.src)}->{ip_str(self.dst)} "
                f"proto={self.proto} {self.payload_size}B>")


class IpInterface:
    """An addressed attachment of a stack to a link."""

    def __init__(self, interface: Interface, address: int, plen: int) -> None:
        self.interface = interface
        self.address = address
        self.plen = plen
        self.up = True

    @property
    def network(self) -> Tuple[int, int]:
        """(prefix, plen) of the attached subnet."""
        return (prefix_of(self.address, self.plen), self.plen)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IpInterface {ip_str(self.address)}/{self.plen}>"


class Route:
    """One forwarding entry: prefix → (next hop | direct) out an interface."""

    __slots__ = ("prefix", "plen", "next_hop", "ifname")

    def __init__(self, prefix: int, plen: int, next_hop: Optional[int],
                 ifname: str) -> None:
        self.prefix = prefix
        self.plen = plen
        self.next_hop = next_hop  # None = directly attached
        self.ifname = ifname


ProtocolHandler = Callable[[IpPacket, "IpStack"], None]


class IpStack:
    """The IP layer of one node."""

    def __init__(self, node: Node, forwarding: bool = False) -> None:
        self.node = node
        self.engine: Engine = node.engine
        self.name = node.name
        self.forwarding = forwarding
        self.interfaces: Dict[str, IpInterface] = {}
        self.routes: List[Route] = []
        self.protocols: Dict[int, ProtocolHandler] = {}
        self.packets_sent = 0
        self.packets_forwarded = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.packets_corrupted = 0
        #: middlebox hook: packet arriving on an interface may be rewritten
        #: (return a packet) or consumed (return None).  NAT and Mobile-IP
        #: home agents — the in-network functions §6 calls kludges — attach
        #: here in the baseline.
        self.receive_hook: Optional[Callable[[IpPacket, str], Optional[IpPacket]]] = None
        #: middlebox hook applied to locally originated packets.
        self.send_hook: Optional[Callable[[IpPacket], Optional[IpPacket]]] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_interface(self, ifname: str, address: int, plen: int) -> IpInterface:
        """Address a physical interface and start receiving on it.

        The interface tracks the link's carrier: it goes down when the link
        fails — which is what kills a TCP connection bound to its address.
        """
        interface = self.node.interface(ifname)
        ip_if = IpInterface(interface, address, plen)
        self.interfaces[ifname] = ip_if
        interface.end.attach(
            lambda packet, size: self._on_receive(packet, ifname))
        ip_if.up = interface.link.up

        def carrier(_link, up: bool) -> None:
            ip_if.up = up
        interface.link.observe(carrier)
        return ip_if

    def register_protocol(self, proto: int, handler: ProtocolHandler) -> None:
        """Bind a transport protocol (TCP/UDP/...) to its number."""
        self.protocols[proto] = handler

    def add_route(self, prefix: int, plen: int, next_hop: Optional[int],
                  ifname: str) -> None:
        """Install a forwarding entry."""
        self.routes.append(Route(prefix, plen, next_hop, ifname))

    def clear_routes(self) -> None:
        """Flush the forwarding table (before daemon reinstall)."""
        self.routes = []

    def addresses(self) -> List[int]:
        """All interface addresses (the stack's public identity set)."""
        return [ip_if.address for ip_if in self.interfaces.values()]

    def has_address(self, address: int) -> bool:
        """True when ``address`` belongs to an *up* local interface."""
        return any(ip_if.address == address and ip_if.up
                   for ip_if in self.interfaces.values())

    def interface_for_address(self, address: int) -> Optional[str]:
        """Name of the interface holding ``address``."""
        for ifname, ip_if in self.interfaces.items():
            if ip_if.address == address:
                return ifname
        return None

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send(self, packet: IpPacket) -> bool:
        """Originate a packet from this stack."""
        self.packets_sent += 1
        if self.send_hook is not None:
            hooked = self.send_hook(packet)
            if hooked is None:
                return False
            packet = hooked
        return self._route_out(packet)

    def table_size(self) -> int:
        """Number of installed routes (E6 baseline metric)."""
        return len(self.routes)

    def _lookup(self, dst: int) -> Optional[Route]:
        best: Optional[Route] = None
        for route in self.routes:
            if prefix_of(dst, route.plen) == route.prefix:
                if best is None or route.plen > best.plen:
                    best = route
        return best

    def _route_out(self, packet: IpPacket) -> bool:
        # local delivery short-circuit
        if self.has_address(packet.dst):
            self._deliver(packet)
            return True
        route = self._lookup(packet.dst)
        if route is None:
            self.packets_dropped += 1
            return False
        ip_if = self.interfaces.get(route.ifname)
        if ip_if is None or not ip_if.up:
            self.packets_dropped += 1
            return False
        return ip_if.interface.end.send(packet, packet.wire_size())

    def _on_receive(self, packet: IpPacket, ifname: str) -> None:
        if isinstance(packet, CorruptedFrame):
            # link-layer FCS failure: the NIC counts and drops the frame
            self.packets_corrupted += 1
            return
        ip_if = self.interfaces.get(ifname)
        if ip_if is None or not ip_if.up:
            return
        if self.receive_hook is not None:
            hooked = self.receive_hook(packet, ifname)
            if hooked is None:
                return
            packet = hooked
        if self.has_address(packet.dst):
            self._deliver(packet)
            return
        if not self.forwarding:
            self.packets_dropped += 1
            return
        packet.ttl -= 1
        if packet.ttl <= 0:
            self.packets_dropped += 1
            return
        self.packets_forwarded += 1
        self._route_out(packet)

    def _deliver(self, packet: IpPacket) -> None:
        handler = self.protocols.get(packet.proto)
        if handler is None:
            self.packets_dropped += 1
            return
        self.packets_delivered += 1
        handler(packet, self)


class IpRoutingDaemon:
    """Global shortest-path route computation for a set of IP stacks.

    Stands in for an IGP: :meth:`converge` recomputes all forwarding
    tables from the *current* topology (links that are up, interfaces that
    are up), optionally after a convergence delay.  Experiments call it at
    build time and again after failures they want routing to react to.
    """

    def __init__(self, network: Network, stacks: Dict[str, IpStack]) -> None:
        self._network = network
        self._stacks = stacks
        self.convergences = 0

    def converge(self, delay: float = 0.0) -> None:
        """(Re)install routes, after ``delay`` simulated seconds."""
        if delay > 0:
            self._network.engine.call_later(delay, self._install,
                                            label="ip.converge")
        else:
            self._install()

    def _install(self) -> None:
        self.convergences += 1
        graph = self._usable_graph()
        for name, stack in self._stacks.items():
            stack.clear_routes()
            self._install_for(name, stack, graph)

    def _usable_graph(self) -> "nx.Graph":
        graph = nx.Graph()
        graph.add_nodes_from(self._stacks)
        for link in self._network.links.values():
            if not link.up:
                continue
            a = self._owner(link.ends[0])
            b = self._owner(link.ends[1])
            if a in self._stacks and b in self._stacks:
                a_if = self._ifname_for_end(a, link.ends[0])
                b_if = self._ifname_for_end(b, link.ends[1])
                if a_if and b_if:
                    graph.add_edge(a, b, ends={a: a_if, b: b_if})
        return graph

    def _owner(self, end) -> Optional[str]:
        for name in self._stacks:
            for interface in self._network.node(name).interfaces():
                if interface.end is end:
                    return name
        return None

    def _ifname_for_end(self, node_name: str, end) -> Optional[str]:
        stack = self._stacks[node_name]
        for ifname, ip_if in stack.interfaces.items():
            if ip_if.interface.end is end and ip_if.up:
                return ifname
        return None

    def _install_for(self, name: str, stack: IpStack, graph: "nx.Graph") -> None:
        # connected subnets first
        connected = set()
        for ifname, ip_if in stack.interfaces.items():
            if ip_if.up:
                prefix, plen = ip_if.network
                stack.add_route(prefix, plen, None, ifname)
                connected.add((prefix, plen))
        if name not in graph:
            return
        # hosts (forwarding off) must never transit traffic: compute paths
        # on a directed view where only routers — and the source itself —
        # have outgoing edges.
        directed = nx.DiGraph()
        directed.add_nodes_from(graph.nodes)
        for u, v in graph.edges:
            if u == name or self._stacks[u].forwarding:
                directed.add_edge(u, v)
            if v == name or self._stacks[v].forwarding:
                directed.add_edge(v, u)
        try:
            lengths, paths = nx.single_source_dijkstra(directed, name)
        except nx.NetworkXError:  # pragma: no cover - defensive
            return
        # routes are to *subnets* (as an IGP advertises prefixes), via the
        # nearest node attached to each subnet — never to hosts.
        for (prefix, plen), owners in self._subnet_owners().items():
            if (prefix, plen) in connected:
                continue
            best = None
            for owner in owners:
                if owner in lengths and owner != name:
                    if best is None or lengths[owner] < lengths[best]:
                        best = owner
            if best is None:
                continue
            path = paths[best]
            if len(path) < 2:
                continue
            neighbor = path[1]
            edge = graph.edges[name, neighbor]
            out_if = edge["ends"][name]
            peer_if = edge["ends"][neighbor]
            peer_addr = self._stacks[neighbor].interfaces[peer_if].address
            stack.add_route(prefix, plen, peer_addr, out_if)

    def _subnet_owners(self) -> Dict[Tuple[int, int], List[str]]:
        """Which nodes advertise each subnet into the IGP.

        Hosts do not run the IGP: when a subnet has any router attached,
        only the routers advertise it (otherwise traffic would be drawn
        toward a non-forwarding endpoint).
        """
        owners: Dict[Tuple[int, int], List[str]] = {}
        for name, stack in self._stacks.items():
            for ip_if in stack.interfaces.values():
                if ip_if.up:
                    owners.setdefault(ip_if.network, []).append(name)
        for subnet, names in owners.items():
            routers = [n for n in names if self._stacks[n].forwarding]
            if routers:
                owners[subnet] = routers
        return owners
