"""A RIP-style distance-vector IGP, running as a real protocol.

The global :class:`~repro.baselines.ipnet.IpRoutingDaemon` computes routes
omnisciently — fine for most baselines, but it hides the *cost* of routing
in the current Internet.  This module runs an actual distributed protocol
over UDP (port 520, like RIP): periodic full-table advertisements,
split-horizon, hop-count metric, route timeout, and count-to-infinity
bounded at 16 — so experiments can count the baseline's update messages
and convergence time against the DIF's scoped link-state flooding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.engine import Engine, PeriodicTask
from .ipnet import IpStack, prefix_of
from .udp import UdpStack

RIP_PORT = 520
INFINITY_METRIC = 16


class RipRoute:
    """One distance-vector entry."""

    __slots__ = ("prefix", "plen", "metric", "next_hop", "ifname",
                 "last_heard")

    def __init__(self, prefix: int, plen: int, metric: int,
                 next_hop: Optional[int], ifname: str,
                 last_heard: float) -> None:
        self.prefix = prefix
        self.plen = plen
        self.metric = metric
        self.next_hop = next_hop
        self.ifname = ifname
        self.last_heard = last_heard


class RipDaemon:
    """The RIP process of one router/host.

    Parameters
    ----------
    update_interval:
        Period of full-table advertisements (RIP uses 30 s; experiments
        shrink it).
    route_timeout:
        A learned route not refreshed within this window is expired.
    """

    def __init__(self, stack: IpStack, udp: UdpStack,
                 update_interval: float = 5.0,
                 route_timeout: Optional[float] = None) -> None:
        self.stack = stack
        self.udp = udp
        self.engine: Engine = stack.engine
        self.update_interval = update_interval
        self.route_timeout = (route_timeout if route_timeout is not None
                              else 3.5 * update_interval)
        self._routes: Dict[Tuple[int, int], RipRoute] = {}
        self.updates_sent = 0
        self.updates_received = 0
        self.routes_expired = 0
        udp.bind(RIP_PORT, self._on_update)
        self._seed_connected()
        self._task = PeriodicTask(self.engine, update_interval, self._tick,
                                  label=f"rip.{stack.name}")
        self._task.start(initial_delay=update_interval / 4)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Cease advertising (the process dies)."""
        self._task.stop()

    def table_size(self) -> int:
        """Live routes held by this RIP process."""
        return sum(1 for route in self._routes.values()
                   if route.metric < INFINITY_METRIC)

    def route_to(self, address: int) -> Optional[RipRoute]:
        """Longest-prefix live route for ``address``."""
        best: Optional[RipRoute] = None
        for route in self._routes.values():
            if route.metric >= INFINITY_METRIC:
                continue
            if prefix_of(address, route.plen) == route.prefix:
                if best is None or route.plen > best.plen:
                    best = route
        return best

    # ------------------------------------------------------------------
    def _seed_connected(self) -> None:
        for ifname, ip_if in self.stack.interfaces.items():
            if ip_if.up:
                prefix, plen = ip_if.network
                current = self._routes.get((prefix, plen))
                if current is None or current.next_hop is not None:
                    self._routes[(prefix, plen)] = RipRoute(
                        prefix, plen, 0, None, ifname, float("inf"))

    def _tick(self) -> None:
        self._seed_connected()   # interfaces may have come (back) up
        self._expire()
        self._install()
        self._advertise()

    def _expire(self) -> None:
        now = self.engine.now
        for key, route in list(self._routes.items()):
            # connected routes follow interface state, not timers
            if route.next_hop is None:
                ip_if = self.stack.interfaces.get(route.ifname)
                if ip_if is None or not ip_if.up:
                    del self._routes[key]
                    self.routes_expired += 1
                continue
            if now - route.last_heard > self.route_timeout \
                    and route.metric < INFINITY_METRIC:
                route.metric = INFINITY_METRIC   # poisoned, advertised once
                self.routes_expired += 1

    def _install(self) -> None:
        """Copy the live RIP table into the stack's forwarding table."""
        self.stack.clear_routes()
        for route in self._routes.values():
            if route.metric < INFINITY_METRIC:
                self.stack.add_route(route.prefix, route.plen,
                                     route.next_hop, route.ifname)

    def _advertise(self) -> None:
        for ifname, ip_if in self.stack.interfaces.items():
            if not ip_if.up:
                continue
            entries = []
            for route in self._routes.values():
                # split horizon: never advertise back out the learning iface
                if route.next_hop is not None and route.ifname == ifname:
                    continue
                entries.append((route.prefix, route.plen,
                                min(route.metric + 1, INFINITY_METRIC)))
            if not entries:
                continue
            self.updates_sent += 1
            # RIP v2 multicasts; on a p2p link that is the subnet peer
            peer = self._subnet_peer(ip_if.address, ip_if.plen)
            self.udp.sendto(ip_if.address, RIP_PORT, peer, RIP_PORT,
                            ("rip-update", tuple(entries)),
                            8 + 12 * len(entries))

    @staticmethod
    def _subnet_peer(address: int, plen: int) -> int:
        base = prefix_of(address, plen)
        offset = address - base
        return base + (2 if offset == 1 else 1)

    def _on_update(self, payload, _size: int, src_ip: int,
                   _src_port: int) -> None:
        kind, entries = payload
        if kind != "rip-update":
            return
        self.updates_received += 1
        ifname = self._iface_toward(src_ip)
        if ifname is None:
            return
        now = self.engine.now
        changed = False
        for prefix, plen, metric in entries:
            key = (prefix, plen)
            current = self._routes.get(key)
            if current is not None and current.next_hop is None:
                continue   # connected beats anything learned
            if current is None or metric < current.metric \
                    or (current.next_hop == src_ip
                        and current.ifname == ifname):
                if metric >= INFINITY_METRIC and (
                        current is None or current.metric >= INFINITY_METRIC):
                    continue
                self._routes[key] = RipRoute(prefix, plen, metric, src_ip,
                                             ifname, now)
                changed = True
            elif current.next_hop == src_ip:
                current.last_heard = now
        if changed:
            self._install()

    def _iface_toward(self, src_ip: int) -> Optional[str]:
        for ifname, ip_if in self.stack.interfaces.items():
            if prefix_of(src_ip, ip_if.plen) == prefix_of(ip_if.address,
                                                          ip_if.plen):
                return ifname
        return None


def run_rip_network(fabric, update_interval: float = 1.0) -> Dict[str, RipDaemon]:
    """Attach a RIP daemon to every host of an :class:`IpFabric` (replacing
    the omniscient daemon's routes as the periodic updates take over)."""
    daemons = {}
    for name, host in fabric.hosts.items():
        daemons[name] = RipDaemon(host.ip, host.udp,
                                  update_interval=update_interval)
    return daemons
