"""A sockets-style convenience facade over the baseline stack.

This is the interface §3.1 criticizes: applications *see addresses* and
servers camp on *well-known ports*.  It exists so the baseline sides of
the experiments read like ordinary network programs, and so the contrast
with :mod:`repro.core.api` (names in, port ids out) is visible in code.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.network import Network
from ..sim.node import Node
from .dns import DnsClient, DnsServer
from .ipnet import IpRoutingDaemon, IpStack, ip, ip_str
from .sctp import SctpStack
from .tcp import TcpConnection, TcpStack
from .udp import UdpStack


class Host:
    """One baseline host/router: IP + TCP + UDP + SCTP stacks bundled."""

    def __init__(self, node: Node, forwarding: bool = False) -> None:
        self.node = node
        self.name = node.name
        self.ip = IpStack(node, forwarding=forwarding)
        self.tcp = TcpStack(self.ip)
        self.udp = UdpStack(self.ip)
        self.sctp = SctpStack(self.ip)
        self.dns_client: Optional[DnsClient] = None

    def addr(self, ifname: Optional[str] = None) -> int:
        """This host's (first, or named interface's) address."""
        if ifname is not None:
            return self.ip.interfaces[ifname].address
        try:
            return next(iter(self.ip.interfaces.values())).address
        except StopIteration:
            raise RuntimeError(
                f"{self.name} has no interfaces configured") from None

    def use_dns(self, server_ip: int) -> DnsClient:
        """Configure the stub resolver against ``server_ip``."""
        self.dns_client = DnsClient(self.node.engine, self.udp,
                                    self.addr(), server_ip)
        return self.dns_client

    def connect_by_name(self, name: str, port: int,
                        on_conn: Callable[[Optional[TcpConnection]], None]) -> None:
        """The canonical sockets ritual: resolve, then connect to the
        address DNS handed back."""
        if self.dns_client is None:
            raise RuntimeError(f"{self.name} has no resolver configured")

        def resolved(address: Optional[int]) -> None:
            if address is None:
                on_conn(None)
                return
            on_conn(self.tcp.connect(self.addr(), address, port))
        self.dns_client.resolve(name, resolved)


class IpFabric:
    """Builds the baseline stack over a :class:`~repro.sim.network.Network`.

    Assigns each link a /30-style point-to-point subnet from 10.0.0.0/8 and
    runs the global routing daemon — the baseline analogue of
    :mod:`repro.core.fabric`.
    """

    def __init__(self, network: Network,
                 routers: Optional[List[str]] = None) -> None:
        self.network = network
        router_set = set(routers or [])
        self.hosts: Dict[str, Host] = {}
        for name, node in network.nodes.items():
            self.hosts[name] = Host(node, forwarding=name in router_set)
        self._assign_addresses()
        self.daemon = IpRoutingDaemon(
            network, {name: host.ip for name, host in self.hosts.items()})
        self.daemon.converge()

    def _assign_addresses(self) -> None:
        subnet = 0
        for link in self.network.links.values():
            base = ip("10.0.0.0") + subnet * 4
            subnet += 1
            for offset, end in enumerate(link.ends):
                owner = self._owner_host(end)
                if owner is None:
                    continue
                ifname = self._ifname(owner, end)
                owner.ip.add_interface(ifname, base + 1 + offset, 30)

    def _owner_host(self, end) -> Optional[Host]:
        for name, host in self.hosts.items():
            for interface in self.network.node(name).interfaces():
                if interface.end is end:
                    return host
        return None

    def _ifname(self, host: Host, end) -> str:
        for interface in host.node.interfaces():
            if interface.end is end:
                return interface.name
        raise KeyError("interface not found")

    def host(self, name: str) -> Host:
        """Look up a host by node name."""
        return self.hosts[name]

    def reconverge(self, delay: float = 0.0) -> None:
        """Re-run routing (after failures the experiment wants healed)."""
        self.daemon.converge(delay)
