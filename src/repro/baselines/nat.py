"""Network Address Translation — "the kludge of NAT boxes" (§6.5).

The paper's claim: because the IP architecture has *one* public address
space, private addressing needs an in-network rewriting box that (a) keeps
per-flow state, (b) exhausts its port pool under load, and (c) breaks
unsolicited inbound reachability.  In the IPC architecture "private
addresses are the norm" and none of these pathologies exist (experiment
E9 measures the contrast).

The :class:`NatBox` attaches to a router's :class:`IpStack` receive hook:
outbound flows from the private side are rewritten to (public address,
allocated port); inbound packets to the public address are translated back
when — and only when — a mapping exists.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .ipnet import PROTO_TCP, PROTO_UDP, IpPacket, IpStack, prefix_of
from .tcp import TcpSegment
from .udp import UdpDatagram

MapKey = Tuple[int, int, int]  # private ip, private port, proto


class NatBox:
    """Port-translating NAT on one router.

    Parameters
    ----------
    stack:
        The router's IP stack (hooked in place).
    inside_prefix / inside_plen:
        The private address block behind this NAT.
    public_ip:
        The single public address flows are rewritten to.
    port_pool:
        Size of the translation port pool — the exhaustion bound.
    """

    def __init__(self, stack: IpStack, inside_prefix: int, inside_plen: int,
                 public_ip: int, port_pool: int = 1024,
                 port_base: int = 20000) -> None:
        self._stack = stack
        self._inside_prefix = inside_prefix
        self._inside_plen = inside_plen
        self.public_ip = public_ip
        self._port_base = port_base
        self._port_pool = port_pool
        self._out_map: Dict[MapKey, int] = {}
        self._in_map: Dict[Tuple[int, int], MapKey] = {}  # (public port, proto)
        self.translations_out = 0
        self.translations_in = 0
        self.drops_no_mapping = 0
        self.drops_pool_exhausted = 0
        stack.receive_hook = self._hook

    # ------------------------------------------------------------------
    def active_mappings(self) -> int:
        """Current translation-table occupancy (E9 metric)."""
        return len(self._out_map)

    def release(self, private_ip: int, private_port: int, proto: int) -> None:
        """Explicitly expire one mapping (connection closed)."""
        key = (private_ip, private_port, proto)
        public_port = self._out_map.pop(key, None)
        if public_port is not None:
            self._in_map.pop((public_port, proto), None)

    # ------------------------------------------------------------------
    def _is_inside(self, address: int) -> bool:
        return prefix_of(address, self._inside_plen) == self._inside_prefix

    def _ports_of(self, packet: IpPacket) -> Optional[Tuple[int, int]]:
        if packet.proto == PROTO_TCP:
            segment: TcpSegment = packet.payload
            return segment.src_port, segment.dst_port
        if packet.proto == PROTO_UDP:
            datagram: UdpDatagram = packet.payload
            return datagram.src_port, datagram.dst_port
        return None

    def _rewrite(self, packet: IpPacket, src: int, dst: int,
                 src_port: Optional[int], dst_port: Optional[int]) -> IpPacket:
        payload = packet.payload
        if packet.proto == PROTO_TCP:
            old: TcpSegment = payload
            payload = TcpSegment(
                src_port if src_port is not None else old.src_port,
                dst_port if dst_port is not None else old.dst_port,
                old.seq, old.ack, old.flags, old.window, old.length)
        elif packet.proto == PROTO_UDP:
            old_d: UdpDatagram = payload
            payload = UdpDatagram(
                src_port if src_port is not None else old_d.src_port,
                dst_port if dst_port is not None else old_d.dst_port,
                old_d.payload, old_d.payload_size)
        return IpPacket(src, dst, packet.proto, payload, packet.payload_size,
                        ttl=packet.ttl)

    def _hook(self, packet: IpPacket, _ifname: str) -> Optional[IpPacket]:
        ports = self._ports_of(packet)
        if ports is None:
            return packet
        src_port, dst_port = ports
        # outbound: private source leaving toward the public side
        if self._is_inside(packet.src) and not self._is_inside(packet.dst):
            key = (packet.src, src_port, packet.proto)
            public_port = self._out_map.get(key)
            if public_port is None:
                if len(self._out_map) >= self._port_pool:
                    self.drops_pool_exhausted += 1
                    return None
                public_port = self._port_base + len(self._out_map)
                self._out_map[key] = public_port
                self._in_map[(public_port, packet.proto)] = key
            self.translations_out += 1
            return self._rewrite(packet, self.public_ip, packet.dst,
                                 public_port, None)
        # inbound: addressed to our public identity
        if packet.dst == self.public_ip:
            key = self._in_map.get((dst_port, packet.proto))
            if key is None:
                # unsolicited inbound: the reachability breakage E9 counts
                self.drops_no_mapping += 1
                return None
            private_ip, private_port, _proto = key
            self.translations_in += 1
            return self._rewrite(packet, packet.src, private_ip,
                                 None, private_port)
        return packet
