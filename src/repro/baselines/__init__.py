"""The 'current Internet' baseline stack the paper argues against.

Every §6 comparison in the benchmark suite pits the IPC architecture
against this package: IPv4-like forwarding with public interface
addresses, TCP bound to (address, port), DNS returning addresses to
requesters, NAT boxes, Mobile-IP tunnelling, and SCTP-style multihoming.
All of it runs on the same simulated links as :mod:`repro.core`.
"""

from .dns import DnsClient, DnsServer
from .ipnet import (IP_HEADER_BYTES, PROTO_IPIP, PROTO_SCTP, PROTO_TCP,
                    PROTO_UDP, IpInterface, IpPacket, IpRoutingDaemon, IpStack,
                    Route, ip, ip_str, prefix_of)
from .mobileip import HomeAgent, MobileNode
from .nat import NatBox
from .rip import RipDaemon, RipRoute, run_rip_network
from .sctp import SctpAssociation, SctpStack
from .sockets import Host, IpFabric
from .tcp import TcpConnection, TcpSegment, TcpStack
from .udp import UdpStack

__all__ = [
    "ip", "ip_str", "prefix_of", "IpPacket", "IpStack", "IpInterface",
    "IpRoutingDaemon", "Route", "IP_HEADER_BYTES",
    "PROTO_TCP", "PROTO_UDP", "PROTO_IPIP", "PROTO_SCTP",
    "TcpStack", "TcpConnection", "TcpSegment",
    "UdpStack", "DnsServer", "DnsClient",
    "NatBox", "HomeAgent", "MobileNode",
    "RipDaemon", "RipRoute", "run_rip_network",
    "SctpStack", "SctpAssociation",
    "Host", "IpFabric",
]
