"""A DNS-like resolver — name lookup that *returns the address to the
requester*.

The paper contrasts this explicitly (§5.3): "Unlike the current Internet
architecture, which looks up a name in DNS and returns the result to the
requester, here, once an address has been found, the request continues to
the identified IPC process..."  Handing the address back is what makes
every service's location public — the attack surface experiment E7
exploits exactly that.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..sim.engine import Engine, Timer
from .ipnet import ip_str
from .udp import UdpStack

DNS_PORT = 53

_QUERY = "query"
_ANSWER = "answer"
_NXDOMAIN = "nxdomain"


class DnsServer:
    """Authoritative name → address store served over UDP port 53."""

    def __init__(self, udp: UdpStack, server_ip: int) -> None:
        self._udp = udp
        self._ip = server_ip
        self._records: Dict[str, int] = {}
        self.queries_served = 0
        udp.bind(DNS_PORT, self._on_datagram)

    def add_record(self, name: str, address: int) -> None:
        """Publish an A-record."""
        self._records[name] = address

    def remove_record(self, name: str) -> None:
        """Withdraw a record."""
        self._records.pop(name, None)

    def _on_datagram(self, payload: object, _size: int, src_ip: int,
                     src_port: int) -> None:
        kind, name, _addr = payload
        if kind != _QUERY:
            return
        self.queries_served += 1
        address = self._records.get(name)
        if address is None:
            reply = (_NXDOMAIN, name, 0)
        else:
            reply = (_ANSWER, name, address)
        self._udp.sendto(self._ip, DNS_PORT, src_ip, src_port, reply,
                         16 + len(name))


ResolveCallback = Callable[[Optional[int]], None]


class DnsClient:
    """Stub resolver with timeout+retry."""

    def __init__(self, engine: Engine, udp: UdpStack, client_ip: int,
                 server_ip: int, timeout: float = 1.0, retries: int = 3) -> None:
        self._engine = engine
        self._udp = udp
        self._ip = client_ip
        self._server_ip = server_ip
        self._timeout = timeout
        self._retries = retries
        self._port = udp.bind(0, self._on_datagram)
        self._pending: Dict[str, tuple] = {}  # name -> (callback, timer, left)
        self.lookups = 0

    def resolve(self, name: str, callback: ResolveCallback) -> None:
        """Resolve ``name``; callback gets the address or None."""
        self.lookups += 1
        timer = Timer(self._engine, lambda: self._on_timeout(name),
                      label="dns.timeout")
        self._pending[name] = (callback, timer, self._retries)
        self._send_query(name)
        timer.start(self._timeout)

    def _send_query(self, name: str) -> None:
        self._udp.sendto(self._ip, self._port, self._server_ip, DNS_PORT,
                         (_QUERY, name, 0), 16 + len(name))

    def _on_datagram(self, payload: object, _size: int, _src_ip: int,
                     _src_port: int) -> None:
        kind, name, address = payload
        entry = self._pending.pop(name, None)
        if entry is None:
            return
        callback, timer, _left = entry
        timer.cancel()
        callback(address if kind == _ANSWER else None)

    def _on_timeout(self, name: str) -> None:
        entry = self._pending.get(name)
        if entry is None:
            return
        callback, timer, left = entry
        if left <= 0:
            del self._pending[name]
            callback(None)
            return
        self._pending[name] = (callback, timer, left - 1)
        self._send_query(name)
        timer.start(self._timeout)
