"""An SCTP-like multihomed transport — the patch the paper critiques.

§6.3: "SCTP supports the ability to change the IP address without
disrupting the transport connection.  However, there is no easy way for
SCTP to know that a host interface has failed [...] as this requires SCTP
to do at least degenerate routing."

So this baseline does what real SCTP does: the association knows several
(local, remote) address pairs ("paths"), sends data on the primary,
heartbeats the alternates, counts per-path errors, and fails over only
after ``path_max_retrans`` consecutive losses — i.e. the transport layer
performs its own degenerate routing on end-to-end timeouts, paying a
detection latency of several RTOs.  Experiment E4 compares that recovery
time against the DIF's PoA re-selection.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.engine import Engine, PeriodicTask, Timer
from .ipnet import PROTO_SCTP, IpPacket, IpStack

SCTP_HEADER_BYTES = 12
CHUNK_HEADER_BYTES = 16

INIT = "INIT"
INIT_ACK = "INIT-ACK"
DATA = "DATA"
SACK = "SACK"
HEARTBEAT = "HEARTBEAT"
HEARTBEAT_ACK = "HEARTBEAT-ACK"


class SctpChunk:
    """One SCTP chunk (only the fields the simulation needs)."""

    __slots__ = ("kind", "tsn", "length", "cum_tsn", "addresses", "path_id")

    def __init__(self, kind: str, tsn: int = 0, length: int = 0,
                 cum_tsn: int = 0, addresses: Tuple[int, ...] = (),
                 path_id: int = 0) -> None:
        self.kind = kind
        self.tsn = tsn
        self.length = length
        self.cum_tsn = cum_tsn
        self.addresses = addresses
        self.path_id = path_id

    def wire_size(self) -> int:
        return CHUNK_HEADER_BYTES + self.length + 4 * len(self.addresses)


class SctpPacket:
    """SCTP common header + one chunk."""

    __slots__ = ("src_port", "dst_port", "chunk")

    def __init__(self, src_port: int, dst_port: int, chunk: SctpChunk) -> None:
        self.src_port = src_port
        self.dst_port = dst_port
        self.chunk = chunk

    def wire_size(self) -> int:
        return SCTP_HEADER_BYTES + self.chunk.wire_size()


class SctpPath:
    """One (local address, remote address) pair of an association."""

    __slots__ = ("local_ip", "remote_ip", "active", "error_count",
                 "heartbeat_outstanding")

    def __init__(self, local_ip: int, remote_ip: int) -> None:
        self.local_ip = local_ip
        self.remote_ip = remote_ip
        self.active = True
        self.error_count = 0
        self.heartbeat_outstanding = False


class SctpAssociation:
    """One endpoint of an SCTP-like association."""

    MSS = 1400

    def __init__(self, stack: "SctpStack", local_port: int, remote_port: int,
                 paths: List[Tuple[int, int]],
                 heartbeat_interval: float = 1.0,
                 path_max_retrans: int = 3,
                 rto_initial: float = 0.5, rto_max: float = 8.0) -> None:
        self._stack = stack
        self._engine: Engine = stack.engine
        self.local_port = local_port
        self.remote_port = remote_port
        self.paths = [SctpPath(l, r) for l, r in paths]
        self.primary_index = 0
        self.path_max_retrans = path_max_retrans
        self.established = False
        self._rto = rto_initial
        self._rto_initial = rto_initial
        self._rto_max = rto_max
        # data transfer
        self._next_tsn = 0
        self._cum_acked = 0
        self._inflight: Dict[int, Tuple[int, int]] = {}  # tsn -> (length, path)
        self._retx_timer = Timer(self._engine, self._on_data_timeout,
                                 label="sctp.rto")
        self._rcv_cum = 0
        self._rcv_buffer: Dict[int, int] = {}
        # heartbeats
        self._hb_task = PeriodicTask(self._engine, heartbeat_interval,
                                     self._heartbeat_tick, label="sctp.hb")
        # callbacks / stats
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[int], None]] = None
        self.failover_events: List[Tuple[float, int, int]] = []  # (t, old, new)
        self.messages_delivered = 0
        self.retransmissions = 0

    # ------------------------------------------------------------------
    @property
    def primary(self) -> SctpPath:
        """The path data currently uses."""
        return self.paths[self.primary_index]

    def associate(self, attempts: int = 5) -> None:
        """Active open: INIT carrying our address list (retried on loss)."""
        if self.established or attempts <= 0:
            return
        addresses = tuple(p.local_ip for p in self.paths)
        self._send_chunk(self.primary, SctpChunk(INIT, addresses=addresses))
        self._engine.call_later(self._rto_initial * 2, self.associate,
                                attempts - 1)

    def start_heartbeats(self) -> None:
        """Begin path monitoring (called once established)."""
        self._hb_task.start()

    def send_message(self, length: int) -> bool:
        """Submit one message of ``length`` bytes."""
        if not self.established:
            return False
        tsn = self._next_tsn
        self._next_tsn += 1
        self._inflight[tsn] = (length, self.primary_index)
        self._send_chunk(self.primary, SctpChunk(DATA, tsn=tsn, length=length))
        if not self._retx_timer.running:
            self._retx_timer.start(self._rto)
        return True

    # ------------------------------------------------------------------
    # Path management
    # ------------------------------------------------------------------
    def _record_path_error(self, path: SctpPath) -> None:
        path.error_count += 1
        if path.active and path.error_count > self.path_max_retrans:
            path.active = False
            if path is self.primary:
                self._failover()

    def _failover(self) -> None:
        old = self.primary_index
        for index, path in enumerate(self.paths):
            if path.active:
                self.primary_index = index
                self.failover_events.append((self._engine.now, old, index))
                return
        # no active path: association is stuck until a heartbeat revives one

    def _path_alive(self, path: SctpPath) -> None:
        path.error_count = 0
        if not path.active:
            path.active = True
            if not self.primary.active:
                self._failover()

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _heartbeat_tick(self) -> None:
        for index, path in enumerate(self.paths):
            if path.heartbeat_outstanding:
                self._record_path_error(path)
            path.heartbeat_outstanding = True
            self._send_chunk(path, SctpChunk(HEARTBEAT, path_id=index))

    def _on_data_timeout(self) -> None:
        if not self._inflight:
            return
        self._record_path_error(self.primary)
        self._rto = min(self._rto_max, self._rto * 2)
        tsn = min(self._inflight)
        self.retransmissions += 1
        # SCTP retransmits on an alternate active path when there is one
        retx_path = self.primary
        retx_index = self.primary_index
        for index, path in enumerate(self.paths):
            if path.active and path is not self.primary:
                retx_path = path
                retx_index = index
                break
        length, _old_path = self._inflight[tsn]
        self._inflight[tsn] = (length, retx_index)
        self._send_chunk(retx_path, SctpChunk(DATA, tsn=tsn, length=length))
        self._retx_timer.start(self._rto)

    # ------------------------------------------------------------------
    # Wire
    # ------------------------------------------------------------------
    def _send_chunk(self, path: SctpPath, chunk: SctpChunk) -> None:
        packet_obj = SctpPacket(self.local_port, self.remote_port, chunk)
        self._stack.ip.send(IpPacket(path.local_ip, path.remote_ip,
                                     PROTO_SCTP, packet_obj,
                                     packet_obj.wire_size()))

    def handle(self, packet: IpPacket) -> None:
        """Process one inbound SCTP packet for this association."""
        sctp: SctpPacket = packet.payload
        chunk = sctp.chunk
        arrival_path = self._path_for(packet.dst, packet.src)
        if chunk.kind == INIT:
            self._learn_paths(packet, chunk.addresses)
            addresses = tuple(p.local_ip for p in self.paths)
            self._send_chunk(self.primary, SctpChunk(INIT_ACK,
                                                     addresses=addresses))
            self._establish()
        elif chunk.kind == INIT_ACK:
            self._learn_paths(packet, chunk.addresses)
            self._establish()
        elif chunk.kind == HEARTBEAT:
            reply_path = arrival_path or self.primary
            self._send_chunk(reply_path, SctpChunk(HEARTBEAT_ACK,
                                                   path_id=chunk.path_id))
        elif chunk.kind == HEARTBEAT_ACK:
            if 0 <= chunk.path_id < len(self.paths):
                path = self.paths[chunk.path_id]
                path.heartbeat_outstanding = False
                self._path_alive(path)
        elif chunk.kind == DATA:
            self._on_data_chunk(chunk, arrival_path)
        elif chunk.kind == SACK:
            self._on_sack(chunk)

    def _path_for(self, local_ip: int, remote_ip: int) -> Optional[SctpPath]:
        for path in self.paths:
            if path.local_ip == local_ip and path.remote_ip == remote_ip:
                return path
        return None

    def _learn_paths(self, packet: IpPacket, remote_addresses: tuple) -> None:
        if not self.paths:
            return
        local_addresses = [p.local_ip for p in self.paths]
        remotes = list(remote_addresses) or [packet.src]
        pairs = list(zip(local_addresses, remotes))
        # extend with cross pairs when counts differ
        if len(pairs) < len(local_addresses):
            for local in local_addresses[len(pairs):]:
                pairs.append((local, remotes[-1]))
        self.paths = [SctpPath(l, r) for l, r in pairs]
        if self.primary_index >= len(self.paths):
            self.primary_index = 0

    def _establish(self) -> None:
        if self.established:
            return
        self.established = True
        self._rto = self._rto_initial
        self.start_heartbeats()
        if self.on_established is not None:
            self.on_established()

    def _on_data_chunk(self, chunk: SctpChunk,
                       arrival_path: Optional[SctpPath]) -> None:
        if chunk.tsn >= self._rcv_cum:
            self._rcv_buffer.setdefault(chunk.tsn, chunk.length)
        delivered = 0
        while self._rcv_cum in self._rcv_buffer:
            delivered += self._rcv_buffer.pop(self._rcv_cum)
            self._rcv_cum += 1
            self.messages_delivered += 1
        if delivered and self.on_data is not None:
            self.on_data(delivered)
        reply_path = arrival_path or self.primary
        self._send_chunk(reply_path, SctpChunk(SACK, cum_tsn=self._rcv_cum))

    def _on_sack(self, chunk: SctpChunk) -> None:
        progressed = False
        acked_paths = set()
        for tsn in list(self._inflight):
            if tsn < chunk.cum_tsn:
                _length, path_index = self._inflight.pop(tsn)
                acked_paths.add(path_index)
                progressed = True
        if progressed:
            self._cum_acked = chunk.cum_tsn
            self._rto = self._rto_initial
            # credit only the paths whose transmissions were acknowledged;
            # a dead primary keeps accumulating errors toward failover
            for index in acked_paths:
                if 0 <= index < len(self.paths):
                    self.paths[index].error_count = 0
            self._retx_timer.cancel()
            if self._inflight:
                self._retx_timer.start(self._rto)


class SctpStack:
    """SCTP demux for one node."""

    def __init__(self, ip_stack: IpStack) -> None:
        self.ip = ip_stack
        self.engine = ip_stack.engine
        self._ephemeral = itertools.count(40000)
        self._listeners: Dict[int, Callable[[SctpAssociation], None]] = {}
        self._associations: Dict[Tuple[int, int], SctpAssociation] = {}
        ip_stack.register_protocol(PROTO_SCTP, self._on_packet)

    def listen(self, port: int, local_ips: List[int],
               on_accept: Callable[[SctpAssociation], None]) -> None:
        """Passive open on ``port`` with our address list."""
        self._listeners[port] = on_accept
        self._listener_ips = list(local_ips)

    def associate(self, local_ips: List[int], remote_ip: int,
                  remote_port: int) -> SctpAssociation:
        """Active open toward ``remote_ip:remote_port``."""
        local_port = next(self._ephemeral)
        paths = [(local, remote_ip) for local in local_ips]
        association = SctpAssociation(self, local_port, remote_port, paths)
        self._associations[(local_port, remote_port)] = association
        association.associate()
        return association

    def _on_packet(self, packet: IpPacket, _stack: IpStack) -> None:
        sctp: SctpPacket = packet.payload
        key = (sctp.dst_port, sctp.src_port)
        association = self._associations.get(key)
        if association is not None:
            association.handle(packet)
            return
        if sctp.chunk.kind == INIT and sctp.dst_port in self._listeners:
            paths = [(local, packet.src) for local in self._listener_ips]
            association = SctpAssociation(self, sctp.dst_port, sctp.src_port,
                                          paths)
            self._associations[key] = association
            self._listeners[sctp.dst_port](association)
            association.handle(packet)
