"""A TCP-like transport bound to (address, port) pairs.

This is the paper's foil for §6.3/§6.4: the connection's identity *is*
``(local address, local port, remote address, remote port)``.  When the
interface holding that address dies, no routing can save the connection —
retransmissions back off and the connection aborts.  Contrast with EFCP
over a DIF, where the flow is bound to node addresses and PoA re-selection
happens below it.

Implemented machinery: three-way handshake, byte-sequence sliding window,
cumulative acks, RTO with exponential backoff (RFC 6298-style estimate),
slow-start/congestion-avoidance AIMD, FIN/RST teardown, abort after
``max_retries`` consecutive timeouts.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.engine import Engine, Timer
from .ipnet import PROTO_TCP, IpPacket, IpStack, ip_str

TCP_HEADER_BYTES = 20

SYN = "SYN"
SYNACK = "SYN+ACK"
ACKF = "ACK"
FIN = "FIN"
RST = "RST"

CLOSED = "closed"
LISTEN = "listen"
SYN_SENT = "syn-sent"
SYN_RCVD = "syn-rcvd"
ESTABLISHED = "established"
FIN_WAIT = "fin-wait"
CLOSE_WAIT = "close-wait"
ABORTED = "aborted"


class TcpSegment:
    """One TCP segment (payload bytes are synthetic: only length travels)."""

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "window",
                 "length")

    def __init__(self, src_port: int, dst_port: int, seq: int, ack: int,
                 flags: str, window: int, length: int = 0) -> None:
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window
        self.length = length

    def wire_size(self) -> int:
        return TCP_HEADER_BYTES + self.length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TcpSegment {self.flags} {self.src_port}->{self.dst_port} "
                f"seq={self.seq} ack={self.ack} len={self.length}>")


ConnKey = Tuple[int, int, int, int]  # local ip, local port, remote ip, remote port


class TcpConnection:
    """One endpoint of a TCP connection."""

    MSS = 1400

    def __init__(self, stack: "TcpStack", local_ip: int, local_port: int,
                 remote_ip: int, remote_port: int, passive: bool = False,
                 max_retries: int = 8, rto_initial: float = 0.5,
                 rto_max: float = 16.0) -> None:
        self._stack = stack
        self._engine: Engine = stack.engine
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.state = LISTEN if passive else CLOSED
        self.max_retries = max_retries
        # send side (byte sequence space)
        self.snd_una = 0
        self.snd_nxt = 0
        self._send_buffer = 0          # bytes accepted but not yet sent
        self._inflight: Dict[int, Tuple[int, float, bool]] = {}  # seq -> (len, t, retx)
        self.cwnd = float(self.MSS * 4)
        self.ssthresh = float(1 << 30)
        self._rto = rto_initial
        self._rto_initial = rto_initial
        self._rto_max = rto_max
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._retries = 0
        self._timer = Timer(self._engine, self._on_timeout, label="tcp.rto")
        # receive side
        self.rcv_nxt = 0
        self._reorder: Dict[int, int] = {}  # seq -> length
        # callbacks
        self.on_connected: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[int], None]] = None  # bytes delivered
        self.on_aborted: Optional[Callable[[], None]] = None
        # stats
        self.bytes_delivered = 0
        self.segments_sent = 0
        self.retransmissions = 0

    # ------------------------------------------------------------------
    @property
    def established(self) -> bool:
        """True while data may flow."""
        return self.state == ESTABLISHED

    @property
    def key(self) -> ConnKey:
        return (self.local_ip, self.local_port, self.remote_ip, self.remote_port)

    # ------------------------------------------------------------------
    # Open/close
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Active open (client side)."""
        self.state = SYN_SENT
        self._send_segment(SYN, self.snd_nxt, 0)
        self._timer.start(self._rto)

    def close(self) -> None:
        """Graceful local close (simplified FIN, no TIME_WAIT modelling)."""
        if self.state == ESTABLISHED:
            self.state = FIN_WAIT
            self._send_segment(FIN, self.snd_nxt, self.rcv_nxt)

    def abort(self) -> None:
        """Local abort: RST to peer, connection dead."""
        if self.state in (CLOSED, ABORTED):
            return
        self._send_segment(RST, self.snd_nxt, self.rcv_nxt)
        self._die()

    def _die(self) -> None:
        self.state = ABORTED
        self._timer.cancel()
        self._inflight.clear()
        self._stack._forget(self)
        if self.on_aborted is not None:
            self.on_aborted()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, length: int) -> bool:
        """Submit ``length`` bytes of application data."""
        if self.state != ESTABLISHED:
            return False
        self._send_buffer += length
        self._pump()
        return True

    def _pump(self) -> None:
        while self._send_buffer > 0:
            inflight = self.snd_nxt - self.snd_una
            window = int(self.cwnd)
            if inflight >= window:
                return
            chunk = min(self.MSS, self._send_buffer, window - inflight)
            if chunk <= 0:
                return
            seq = self.snd_nxt
            self.snd_nxt += chunk
            self._send_buffer -= chunk
            self._inflight[seq] = (chunk, self._engine.now, False)
            self._send_segment(ACKF, seq, self.rcv_nxt, chunk)
            if not self._timer.running:
                self._timer.start(self._rto)

    def _send_segment(self, flags: str, seq: int, ack: int,
                      length: int = 0) -> None:
        segment = TcpSegment(self.local_port, self.remote_port, seq, ack,
                             flags, 65535, length)
        self.segments_sent += 1
        packet = IpPacket(self.local_ip, self.remote_ip, PROTO_TCP, segment,
                          segment.wire_size())
        self._stack.ip.send(packet)

    # ------------------------------------------------------------------
    # Timeout / congestion
    # ------------------------------------------------------------------
    def _on_timeout(self) -> None:
        if self.state == SYN_SENT:
            self._retries += 1
            if self._retries > self.max_retries:
                self._die()
                return
            self._rto = min(self._rto_max, self._rto * 2)
            self._send_segment(SYN, 0, 0)
            self._timer.start(self._rto)
            return
        if not self._inflight:
            return
        self._retries += 1
        if self._retries > self.max_retries:
            self._die()   # TCP gives up: the §6.3 failure mode
            return
        self.ssthresh = max(2.0 * self.MSS, self.cwnd / 2)
        self.cwnd = float(self.MSS)
        self._rto = min(self._rto_max, self._rto * 2)
        seq = min(self._inflight)
        length, _t, _r = self._inflight[seq]
        self._inflight[seq] = (length, self._engine.now, True)
        self.retransmissions += 1
        self._send_segment(ACKF, seq, self.rcv_nxt, length)
        self._timer.start(self._rto)

    def _rtt_sample(self, rtt: float) -> None:
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt
        self._rto = min(self._rto_max,
                        max(0.2, self._srtt + 4 * self._rttvar))

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------
    def handle(self, segment: TcpSegment) -> None:
        """Process one inbound segment addressed to this connection."""
        if segment.flags == RST:
            self._die()
            return
        if self.state == LISTEN and segment.flags == SYN:
            self.rcv_nxt = segment.seq
            self.state = SYN_RCVD
            self._send_segment(SYNACK, self.snd_nxt, self.rcv_nxt)
            return
        if self.state == SYN_SENT and segment.flags == SYNACK:
            self.state = ESTABLISHED
            self._retries = 0
            self._timer.cancel()
            self._send_segment(ACKF, self.snd_nxt, self.rcv_nxt)
            if self.on_connected is not None:
                self.on_connected()
            return
        if self.state == SYN_RCVD and segment.flags == ACKF:
            self.state = ESTABLISHED
            if self.on_connected is not None:
                self.on_connected()
            # fall through: the ACK may carry data
        if segment.flags == FIN:
            self.state = CLOSE_WAIT
            self._send_segment(ACKF, self.snd_nxt, segment.seq)
            return
        if self.state not in (ESTABLISHED, FIN_WAIT, CLOSE_WAIT):
            return
        self._handle_ack(segment.ack)
        if segment.length > 0:
            self._handle_data(segment)

    def _handle_ack(self, ack: int) -> None:
        if ack <= self.snd_una:
            return
        now = self._engine.now
        for seq in sorted(self._inflight):
            length, sent_at, retransmitted = self._inflight[seq]
            if seq + length <= ack:
                del self._inflight[seq]
                if not retransmitted:
                    self._rtt_sample(now - sent_at)
                if self.cwnd < self.ssthresh:
                    self.cwnd += length              # slow start
                else:
                    self.cwnd += self.MSS * length / self.cwnd
        self.snd_una = ack
        self._retries = 0
        self._timer.cancel()
        if self._inflight:
            self._timer.start(self._rto)
        self._pump()

    def _handle_data(self, segment: TcpSegment) -> None:
        if segment.seq < self.rcv_nxt:
            self._send_segment(ACKF, self.snd_nxt, self.rcv_nxt)
            return
        self._reorder[segment.seq] = segment.length
        delivered = 0
        while self.rcv_nxt in self._reorder:
            length = self._reorder.pop(self.rcv_nxt)
            self.rcv_nxt += length
            delivered += length
        if delivered:
            self.bytes_delivered += delivered
            if self.on_data is not None:
                self.on_data(delivered)
        self._send_segment(ACKF, self.snd_nxt, self.rcv_nxt)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TcpConnection {ip_str(self.local_ip)}:{self.local_port}->"
                f"{ip_str(self.remote_ip)}:{self.remote_port} {self.state}>")


class TcpStack:
    """The TCP layer of one node: listeners and connection demux."""

    def __init__(self, ip_stack: IpStack) -> None:
        self.ip = ip_stack
        self.engine = ip_stack.engine
        self._ephemeral = itertools.count(49152)
        self._listeners: Dict[int, Callable[[TcpConnection], None]] = {}
        self._connections: Dict[ConnKey, TcpConnection] = {}
        ip_stack.register_protocol(PROTO_TCP, self._on_packet)

    def listen(self, port: int,
               on_accept: Callable[[TcpConnection], None]) -> None:
        """Register a passive listener on a well-known port — the very
        construct the paper's port IDs eliminate."""
        self._listeners[port] = on_accept

    def connect(self, local_ip: int, remote_ip: int,
                remote_port: int) -> TcpConnection:
        """Active open from ``local_ip`` (binds the connection to it)."""
        conn = TcpConnection(self, local_ip, next(self._ephemeral),
                             remote_ip, remote_port)
        self._connections[conn.key] = conn
        conn.connect()
        return conn

    def connection_count(self) -> int:
        """Live connections on this stack."""
        return len(self._connections)

    def _forget(self, conn: TcpConnection) -> None:
        self._connections.pop(conn.key, None)

    def _on_packet(self, packet: IpPacket, _stack: IpStack) -> None:
        segment: TcpSegment = packet.payload
        key = (packet.dst, segment.dst_port, packet.src, segment.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.handle(segment)
            return
        if segment.flags == SYN and segment.dst_port in self._listeners:
            conn = TcpConnection(self, packet.dst, segment.dst_port,
                                 packet.src, segment.src_port, passive=True)
            self._connections[conn.key] = conn
            conn.handle(segment)
            self._listeners[segment.dst_port](conn)
            return
        # no matching connection: RST (and a scanner learns the port is closed)
        if segment.flags != RST:
            rst = TcpSegment(segment.dst_port, segment.src_port, 0,
                             segment.seq, RST, 0)
            self.ip.send(IpPacket(packet.dst, packet.src, PROTO_TCP, rst,
                                  rst.wire_size()))
