"""Mobile-IP (RFC 3344 style) — the baseline for the mobility experiment.

The paper (§6.4): "in the Mobile-IP solution, the IP address of the mobile
is treated as a 'special' case by the home and foreign routers which
themselves constitute two single points of failure."  The mechanics
reproduced here:

* the mobile keeps its **home address**; correspondents always send there;
* a **home agent** on the home router intercepts those packets and tunnels
  them (IP-in-IP) to the mobile's current **care-of address**;
* on every move the mobile must register its new care-of address with the
  (possibly distant) home agent before traffic resumes — the handoff
  outage E5 measures — and all traffic takes the triangle route
  correspondent → home agent → mobile regardless of where the endpoints
  actually are (the path-stretch E5 measures).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..sim.engine import Engine, Timer
from .ipnet import PROTO_IPIP, IpPacket, IpStack
from .udp import UdpStack

MOBILE_IP_PORT = 434

_REGISTER = "register"
_REGISTER_ACK = "register-ack"


class HomeAgent:
    """The home-network router function intercepting a mobile's traffic."""

    def __init__(self, stack: IpStack, udp: UdpStack, agent_ip: int) -> None:
        self._stack = stack
        self._udp = udp
        self.agent_ip = agent_ip
        self._bindings: Dict[int, int] = {}  # home address -> care-of address
        self.registrations = 0
        self.packets_tunneled = 0
        udp.bind(MOBILE_IP_PORT, self._on_registration)
        stack.receive_hook = self._hook

    def binding_for(self, home_address: int) -> Optional[int]:
        """Current care-of address of a mobile (None when at home)."""
        return self._bindings.get(home_address)

    def _on_registration(self, payload: object, _size: int, src_ip: int,
                         src_port: int) -> None:
        kind, home_address, care_of = payload
        if kind != _REGISTER:
            return
        self.registrations += 1
        if care_of == 0:
            self._bindings.pop(home_address, None)  # deregistration: at home
        else:
            self._bindings[home_address] = care_of
        self._udp.sendto(self.agent_ip, MOBILE_IP_PORT, src_ip, src_port,
                         (_REGISTER_ACK, home_address, care_of), 24)

    def _hook(self, packet: IpPacket, _ifname: str) -> Optional[IpPacket]:
        care_of = self._bindings.get(packet.dst)
        if care_of is None:
            return packet
        # intercept and tunnel: outer header to the care-of address
        self.packets_tunneled += 1
        return IpPacket(self.agent_ip, care_of, PROTO_IPIP, packet,
                        packet.wire_size())


class MobileNode:
    """The mobile host's Mobile-IP client: registration + decapsulation."""

    def __init__(self, engine: Engine, stack: IpStack, udp: UdpStack,
                 home_address: int, home_agent_ip: int,
                 registration_timeout: float = 1.0,
                 max_retries: int = 5) -> None:
        self._engine = engine
        self._stack = stack
        self._udp = udp
        self.home_address = home_address
        self.home_agent_ip = home_agent_ip
        self._timeout = registration_timeout
        self._max_retries = max_retries
        self.care_of: Optional[int] = None
        self.registered = False
        self.registrations_sent = 0
        self.registration_rtts: list = []
        self._pending_started: Optional[float] = None
        self._retries = 0
        self._timer = Timer(engine, self._on_timeout, label="mip.reg")
        self._port = udp.bind(0, self._on_datagram)
        self.on_registered: Optional[Callable[[], None]] = None
        stack.register_protocol(PROTO_IPIP, self._on_tunneled)
        #: inner packets delivered after decapsulation go here
        self.tunnel_deliveries = 0

    # ------------------------------------------------------------------
    def move_to(self, care_of_address: int) -> None:
        """Attach at a foreign network: adopt the care-of address and
        (re)register with the home agent.  Until the ACK arrives the mobile
        is unreachable — the Mobile-IP handoff outage."""
        self.care_of = care_of_address
        self.registered = False
        self._retries = 0
        self._pending_started = self._engine.now
        self._send_registration()

    def return_home(self) -> None:
        """Deregister (binding removed at the home agent)."""
        self.care_of = None
        self.registered = False
        self._udp.sendto(self.current_address(), self._port,
                         self.home_agent_ip, MOBILE_IP_PORT,
                         (_REGISTER, self.home_address, 0), 24)

    def current_address(self) -> int:
        """The address the mobile can actually transmit from."""
        return self.care_of if self.care_of is not None else self.home_address

    def _send_registration(self) -> None:
        assert self.care_of is not None
        self.registrations_sent += 1
        self._udp.sendto(self.care_of, self._port, self.home_agent_ip,
                         MOBILE_IP_PORT,
                         (_REGISTER, self.home_address, self.care_of), 24)
        self._timer.start(self._timeout)

    def _on_timeout(self) -> None:
        if self.registered or self.care_of is None:
            return
        self._retries += 1
        if self._retries > self._max_retries:
            return  # unreachable home agent: the single point of failure
        self._send_registration()

    def _on_datagram(self, payload: object, _size: int, _src: int,
                     _sport: int) -> None:
        kind, home_address, care_of = payload
        if kind != _REGISTER_ACK or home_address != self.home_address:
            return
        if care_of == self.care_of or care_of == 0:
            self.registered = True
            self._timer.cancel()
            if self._pending_started is not None:
                self.registration_rtts.append(
                    self._engine.now - self._pending_started)
                self._pending_started = None
            if self.on_registered is not None:
                self.on_registered()

    def _on_tunneled(self, packet: IpPacket, stack: IpStack) -> None:
        """Decapsulate IP-in-IP and deliver the inner packet locally."""
        inner: IpPacket = packet.payload
        self.tunnel_deliveries += 1
        handler = stack.protocols.get(inner.proto)
        if handler is not None and inner.proto != PROTO_IPIP:
            handler(inner, stack)
