"""The socket shim: a real connection presented as a shim DIF.

"The IPC layers repeat until the IPC facility is tailored to the
physical medium" (§4) — here the medium is an operating-system socket.
:class:`SocketShim` *is* :class:`~repro.core.shim.ShimIpcp`: same frame
kinds, same allocation handshake, same flow-id parity, same provider
interface.  The only substitution is the link: a :class:`SocketLink`
duck-types the simulated :class:`~repro.sim.link.Link` (two ends, a
capacity, attach/send) over one framed byte channel, so the inherited
shim logic cannot tell it left the simulator.

Inbound bytes are decoded and shape-checked at the engine boundary; a
malformed frame counts against :attr:`SocketLink.wire_errors` and
closes the connection — it never raises into the asyncio loop and never
reaches the stack above.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from ..core.names import DifName
from ..core.shim import ShimIpcp
from ..sim.engine import Engine
from ..shard.framing import FrameFormatError
from .driver import AsyncEngineDriver
from .wire import decode_shim_frame, frame_to_wire

#: Nominal capacity a socket shim reports to the stack above.  Loopback
#: and LAN paths are far faster than the simulated links; what matters
#: is that EFCP pacing treats the medium as effectively unconstrained.
GATEWAY_CAPACITY_BPS = 1e9


class SocketLinkEnd:
    """One nominal end of a :class:`SocketLink` (LinkEnd duck type)."""

    __slots__ = ("link", "index", "name", "_receiver")

    def __init__(self, link: "SocketLink", index: int) -> None:
        self.link = link
        self.index = index
        self.name = f"{link.name}[{index}]"
        self._receiver: Optional[Callable[[Any, int], None]] = None

    def attach(self, receiver: Callable[[Any, int], None]) -> None:
        self._receiver = receiver

    def send(self, payload: Any, size: int) -> bool:
        return self.link.send_from(self.index, payload, size)

    @property
    def peer(self) -> "SocketLinkEnd":
        return self.link.ends[1 - self.index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SocketLinkEnd {self.name}>"


class SocketLink:
    """A Link duck type whose wire is one framed byte channel.

    Only the *local* end (the one this process's shim drives) is
    functional; the far end object exists so the inherited side
    detection (``link_end is link.ends[0]``) and flow-id parity work
    exactly as over a simulated link.

    ``tracked`` channels report each frame to the driver's inflight
    accounting — the conformance harness runs both endpoints in one
    process and needs fast-forward gating; a serving gateway (remote
    peer, untracked) must not, or the counter would never drain.
    """

    __slots__ = ("name", "capacity_bps", "ends", "_local", "_channel",
                 "_driver", "_tracked", "_on_wire_error", "wire_errors",
                 "last_error")

    def __init__(self, name: str, channel: Any, local_side: int,
                 driver: AsyncEngineDriver,
                 capacity_bps: float = GATEWAY_CAPACITY_BPS,
                 tracked: bool = False,
                 on_wire_error: Optional[Callable[[Exception], None]] = None
                 ) -> None:
        if local_side not in (0, 1):
            raise ValueError(f"local_side must be 0 or 1, got {local_side!r}")
        self.name = name
        self.capacity_bps = capacity_bps
        self.ends = (SocketLinkEnd(self, 0), SocketLinkEnd(self, 1))
        self._local = self.ends[local_side]
        self._channel = channel
        self._driver = driver
        self._tracked = tracked
        self._on_wire_error = on_wire_error
        self.wire_errors = 0
        self.last_error: Optional[str] = None
        channel.set_receiver(self._on_wire_bytes)

    @property
    def channel(self) -> Any:
        return self._channel

    def send_from(self, index: int, payload: Any, size: int) -> bool:
        if self.ends[index] is not self._local:
            raise RuntimeError(f"{self.name}: only the local end "
                               f"[{self._local.index}] can send")
        ok = self._channel.send(frame_to_wire(payload))
        if ok and self._tracked:
            self._driver.io_begin()
        return ok

    # -- loop context ---------------------------------------------------
    def _on_wire_bytes(self, buf: bytes) -> None:
        if self._tracked:
            self._driver.io_end()
        self._driver.inject(self._deliver, buf, label="gw.rx")

    # -- engine context -------------------------------------------------
    def _deliver(self, buf: bytes) -> None:
        try:
            frame = decode_shim_frame(buf)
        except FrameFormatError as exc:
            self._contain(exc)
            return
        receiver = self._local._receiver
        if receiver is None:
            return
        try:
            receiver(frame, len(buf))
        except Exception as exc:   # a decodable frame the stack rejects
            # (e.g. an alloc whose payload is not a name pair) must tear
            # down this connection, not the event loop
            self._contain(exc)

    def _contain(self, exc: Exception) -> None:
        self.wire_errors += 1
        self.last_error = f"{type(exc).__name__}: {exc}"
        self._channel.close()
        if self._on_wire_error is not None:
            self._on_wire_error(exc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SocketLink {self.name} errors={self.wire_errors}>"


class SocketShim(ShimIpcp):
    """A shim IPC process whose link end is a real socket channel."""

    def __init__(self, engine: Engine, dif_name: "DifName | str",
                 system_name: str, channel: Any, side: int,
                 driver: AsyncEngineDriver,
                 port_ids: Optional[itertools.count] = None,
                 capacity_bps: float = GATEWAY_CAPACITY_BPS,
                 tracked: bool = False,
                 on_wire_error: Optional[Callable[[Exception], None]] = None
                 ) -> None:
        if not isinstance(dif_name, DifName):
            dif_name = DifName(dif_name)
        link = SocketLink(f"gw:{dif_name}", channel, side, driver,
                          capacity_bps=capacity_bps, tracked=tracked,
                          on_wire_error=on_wire_error)
        super().__init__(engine, dif_name, system_name, link.ends[side],
                         port_ids=port_ids)
        self.link = link
        self.driver = driver
        # channel teardown (loop context) -> flow teardown (engine context)
        channel.on_close(
            lambda: driver.inject(self.connection_lost, label="gw.closed"))

    @property
    def wire_errors(self) -> int:
        return self.link.wire_errors

    def connection_lost(self) -> None:
        """Fail pending and release active flows after the socket died.
        Idempotent — close notifications can race deallocation."""
        pending = list(self._pending.values())
        self._pending.clear()
        for flow in pending:
            flow.provider_failed("connection-lost")
        active = list(self._flows.values())
        self._flows.clear()
        for flow in active:
            flow.provider_released()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SocketShim {self.dif_name} on {self.system_name} "
                f"flows={len(self._flows)}>")
