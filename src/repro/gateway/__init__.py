"""Live-traffic gateway: the core stack over real sockets.

The paper's central claim is that a DIF runs unchanged over any lower
medium via shim DIFs (§4).  This package cashes that claim in for real
operating-system sockets: a :class:`SocketShim` presents one UDP peer or
one length-prefixed TCP connection through the exact provider interface
the simulated :class:`~repro.core.shim.ShimIpcp` presents, an
:class:`AsyncEngineDriver` maps the discrete-event engine onto an
asyncio event loop, and a :class:`GatewayServer` fronts the existing
``apps/`` services (echo, RPC, pubsub) behind flow allocation by name —
the stack above the shim never learns which medium it is on.

The conformance harness (:mod:`repro.gateway.conformance`) is the
receipt: a socket-run echo/RPC session produces a protocol transcript
(shim frame kinds, flow-allocation sequence, RIEP exchanges) identical
to the simulated run of the same spec, pinned by a golden fingerprint.
"""

from .conformance import (GatewayConformanceError, SessionSpec,
                          run_simulated_session, run_socket_session,
                          transcript_fingerprint)
from .driver import AsyncEngineDriver
from .load import run_load
from .server import GatewayServer
from .shim import GATEWAY_CAPACITY_BPS, SocketLink, SocketShim
from .wire import (MAX_FRAME_BYTES, StreamUnframer, decode_shim_frame,
                   frame_from_wire, frame_to_wire)

__all__ = [
    "AsyncEngineDriver",
    "GATEWAY_CAPACITY_BPS",
    "GatewayConformanceError",
    "GatewayServer",
    "MAX_FRAME_BYTES",
    "SessionSpec",
    "SocketLink",
    "SocketShim",
    "StreamUnframer",
    "decode_shim_frame",
    "frame_from_wire",
    "frame_to_wire",
    "run_load",
    "run_simulated_session",
    "run_socket_session",
    "transcript_fingerprint",
]
