"""Socket-vs-simulated transcript conformance.

The gateway's correctness claim is not "echo works over TCP" — it is
that moving the stack onto real sockets changes *nothing above the shim
boundary*.  The receipt is a protocol transcript: every shim frame
delivered in each direction (kind, flow id, declared size, and the
codec-canonical encoding of the payload — DataPdus, ControlPdus, RIEP
exchanges, allocation handshakes), in delivery order.  One scripted
echo/RPC session is run twice from the same :class:`SessionSpec`:

* **simulated** — two systems joined by an ordinary simulated link, the
  DIF built by the usual orchestrated enrollment;
* **socket** — the same two systems in one process, joined by a real
  loopback TCP connection through :class:`SocketShim`, the engine
  driven by :class:`AsyncEngineDriver` in fast (deterministic replay)
  mode.

The transcripts must be *identical* — same frames, same order, same
bytes-level payload encodings — and their fingerprint is pinned by a
golden test exactly like ``tests/test_trace_golden.py`` pins the
scenario traces.  The one permitted difference is the clock: socket
hops take zero simulated time while the simulated link charges
serialization + propagation, so timestamps never enter the transcript.

Determinism requires quieting the stack's periodic background traffic
(keepalives, anti-entropy refresh) and lock-stepping the session: each
action waits for its observable effect before the next begins, so frame
order per direction is fixed by causality, not by timing.
"""

from __future__ import annotations

import asyncio
import hashlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..apps.echo import EchoClient, EchoServer
from ..apps.rpc import RpcClient, RpcServer
from ..core.codec import encode
from ..core.dif import Dif, DifPolicies
from ..core.directory import InterDifDirectory
from ..core.fabric import (Orchestrator, add_shims, build_dif_over,
                           make_systems, run_until)
from ..core.system import System
from ..sim.engine import Engine
from ..sim.network import Network
from ..sim.node import Node
from ..sim.trace import Tracer
from .driver import AsyncEngineDriver
from .shim import GATEWAY_CAPACITY_BPS, SocketShim
from .transport import open_tcp_channel, start_tcp_server

_DIF = "gw"
_SHIM = "shim:gw-wire"


class GatewayConformanceError(RuntimeError):
    """A conformance session failed to reach a scripted milestone."""


class SessionSpec:
    """The scripted echo/RPC session both runs execute."""

    __slots__ = ("pings", "rpc_calls", "payload", "settle")

    def __init__(self, pings: int = 3, rpc_calls: int = 2,
                 payload: int = 48, settle: float = 0.5) -> None:
        self.pings = pings
        self.rpc_calls = rpc_calls
        self.payload = payload
        self.settle = settle


def _quiet_policies() -> DifPolicies:
    """DIF policies with all periodic background traffic pushed beyond
    the session horizon, so the transcript is pure causal traffic."""
    return DifPolicies(keepalive_interval=3600.0, refresh_interval=None)


def _rpc_sum(params: dict) -> dict:
    return {"sum": sum(params.get("values", []))}


# ----------------------------------------------------------------------
# Transcript capture
# ----------------------------------------------------------------------
def _normalize(frame: Tuple[str, int, Any, int]) -> Tuple[Any, ...]:
    kind, flow_id, payload, size = frame
    return (kind, flow_id, size, encode(payload))


def _tap_end(end: Any, out: List[Tuple[Any, ...]]) -> None:
    """Wrap a link end's receiver so every delivered frame is recorded
    (normalized) before the shim sees it."""
    inner = end._receiver

    def tapped(frame: Any, size: int) -> None:
        out.append(_normalize(frame))
        if inner is not None:
            inner(frame, size)
    end.attach(tapped)


def transcript_fingerprint(transcript: Dict[str, Any]) -> str:
    """SHA-256 over the canonical repr of a transcript.  ``repr`` of
    the nested pure-data tuples (scalars, bytes, str) is deterministic
    across runs and platforms; the codec's canonical encodings make the
    payloads byte-stable."""
    body = repr((sorted(transcript),
                 [transcript[key] for key in sorted(transcript)]))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# The scripted session (shared by both runners)
# ----------------------------------------------------------------------
class _Step:
    __slots__ = ("label", "action", "until", "timeout", "settle")

    def __init__(self, label: str,
                 action: Optional[Callable[[], None]] = None,
                 until: Optional[Callable[[], bool]] = None,
                 timeout: float = 15.0,
                 settle: Optional[float] = None) -> None:
        self.label = label
        self.action = action
        self.until = until
        self.timeout = timeout
        self.settle = settle


def _session_steps(spec: SessionSpec, sys_client: System, sys_server: System,
                   state: Dict[str, Any]) -> List[_Step]:
    """The lock-step session script over two already-enrolled systems."""
    steps: List[_Step] = []

    def register_apps() -> None:
        state["echo_server"] = EchoServer(sys_server, dif_names=[_DIF])
        rpc = RpcServer(sys_server, dif_names=[_DIF])
        rpc.register_method("add", _rpc_sum)
        state["rpc_server"] = rpc
    steps.append(_Step("register server apps", action=register_apps))
    steps.append(_Step(f"settle {spec.settle}s", settle=spec.settle))

    def alloc_echo() -> None:
        state["echo"] = EchoClient(sys_client, dif_name=_DIF)
    steps.append(_Step("allocate echo flow", action=alloc_echo,
                       until=lambda: state["echo"].ready))

    for index in range(spec.pings):
        steps.append(_Step(
            f"ping {index + 1}/{spec.pings}",
            action=lambda: state["echo"].ping(spec.payload),
            until=lambda want=index + 1: state["echo"].replies >= want))

    def alloc_rpc() -> None:
        state["rpc"] = RpcClient(sys_client, dif_name=_DIF)
    steps.append(_Step("allocate rpc flow", action=alloc_rpc,
                       until=lambda: state["rpc"].ready))

    for index in range(spec.rpc_calls):
        def call(index: int = index) -> None:
            state["rpc"].call("add", {"values": [index, index + 1]},
                              lambda reply: None)
        steps.append(_Step(
            f"rpc call {index + 1}/{spec.rpc_calls}", action=call,
            until=lambda want=index + 1: state["rpc"].responses >= want))

    def teardown() -> None:
        state["echo"].flow.deallocate()
        state["rpc"].flow.deallocate()
    steps.append(_Step("deallocate flows", action=teardown))
    steps.append(_Step("drain teardown", settle=0.2))
    return steps


# ----------------------------------------------------------------------
# Runner 1: the simulated reference
# ----------------------------------------------------------------------
def run_simulated_session(spec: Optional[SessionSpec] = None
                          ) -> Dict[str, Any]:
    """Run the session over a simulated link; returns the transcript."""
    spec = spec or SessionSpec()
    network = Network(seed=0)
    network.add_node("client")
    network.add_node("server")
    network.connect("client", "server", capacity_bps=GATEWAY_CAPACITY_BPS,
                    delay=0.001, name="gw-wire")
    systems = make_systems(network)
    add_shims(systems, network)

    records: Dict[str, List[Tuple[Any, ...]]] = {"c2s": [], "s2c": []}
    link = network.links["gw-wire"]
    _tap_end(link.ends[0], records["s2c"])   # delivered at the client end
    _tap_end(link.ends[1], records["c2s"])   # delivered at the server end

    orchestrator = Orchestrator(network)
    dif = Dif(_DIF, policies=_quiet_policies())
    build_dif_over(orchestrator, dif, systems,
                   [("server", "client", _SHIM)], bootstrap="server",
                   settle=spec.settle)
    orchestrator.run(timeout=60.0)

    state: Dict[str, Any] = {}
    for step in _session_steps(spec, systems["client"], systems["server"],
                               state):
        if step.settle is not None:
            network.run(until=network.engine.now + step.settle)
            continue
        if step.action is not None:
            step.action()
        if step.until is not None:
            if not run_until(network, step.until, timeout=step.timeout):
                raise GatewayConformanceError(
                    f"simulated session stalled at: {step.label}")
    return {"c2s": records["c2s"], "s2c": records["s2c"]}


# ----------------------------------------------------------------------
# Runner 2: the socket run
# ----------------------------------------------------------------------
def run_socket_session(spec: Optional[SessionSpec] = None
                       ) -> Dict[str, Any]:
    """Run the identical session over a real loopback TCP connection;
    returns the transcript (plus the driver's replay journal length
    under ``_journal_len`` — stripped before fingerprinting)."""
    return asyncio.run(_socket_session(spec or SessionSpec()))


async def _socket_session(spec: SessionSpec) -> Dict[str, Any]:
    engine = Engine()
    driver = AsyncEngineDriver(engine, mode="fast", record=True)
    idd = InterDifDirectory()
    tracer = Tracer()
    sys_client = System(Node(engine, "client"), idd=idd, tracer=tracer)
    sys_server = System(Node(engine, "server"), idd=idd, tracer=tracer)

    accepted: List[Any] = []
    tcp_server = await start_tcp_server(
        "127.0.0.1", 0, lambda channel, peer: accepted.append(channel))
    port = tcp_server.sockets[0].getsockname()[1]
    client_channel = await open_tcp_channel("127.0.0.1", port)
    for _ in range(400):
        if accepted:
            break
        await asyncio.sleep(0.005)
    if not accepted:
        raise GatewayConformanceError("loopback accept timed out")

    # same sides as the simulated link: client drives ends[0] (even
    # flow ids), server drives ends[1]
    shim_client = SocketShim(engine, _SHIM, "client", client_channel,
                             side=0, driver=driver,
                             port_ids=sys_client.port_id_counter,
                             tracked=True)
    shim_server = SocketShim(engine, _SHIM, "server", accepted[0],
                             side=1, driver=driver,
                             port_ids=sys_server.port_id_counter,
                             tracked=True)
    sys_client.attach_provider(shim_client)
    sys_server.attach_provider(shim_server)

    records: Dict[str, List[Tuple[Any, ...]]] = {"c2s": [], "s2c": []}
    _tap_end(shim_client.link.ends[0], records["s2c"])
    _tap_end(shim_server.link.ends[1], records["c2s"])

    try:
        orchestrator = Orchestrator(engine)
        dif = Dif(_DIF, policies=_quiet_policies())
        build_dif_over(orchestrator, dif,
                       {"client": sys_client, "server": sys_server},
                       [("server", "client", _SHIM)], bootstrap="server",
                       settle=spec.settle)
        is_done = orchestrator.start()
        orchestrator.check(await driver.run_until(is_done, timeout=60.0))

        state: Dict[str, Any] = {}
        for step in _session_steps(spec, sys_client, sys_server, state):
            if step.settle is not None:
                await driver.settle(step.settle)
                continue
            if step.action is not None:
                step.action()
            if step.until is not None:
                if not await driver.run_until(step.until,
                                              timeout=step.timeout):
                    raise GatewayConformanceError(
                        f"socket session stalled at: {step.label} "
                        f"(inflight={driver.inflight}, "
                        f"wire_errors={shim_server.wire_errors + shim_client.wire_errors})")
    finally:
        tcp_server.close()
        await tcp_server.wait_closed()
        client_channel.close()
        await asyncio.sleep(0)

    journal = driver.journal or []
    return {"c2s": records["c2s"], "s2c": records["s2c"],
            "_journal_len": len(journal)}


def strip_private(transcript: Dict[str, Any]) -> Dict[str, Any]:
    """Drop ``_``-prefixed diagnostic keys before comparison."""
    return {key: value for key, value in transcript.items()
            if not key.startswith("_")}
