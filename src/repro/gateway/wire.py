"""Byte-level frame layer of the gateway.

One shim frame crosses the network as one *wire frame*: the frame tuple
run through :func:`repro.core.codec.encode` (pure data), flattened by
:func:`repro.shard.framing.pack_frame` (versioned magic, the shard
subsystem's value grammar).  UDP carries one wire frame per datagram;
TCP prefixes each with a u32 length (:class:`StreamUnframer` is the
inverse, shared by the asyncio protocol and the fuzz tests).

Every way a peer can hand us garbage — truncated header, bad magic or
version, trailing bytes, an oversize length prefix, a decodable value
that is not a shim frame — funnels into :class:`FrameFormatError`, so
socket readers have exactly one failure mode to contain: count it and
close the connection.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from ..core.codec import CodecError, decode, encode
from ..shard.framing import FrameFormatError, pack_frame, unpack_frame

#: Ceiling on a single wire frame (and therefore on the TCP length
#: prefix).  Shim frames are small — a data frame tops out around one
#: delimiting fragment (~1.4 KB) plus headers — so anything near this
#: is an attack or a desynchronized stream, not traffic.
MAX_FRAME_BYTES = 1 << 20

#: TCP record framing: u32 big-endian payload length.
LENGTH_PREFIX = struct.Struct(">I")

ShimFrame = Tuple[str, int, Any, int]


def frame_to_wire(frame: ShimFrame) -> bytes:
    """Encode one live shim frame to its wire bytes (strict: a payload
    the codec does not know raises, at the sender, loudly)."""
    return pack_frame(encode(frame))


def frame_from_wire(buf: bytes) -> Any:
    """Decode wire bytes back to a live value.

    All malformed input — framing *and* codec level — surfaces as
    :class:`FrameFormatError`.
    """
    try:
        return decode(unpack_frame(buf))
    except CodecError as exc:
        raise FrameFormatError(f"undecodable frame payload: {exc}") from None


def decode_shim_frame(buf: bytes) -> ShimFrame:
    """Decode and *shape-check* a shim frame off the wire.

    The shim dispatch (:meth:`~repro.core.shim.ShimIpcp._on_frame`)
    unpacks ``kind, flow_id, payload, size`` positionally; a decodable
    value of any other shape must be rejected here, not explode inside
    the engine.
    """
    value = frame_from_wire(buf)
    if (not isinstance(value, tuple) or len(value) != 4
            or not isinstance(value[0], str)
            or isinstance(value[1], bool) or not isinstance(value[1], int)
            or isinstance(value[3], bool) or not isinstance(value[3], int)):
        raise FrameFormatError(f"not a shim frame: {value!r:.120}")
    return value


def stream_record(buf: bytes) -> bytes:
    """``buf`` as one length-prefixed TCP record."""
    if len(buf) > MAX_FRAME_BYTES:
        raise FrameFormatError(f"frame of {len(buf)} bytes exceeds "
                               f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})")
    return LENGTH_PREFIX.pack(len(buf)) + buf


class StreamUnframer:
    """Incremental parser for the length-prefixed TCP stream.

    ``feed(data)`` returns the complete wire frames the new bytes
    finished, buffering any tail.  A length prefix that cannot be a
    frame (oversize, or too short to hold the 2-byte frame header)
    raises :class:`FrameFormatError` — the stream is desynchronized and
    the connection must close; no resynchronization is attempted.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self._max_frame = max_frame
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        self._buf += data
        frames: List[bytes] = []
        buf = self._buf
        while len(buf) >= LENGTH_PREFIX.size:
            (length,) = LENGTH_PREFIX.unpack_from(buf, 0)
            if length > self._max_frame:
                raise FrameFormatError(
                    f"oversize length prefix: {length} bytes "
                    f"(max {self._max_frame})")
            if length < 2:
                raise FrameFormatError(
                    f"length prefix {length} cannot hold a frame header")
            end = LENGTH_PREFIX.size + length
            if len(buf) < end:
                break
            frames.append(bytes(buf[LENGTH_PREFIX.size:end]))
            del buf[:end]
        return frames

    @property
    def buffered(self) -> int:
        """Bytes held back waiting for the rest of a frame."""
        return len(self._buf)
