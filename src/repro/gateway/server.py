"""The gateway server: existing apps served to real clients.

One :class:`~repro.core.system.System` hosts the ordinary ``apps/``
services (echo, RPC, pubsub) exactly as in the simulator.  Each accepted
TCP connection — and each new UDP peer — becomes one
:class:`~repro.gateway.shim.SocketShim` attached to that system via the
:meth:`~repro.core.system.System.attach_provider` seam, which re-registers
every application listener on the new facility.  From there the normal
machinery runs: the client allocates a flow *by application name* over
the shim handshake, the listener fires, messages flow.  No app knows it
is talking to a socket.

The server side is ``side=1`` of every shim (odd flow ids), mirroring
how an accepting link end sits on ``ends[1]`` of a simulated link, so
client-chosen even flow ids can never collide with locally initiated
ones.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional, Sequence

from ..apps.echo import EchoServer
from ..apps.pubsub import Broker
from ..apps.rpc import RpcServer
from ..core.system import System
from ..sim.engine import Engine
from ..sim.node import Node
from .driver import AsyncEngineDriver
from .shim import GATEWAY_CAPACITY_BPS, SocketShim
from .transport import (FrameChannel, start_tcp_server, start_udp_server)


def _rpc_add(params: dict) -> dict:
    return {"sum": sum(params.get("values", []))}


def _rpc_echo(params: dict) -> dict:
    return params


class GatewayServer:
    """Serve the apps/ suite over loopback-or-beyond UDP and TCP."""

    def __init__(self, host: str = "127.0.0.1", tcp_port: int = 0,
                 udp_port: int = 0,
                 apps: Sequence[str] = ("echo", "rpc", "pubsub"),
                 engine: Optional[Engine] = None,
                 driver: Optional[AsyncEngineDriver] = None,
                 system_name: str = "gateway",
                 capacity_bps: float = GATEWAY_CAPACITY_BPS) -> None:
        self.host = host
        self.engine = engine if engine is not None else Engine()
        self.driver = (driver if driver is not None
                       else AsyncEngineDriver(self.engine, mode="wall"))
        self.system = System(Node(self.engine, system_name))
        self.capacity_bps = capacity_bps
        self.stats: Dict[str, int] = {"tcp_connections": 0, "udp_peers": 0,
                                      "wire_errors": 0, "closed": 0}
        self._shim_seq = itertools.count()
        self._shims: Dict[str, SocketShim] = {}
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._udp_transport: Optional[asyncio.DatagramTransport] = None
        self.tcp_port = tcp_port
        self.udp_port = udp_port
        self.echo = EchoServer(self.system) if "echo" in apps else None
        self.rpc = RpcServer(self.system) if "rpc" in apps else None
        if self.rpc is not None:
            self.rpc.register_method("add", _rpc_add)
            self.rpc.register_method("echo", _rpc_echo)
        self.broker = Broker(self.system) if "pubsub" in apps else None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind both listeners (resolving ephemeral ports) and start the
        wall-clock engine pump."""
        self._tcp_server = await start_tcp_server(
            self.host, self.tcp_port, self._on_tcp_channel,
            on_error=self._on_wire_error)
        self.tcp_port = self._tcp_server.sockets[0].getsockname()[1]
        self._udp_transport, _router = await start_udp_server(
            self.host, self.udp_port, self._on_udp_channel)
        self.udp_port = self._udp_transport.get_extra_info("sockname")[1]
        self.driver.start()

    async def stop(self) -> None:
        """Stop serving: engine pump, listeners, open channels."""
        await self.driver.stop()
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        if self._udp_transport is not None:
            self._udp_transport.close()
            self._udp_transport = None
        for shim in list(self._shims.values()):
            shim.link.channel.close()

    async def serve(self, duration: Optional[float] = None) -> None:
        """Run until cancelled (or for ``duration`` wall seconds)."""
        await self.start()
        try:
            if duration is None:
                while True:
                    await asyncio.sleep(3600)
            else:
                await asyncio.sleep(duration)
        finally:
            await self.stop()

    @property
    def active_connections(self) -> int:
        return len(self._shims)

    # ------------------------------------------------------------------
    def _on_tcp_channel(self, channel: FrameChannel, peer: object) -> None:
        self.stats["tcp_connections"] += 1
        self._adopt(channel, f"tcp:{peer}")

    def _on_udp_channel(self, channel: FrameChannel, peer: object) -> None:
        self.stats["udp_peers"] += 1
        self._adopt(channel, f"udp:{peer}")

    def _adopt(self, channel: FrameChannel, label: str) -> None:
        """One connection, one shim facility (runs in loop context; the
        shim is built inline — construction only wires callbacks — and
        attached in engine context via inject)."""
        name = f"gw:{label}#{next(self._shim_seq)}"
        shim = SocketShim(self.engine, name, self.system.name, channel,
                          side=1, driver=self.driver,
                          port_ids=self.system.port_id_counter,
                          capacity_bps=self.capacity_bps,
                          on_wire_error=self._on_wire_error)
        self._shims[name] = shim
        self.driver.inject(self.system.attach_provider, shim,
                           label="gw.attach")
        channel.on_close(lambda: self._on_channel_closed(name))

    def _on_channel_closed(self, name: str) -> None:
        self.stats["closed"] += 1
        self._shims.pop(name, None)
        self.driver.inject(self.system.detach_provider, name,
                           label="gw.detach")

    def _on_wire_error(self, exc: Exception) -> None:
        self.stats["wire_errors"] += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<GatewayServer {self.host} tcp={self.tcp_port} "
                f"udp={self.udp_port} active={self.active_connections}>")
